//! Offline stand-in for `serde`, specialized to this workspace's only
//! codec: the compact little-endian binary parcel format.
//!
//! The real serde couples a generic data model (`Serializer`/`Visitor`)
//! with a proc-macro derive; neither is available offline. What the
//! workspace actually needs is narrower: every `#[derive(Serialize,
//! Deserialize)]` site feeds exactly one binary codec
//! (`parcelport::serialize`). So this crate collapses the data model to
//! that codec:
//!
//! * [`Writer`]/[`Reader`] implement the wire format directly
//!   (fixed-width little-endian primitives, `u64` length prefixes,
//!   `u32` enum variant indices, `u8` option tags),
//! * [`Serialize`]/[`Deserialize`] are concrete traits over them —
//!   `Deserialize` keeps its `'de` lifetime parameter so existing
//!   `for<'de> Deserialize<'de>` bounds compile unchanged,
//! * [`impl_codec_struct!`]/[`impl_codec_enum_unit!`] replace the
//!   derive for plain structs and unit-only enums (data-carrying enums
//!   write manual impls, which the derive sites needing them do).
//!
//! The wire format is bit-for-bit the one the original
//! `parcelport::serialize` module produced, so all its format tests
//! (compactness, NaN bit-exactness, truncation behaviour) still hold.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input while deserializing.
    Eof,
    /// Input contained an invalid encoding (bad bool/char/utf8/...).
    Invalid(String),
    /// Error message bubbled up from a Serialize/Deserialize impl.
    Custom(String),
    /// The type requires lengths known up front.
    UnknownLength,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Invalid(m) => write!(f, "invalid encoding: {m}"),
            CodecError::Custom(m) => write!(f, "{m}"),
            CodecError::UnknownLength => write!(f, "sequence length must be known up front"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- writer

/// Append-only encoder for the binary parcel format.
#[derive(Default, Debug)]
pub struct Writer {
    out: Vec<u8>,
}

macro_rules! writer_put {
    ($($fn:ident($ty:ty)),* $(,)?) => {
        $(
            #[inline]
            pub fn $fn(&mut self, v: $ty) {
                self.out.extend_from_slice(&v.to_le_bytes());
            }
        )*
    };
}

impl Writer {
    pub fn new() -> Writer {
        Writer { out: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Writer {
        Writer { out: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.out.push(v);
    }

    #[inline]
    pub fn put_i8(&mut self, v: i8) {
        self.out.push(v as u8);
    }

    writer_put! {
        put_u16_le(u16), put_i16_le(i16),
        put_u32_le(u32), put_i32_le(i32),
        put_u64_le(u64), put_i64_le(i64),
        put_f32_le(f32), put_f64_le(f64),
    }

    #[inline]
    pub fn put_slice(&mut self, s: &[u8]) {
        self.out.extend_from_slice(s);
    }

    /// A sequence/string/map length prefix (`u64` little-endian).
    #[inline]
    pub fn put_len(&mut self, len: usize) {
        self.put_u64_le(len as u64);
    }

    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.out
    }
}

// ---------------------------------------------------------------- reader

/// Cursor-style decoder over a byte slice.
pub struct Reader<'de> {
    buf: &'de [u8],
}

macro_rules! reader_get {
    ($($fn:ident -> $ty:ty),* $(,)?) => {
        $(
            #[inline]
            pub fn $fn(&mut self) -> Result<$ty, CodecError> {
                const N: usize = std::mem::size_of::<$ty>();
                let raw = self.take(N)?;
                let mut arr = [0u8; N];
                arr.copy_from_slice(raw);
                Ok(<$ty>::from_le_bytes(arr))
            }
        )*
    };
}

impl<'de> Reader<'de> {
    pub fn new(buf: &'de [u8]) -> Reader<'de> {
        Reader { buf }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consume the next `n` bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::Eof);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    #[inline]
    pub fn get_i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.get_u8()? as i8)
    }

    reader_get! {
        get_u16_le -> u16, get_i16_le -> i16,
        get_u32_le -> u32, get_i32_le -> i32,
        get_u64_le -> u64, get_i64_le -> i64,
        get_f32_le -> f32, get_f64_le -> f64,
    }

    /// Read a length prefix and sanity-check it against the remaining
    /// input (a length longer than what's left is corrupt, not EOF).
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_u64_le()?;
        if len as usize > self.buf.len() {
            return Err(CodecError::Invalid(format!(
                "length prefix {len} exceeds remaining {} bytes",
                self.buf.len()
            )));
        }
        Ok(len as usize)
    }
}

// ---------------------------------------------------------------- traits

/// Types encodable into the binary parcel format.
pub trait Serialize {
    fn serialize(&self, w: &mut Writer);
}

/// Types decodable from the binary parcel format. The `'de` lifetime is
/// the input buffer's; owned types (everything in this workspace) are
/// `for<'de> Deserialize<'de>`, which is what [`de::DeserializeOwned`]
/// captures.
pub trait Deserialize<'de>: Sized {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError>;
}

pub mod de {
    /// Marker for types deserializable from a buffer of any lifetime.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

pub mod ser {
    pub use crate::Serialize;
}

// ------------------------------------------------------------ primitives

macro_rules! codec_prim {
    ($($ty:ty => $put:ident / $get:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                #[inline]
                fn serialize(&self, w: &mut Writer) {
                    w.$put(*self);
                }
            }
            impl<'de> Deserialize<'de> for $ty {
                #[inline]
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
                    r.$get()
                }
            }
        )*
    };
}

codec_prim! {
    u8 => put_u8 / get_u8,
    i8 => put_i8 / get_i8,
    u16 => put_u16_le / get_u16_le,
    i16 => put_i16_le / get_i16_le,
    u32 => put_u32_le / get_u32_le,
    i32 => put_i32_le / get_i32_le,
    u64 => put_u64_le / get_u64_le,
    i64 => put_i64_le / get_i64_le,
    f32 => put_f32_le / get_f32_le,
    f64 => put_f64_le / get_f64_le,
}

impl Serialize for bool {
    fn serialize(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::Invalid(format!("bad bool byte {b}"))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, w: &mut Writer) {
        w.put_u32_le(*self as u32);
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let cp = r.get_u32_le()?;
        char::from_u32(cp).ok_or_else(|| CodecError::Invalid(format!("bad char {cp}")))
    }
}

// `usize`/`isize` travel as fixed 64-bit, matching serde's own impls.
impl Serialize for usize {
    fn serialize(&self, w: &mut Writer) {
        w.put_u64_le(*self as u64);
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let v = r.get_u64_le()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("usize overflow: {v}")))
    }
}

impl Serialize for isize {
    fn serialize(&self, w: &mut Writer) {
        w.put_i64_le(*self as i64);
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let v = r.get_i64_le()?;
        isize::try_from(v).map_err(|_| CodecError::Invalid(format!("isize overflow: {v}")))
    }
}

impl Serialize for () {
    fn serialize(&self, _w: &mut Writer) {}
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(_r: &mut Reader<'de>) -> Result<Self, CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------- std containers

impl Serialize for str {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        w.put_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, w: &mut Writer) {
        self.as_str().serialize(w);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let raw = r.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|e| CodecError::Invalid(e.to_string()))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for item in self {
            item.serialize(w);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, w: &mut Writer) {
        self.as_slice().serialize(w);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        // get_len bounds len by remaining bytes, so a hostile prefix
        // can't force an absurd reservation (each element is ≥ 1 byte
        // except (), which no one nests in a Vec here).
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::deserialize(r)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.serialize(w);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(r)?)),
            b => Err(CodecError::Invalid(format!("bad option tag {b}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.serialize(w);
            v.serialize(w);
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize(&self, w: &mut Writer) {
        w.put_len(self.len());
        for (k, v) in self {
            k.serialize(w);
            v.serialize(w);
        }
    }
}

impl<'de, K, V, S> Deserialize<'de> for HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let len = r.get_len()?;
        let mut out = HashMap::with_capacity_and_hasher(len, S::default());
        for _ in 0..len {
            let k = K::deserialize(r)?;
            let v = V::deserialize(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

// Arrays encode as fixed-arity tuples: no length prefix (serde does the
// same, and the compactness tests depend on it for nested arrays).
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, w: &mut Writer) {
        for item in self {
            item.serialize(w);
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::deserialize(r)?);
        }
        items
            .try_into()
            .map_err(|_| CodecError::Invalid("array arity mismatch".into()))
    }
}

macro_rules! codec_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize(&self, w: &mut Writer) {
                    $( self.$idx.serialize(w); )+
                }
            }
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
                    Ok(($($name::deserialize(r)?,)+))
                }
            }
        )*
    };
}

codec_tuple! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, w: &mut Writer) {
        (**self).serialize(w);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, w: &mut Writer) {
        (**self).serialize(w);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
        Ok(Box::new(T::deserialize(r)?))
    }
}

// ---------------------------------------------------------------- macros

/// Implement `Serialize`/`Deserialize` for a plain struct by listing its
/// fields in declaration order — the stand-in for `#[derive(Serialize,
/// Deserialize)]`.
#[macro_export]
macro_rules! impl_codec_struct {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize(&self, w: &mut $crate::Writer) {
                $( $crate::Serialize::serialize(&self.$field, w); )*
            }
        }
        impl<'de> $crate::Deserialize<'de> for $ty {
            fn deserialize(
                r: &mut $crate::Reader<'de>,
            ) -> ::std::result::Result<Self, $crate::CodecError> {
                ::std::result::Result::Ok($ty {
                    $( $field: $crate::Deserialize::deserialize(r)?, )*
                })
            }
        }
    };
}

/// Implement `Serialize`/`Deserialize` for a unit-only `Copy` enum:
/// the variant's declaration position travels as a `u32` index, exactly
/// like serde's externally-indexed enum encoding in this format.
#[macro_export]
macro_rules! impl_codec_enum_unit {
    ($ty:ident { $($variant:ident),* $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize(&self, w: &mut $crate::Writer) {
                w.put_u32_le(*self as u32);
            }
        }
        impl<'de> $crate::Deserialize<'de> for $ty {
            fn deserialize(
                r: &mut $crate::Reader<'de>,
            ) -> ::std::result::Result<Self, $crate::CodecError> {
                const VARIANTS: &[$ty] = &[$($ty::$variant),*];
                let idx = r.get_u32_le()? as usize;
                VARIANTS.get(idx).copied().ok_or_else(|| {
                    $crate::CodecError::Invalid(::std::format!(
                        "bad variant index {idx} for {}",
                        ::std::stringify!($ty)
                    ))
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(v: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let mut w = Writer::new();
        v.serialize(&mut w);
        let bytes = w.into_vec();
        let mut r = Reader::new(&bytes);
        let back = T::deserialize(&mut r).expect("deserialize");
        assert_eq!(r.remaining(), 0, "trailing bytes after decode");
        back
    }

    #[test]
    fn primitive_layout_is_fixed_le() {
        let mut w = Writer::new();
        0x0102_0304u32.serialize(&mut w);
        assert_eq!(w.into_vec(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn vec_f64_is_len_prefixed_and_compact() {
        let v = vec![0.0f64; 16];
        let mut w = Writer::new();
        v.serialize(&mut w);
        assert_eq!(w.len(), 8 + 16 * 8);
    }

    #[test]
    fn nested_arrays_have_no_prefix() {
        let a = [[1.0f64; 3]; 3];
        let mut w = Writer::new();
        a.serialize(&mut w);
        assert_eq!(w.len(), 9 * 8);
        assert_eq!(roundtrip(&a), a);
    }

    #[test]
    fn containers_roundtrip() {
        assert_eq!(roundtrip(&Some(vec![1u32, 2, 3])), Some(vec![1, 2, 3]));
        assert_eq!(roundtrip(&Option::<u32>::None), None);
        assert_eq!(roundtrip(&"höllo".to_string()), "höllo");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(roundtrip(&m), m);
        let t = (1u8, -2i16, (3u32, 4.5f64));
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn hashmap_roundtrips() {
        let mut m = HashMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(7, "y".to_string());
        assert_eq!(roundtrip(&m), m);
    }

    #[test]
    fn invalid_inputs_are_rejected_not_panicking() {
        let mut r = Reader::new(&[7]);
        assert!(matches!(bool::deserialize(&mut r), Err(CodecError::Invalid(_))));
        let mut r = Reader::new(&[]);
        assert!(matches!(u64::deserialize(&mut r), Err(CodecError::Eof)));
        // Absurd length prefix: Invalid, not an allocation attempt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Reader::new(&bytes);
        assert!(matches!(Vec::<u8>::deserialize(&mut r), Err(CodecError::Invalid(_))));
    }

    #[derive(Debug, PartialEq)]
    struct P {
        a: u64,
        b: Option<f64>,
        c: Vec<u8>,
    }
    impl_codec_struct!(P { a, b, c });

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        R,
        G,
        B,
    }
    impl_codec_enum_unit!(Color { R, G, B });

    #[test]
    fn macro_struct_and_enum_roundtrip() {
        let p = P { a: 9, b: Some(-1.5), c: vec![1, 2] };
        assert_eq!(roundtrip(&p), p);
        assert_eq!(roundtrip(&Color::G), Color::G);
        // Enum index is a u32 of the declaration position.
        let mut w = Writer::new();
        Color::B.serialize(&mut w);
        assert_eq!(w.into_vec(), vec![2, 0, 0, 0]);
        // Out-of-range index is Invalid.
        let mut r = Reader::new(&[9, 0, 0, 0]);
        assert!(matches!(Color::deserialize(&mut r), Err(CodecError::Invalid(_))));
    }
}
