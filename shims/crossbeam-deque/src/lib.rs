//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Implements the `Worker`/`Stealer`/`Injector`/`Steal` API the
//! scheduler uses, backed by `Mutex<VecDeque>` instead of the lock-free
//! Chase–Lev deque. Semantics match where it matters:
//!
//! * `Worker::new_lifo` pops the most recently pushed task (cache-hot),
//! * `Stealer::steal` takes from the opposite end (oldest task),
//! * `Injector` is a FIFO; `steal_batch_and_pop` moves a batch into the
//!   destination worker and returns one task.
//!
//! `Steal::Retry` is never produced (a mutex never loses a race), but
//! the variant exists so match arms compile unchanged.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// The queue was observed empty.
    Empty,
    /// The operation lost a race and should be retried (never produced
    /// by this mutex-backed implementation).
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

type Queue<T> = Arc<Mutex<VecDeque<T>>>;

fn locked<T>(q: &Queue<T>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    q.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A worker-owned deque. Pushes and pops happen at the back (LIFO);
/// stealers take from the front.
pub struct Worker<T> {
    queue: Queue<T>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Worker<T> {
        Worker { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    pub fn new_fifo() -> Worker<T> {
        // The shim stores both flavours identically; `pop` order differs
        // only for LIFO, which is all the workspace uses.
        Worker::new_lifo()
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        locked(&self.queue).pop_back()
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

/// Handle for stealing from another worker's deque.
pub struct Stealer<T> {
    queue: Queue<T>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { queue: Arc::clone(&self.queue) }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }
}

/// Global FIFO injector queue.
pub struct Injector<T> {
    queue: Queue<T>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        Injector { queue: Arc::new(Mutex::new(VecDeque::new())) }
    }

    pub fn push(&self, task: T) {
        locked(&self.queue).push_back(task);
    }

    pub fn steal(&self) -> Steal<T> {
        match locked(&self.queue).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Move up to half the queue (at least one task) into `dest`, then
    /// pop one task for the caller.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = locked(&self.queue);
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Batch: up to half of what remains, capped like crossbeam's
        // MAX_BATCH to keep steals fair under contention.
        let batch = (q.len() / 2).min(32);
        if batch > 0 {
            let mut dq = locked(&dest.queue);
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    pub fn is_empty(&self) -> bool {
        locked(&self.queue).is_empty()
    }

    pub fn len(&self) -> usize {
        locked(&self.queue).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batch_and_pop() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(t) => assert_eq!(t, 0),
            other => panic!("expected success, got {other:?}"),
        }
        // A batch landed in the destination worker.
        assert!(!w.is_empty());
        let total_left = w.len() + inj.len();
        assert_eq!(total_left, 9);
    }

    #[test]
    fn empty_injector_steals_empty() {
        let inj: Injector<u32> = Injector::new();
        assert!(inj.steal().is_empty());
        let w = Worker::new_lifo();
        assert!(inj.steal_batch_and_pop(&w).is_empty());
    }

    #[test]
    fn cross_thread_stealing() {
        let w = Worker::new_lifo();
        for i in 0..1000 {
            w.push(i);
        }
        let stealers: Vec<_> = (0..4).map(|_| w.stealer()).collect();
        let handles: Vec<_> = stealers
            .into_iter()
            .map(|s| {
                std::thread::spawn(move || {
                    let mut n = 0;
                    while let Steal::Success(_) = s.steal() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let stolen: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let mut local = 0;
        while w.pop().is_some() {
            local += 1;
        }
        assert_eq!(stolen + local, 1000);
    }
}
