//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable
//! storage (`Arc<Vec<u8>>` or `&'static [u8]`). Clones and slices share
//! the underlying buffer, so `as_ptr()` identity is preserved — the
//! libfabric parcelport simulation relies on this for its zero-copy
//! assertions. `BytesMut` is a growable build buffer that freezes into
//! `Bytes` without copying. The `Buf`/`BufMut` traits expose the
//! little-endian accessors the binary codec uses.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Shared(Arc<Vec<u8>>),
    Static(&'static [u8]),
}

/// A cheaply cloneable contiguous slice of immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte view (no allocation).
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Shared(v) => v.as_slice(),
            Repr::Static(s) => s,
        }
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds of {}", self.len());
        Bytes { repr: self.repr.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `n` bytes, advancing `self` past
    /// them. Both halves share the original storage.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to({n}) out of bounds of {}", self.len());
        let head = Bytes { repr: self.repr.clone(), start: self.start, end: self.start + n };
        self.start += n;
        head
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_ref())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

/// A growable buffer of bytes that can be frozen into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub const fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable `Bytes` without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

macro_rules! get_le {
    ($($fn:ident -> $ty:ty),* $(,)?) => {
        $(
            fn $fn(&mut self) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut raw = [0u8; N];
                raw.copy_from_slice(&self.chunk()[..N]);
                self.advance(N);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

/// Read access to a byte cursor (little-endian accessors only; this is
/// the subset the parcel codec uses).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    get_le! {
        get_u16_le -> u16,
        get_i16_le -> i16,
        get_u32_le -> u32,
        get_i32_le -> i32,
        get_u64_le -> u64,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance({n}) out of bounds of {}", self.len());
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

macro_rules! put_le {
    ($($fn:ident($ty:ty)),* $(,)?) => {
        $(
            fn $fn(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Append access to a byte buffer (little-endian writers only).
pub trait BufMut {
    fn put_slice(&mut self, s: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    put_le! {
        put_u16_le(u16),
        put_i16_le(i16),
        put_u32_le(u32),
        put_i32_le(i32),
        put_u64_le(u64),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        let c = b.clone();
        assert_eq!(b.as_ptr(), c.as_ptr());
        let s = b.slice(1..3);
        assert_eq!(s.as_ref(), &[2, 3]);
        assert_eq!(s.as_ptr(), unsafe { b.as_ptr().add(1) });
    }

    #[test]
    fn from_vec_preserves_heap_pointer() {
        let v = vec![9u8; 64];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ptr(), p);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    fn buf_readers_are_little_endian() {
        let mut m = BytesMut::new();
        m.put_u32_le(0xDEAD_BEEF);
        m.put_f64_le(-2.5);
        m.put_u8(7);
        assert_eq!(m.len(), 4 + 8 + 1);
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_f64_le(), -2.5);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn freeze_is_zero_copy() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"hello");
        let p = m.as_ptr();
        let b = m.freeze();
        assert_eq!(b.as_ptr(), p);
        assert_eq!(b.as_ref(), b"hello");
    }

    #[test]
    fn static_bytes_no_alloc() {
        static DATA: [u8; 3] = [7, 8, 9];
        let b = Bytes::from_static(&DATA);
        assert_eq!(b.as_ptr(), DATA.as_ptr());
        assert_eq!(b.len(), 3);
    }
}
