//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it uses, implemented over `std::sync`.
//! Differences from the real crate that matter here:
//!
//! * `lock()`/`read()`/`write()` return guards directly (no `Result`);
//!   poisoning is transparently ignored, matching parking_lot semantics
//!   where a panicking holder does not poison the lock.
//! * `Condvar::wait` takes `&mut MutexGuard` like parking_lot.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose guard is returned without a `Result`.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose guards are returned without a `Result`.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` calling convention.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the guard by value (std's condvar consumes and returns the
/// guard; parking_lot mutates it in place).
fn replace_guard<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: we read the guard out, pass it through `f` (which returns a
    // guard for the same mutex), and write the result back before anyone
    // can observe the moved-from slot. A panic in `f` would be a double
    // problem, but std's wait only panics on poison, which we unwrap.
    unsafe {
        let g = std::ptr::read(guard);
        let g = f(g);
        std::ptr::write(guard, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            c.wait(&mut done);
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let res = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn poisoned_lock_is_transparent() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
