//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Provides the unbounded MPMC channel API over a mutex/condvar queue.
//! Both `Sender` and `Receiver` are cloneable; the channel disconnects
//! when all handles on the other side drop.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The error returned by `send` when all receivers are gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// The error returned by `try_recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// The channel is empty and all senders have dropped.
    Disconnected,
}

/// The error returned by a blocking `recv` when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// The error returned by `recv_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half of an unbounded channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of an unbounded channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Sender<T> {
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> Receiver<T> {
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        match q.pop_front() {
            Some(v) => Ok(v),
            None => {
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    Err(TryRecvError::Disconnected)
                } else {
                    Err(TryRecvError::Empty)
                }
            }
        }
    }

    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = self
                .shared
                .ready
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _res) = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.shared.lock().is_empty()
    }

    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_try_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(42).unwrap();
        assert_eq!(rx.try_recv(), Ok(42));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn blocking_recv_wakes() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(5));
        tx.send("hello").unwrap();
        assert_eq!(h.join().unwrap(), "hello");
    }

    #[test]
    fn mpmc_counts_add_up() {
        let (tx, rx) = unbounded();
        let txs: Vec<_> = (0..4).map(|_| tx.clone()).collect();
        drop(tx);
        for (i, t) in txs.into_iter().enumerate() {
            std::thread::spawn(move || {
                for j in 0..100 {
                    t.send(i * 100 + j).unwrap();
                }
            });
        }
        let rxs: Vec<_> = (0..2).map(|_| rx.clone()).collect();
        drop(rx);
        let handles: Vec<_> = rxs
            .into_iter()
            .map(|r| {
                std::thread::spawn(move || {
                    let mut n = 0;
                    while r.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
