//! Offline stand-in for the `criterion` crate.
//!
//! Implements the benchmark-definition API this workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) with a plain
//! wall-clock measurement loop: estimate the per-iteration cost, size
//! batches to ~5 ms, take `sample_size` samples, report median and
//! spread. No statistical regression analysis, plotting, or baseline
//! storage — pass `--quick` for a fast smoke run (1 ms batches, 3
//! samples), which is what the CI smoke target uses.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark context; parses (and mostly ignores) CLI args.
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { quick: false, filter: None }
    }
}

impl Criterion {
    /// Build from `std::env::args`: honours `--quick` and a positional
    /// name filter; every other flag cargo-bench passes is ignored.
    pub fn from_args() -> Criterion {
        let mut quick = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                "--bench" | "--test" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { quick, filter }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            quick: self.quick,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Ungrouped convenience: a single-function group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { full: parameter.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    quick: bool,
    filter: Option<String>,
    // Tie to the Criterion borrow like the real API (prevents two live
    // groups interleaving their output).
    #[allow(dead_code)]
    _marker: std::marker::PhantomData<&'a mut ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// `Throughput` is accepted and ignored (the shim reports time only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function(&mut self, name: impl Display, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(&name.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.full, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&self, bench_name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, bench_name);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let (samples, target) = if self.quick {
            (3usize, Duration::from_millis(1))
        } else {
            (self.sample_size, Duration::from_millis(5))
        };
        let mut bencher = Bencher { samples, target, result: None };
        f(&mut bencher);
        match bencher.result {
            Some(r) => {
                println!(
                    "{full:<48} time: [{} {} {}]  ({} iters × {} samples)",
                    fmt_duration(r.min),
                    fmt_duration(r.median),
                    fmt_duration(r.max),
                    r.iters,
                    samples,
                );
            }
            None => println!("{full:<48} (no measurement: Bencher::iter never called)"),
        }
    }
}

/// Accepted for API compatibility; the shim does not convert times to
/// throughput rates.
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

struct Measurement {
    min: Duration,
    median: Duration,
    max: Duration,
    iters: u64,
}

/// Runs and times the benchmarked routine.
pub struct Bencher {
    samples: usize,
    target: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Measure `routine`: batches sized to the target sample duration,
    /// `samples` timed batches, per-iteration times recorded.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and estimate a single iteration.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.result = Some(Measurement {
            min: per_iter[0],
            median: per_iter[per_iter.len() / 2],
            max: per_iter[per_iter.len() - 1],
            iters,
        });
    }

    /// `iter_batched` collapses to plain `iter` with setup run inside
    /// the timed region (adequate for smoke benchmarking).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        self.iter(|| routine(setup()));
    }
}

/// Accepted for API compatibility.
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Prevent the optimizer from discarding a value (re-export shape of
/// `criterion::black_box`; benches here mostly use `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n * 100).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benches_run_and_measure() {
        let mut c = Criterion { quick: true, filter: None };
        demo(&mut c);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { quick: true, filter: Some("nomatch".into()) };
        // Would hang forever on a broken filter only if the routine ran;
        // mostly asserts the path executes without measuring.
        let mut group = c.benchmark_group("g");
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
