//! Offline stand-in for the `proptest` crate.
//!
//! Reproduces the API surface this workspace's property tests use —
//! `proptest! { fn name(x in strategy) {...} }`, `prop_assert!`,
//! range/collection/array/tuple strategies, `any::<T>()`, and
//! `ProptestConfig::with_cases` — over a deterministic splitmix64
//! generator seeded from the test's module path, so failures reproduce
//! exactly across runs. Shrinking is not implemented: a failing case
//! reports its inputs via the assertion message instead.

use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------- runner

/// Deterministic test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test identifier and case index: stable across runs
    /// and platforms.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Why a test case failed. (The real crate distinguishes rejections
/// from failures; this stand-in has no rejection machinery.)
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real default (256) makes some of the heavier grid
        // properties slow in debug builds; 32 keeps `cargo test -q`
        // snappy while still exercising varied inputs.
        ProptestConfig { cases: 32 }
    }
}

// -------------------------------------------------------------- strategy

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges of primitives are strategies, e.g. `0.1f64..10.0`, `0u8..8`.

macro_rules! int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $ty
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// Tuples of strategies sample componentwise.
macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
}

/// String patterns: `&str` is a strategy producing matching strings.
/// Supported forms are the ones used in this workspace — `".*"`
/// (arbitrary short strings, unicode included) and a single character
/// class with a repeat count, `"[a-z]{m,n}"`. Anything else falls back
/// to short alphanumeric strings.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        if let Some((chars, lo, hi)) = parse_class_repeat(self) {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        } else {
            // ".*" or unrecognized: arbitrary strings, biased short,
            // with occasional non-ASCII to exercise UTF-8 paths.
            let len = rng.below(24) as usize;
            (0..len)
                .map(|_| match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x2000) as u32).unwrap_or('ß'),
                    1 => '\u{1F600}',
                    _ => (b' ' + rng.below(95) as u8) as char,
                })
                .collect()
        }
    }
}

/// Parse `[a-z...]{m,n}` / `[abc]{n}` into (alphabet, min, max).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = {
        let body: Vec<char> = rest[..close].chars().collect();
        let mut out = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (a, b) = (body[i] as u32, body[i + 2] as u32);
                for cp in a..=b {
                    out.push(char::from_u32(cp)?);
                }
                i += 3;
            } else {
                out.push(body[i]);
                i += 1;
            }
        }
        out
    };
    if class.is_empty() {
        return None;
    }
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((class, lo, hi))
}

// ------------------------------------------------------------- arbitrary

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy for a primitive.
pub struct AnyPrim<T>(PhantomData<T>);

macro_rules! arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for AnyPrim<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyPrim<$ty>;
                fn arbitrary() -> AnyPrim<$ty> {
                    AnyPrim(PhantomData)
                }
            }
        )*
    };
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> AnyPrim<bool> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        loop {
            if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                return c;
            }
        }
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrim<char>;
    fn arbitrary() -> AnyPrim<char> {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        num::f64::ANY.sample(rng)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> AnyPrim<f64> {
        AnyPrim(PhantomData)
    }
}

/// `any::<Option<T>>()`: `None` one time in four.
pub struct AnyOption<S>(S);

impl<S: Strategy> Strategy for AnyOption<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.0.sample(rng))
        }
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    type Strategy = AnyOption<T::Strategy>;
    fn arbitrary() -> Self::Strategy {
        AnyOption(T::arbitrary())
    }
}

// ------------------------------------------------------------ collections

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Sizes for collection strategies: a fixed count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; N]`, each element drawn independently.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            let items: Vec<S::Value> = (0..N).map(|_| self.element.sample(rng)).collect();
            match items.try_into() {
                Ok(arr) => arr,
                Err(_) => unreachable!("sampled exactly N elements"),
            }
        }
    }

    macro_rules! uniform_fn {
        ($($fn:ident => $n:literal),* $(,)?) => {
            $(
                pub fn $fn<S: Strategy>(element: S) -> UniformArray<S, $n> {
                    UniformArray { element }
                }
            )*
        };
    }

    uniform_fn! {
        uniform2 => 2, uniform3 => 3, uniform4 => 4,
        uniform5 => 5, uniform6 => 6, uniform8 => 8,
    }
}

pub mod num {
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy over the full `f64` bit space: finite values of all
        /// magnitudes plus NaN, infinities, signed zero and subnormals.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                match rng.below(8) {
                    // Raw bit patterns cover NaN payloads, infinities
                    // and subnormals.
                    0 | 1 => f64::from_bits(rng.next_u64()),
                    2 => 0.0,
                    3 => -0.0,
                    4 => (rng.unit_f64() - 0.5) * 2e-300,
                    _ => (rng.unit_f64() - 0.5) * 2e9,
                }
            }
        }
    }
}

// ---------------------------------------------------------------- macros

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __test_name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(__test_name, __case as u64);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        ::std::panic!(
                            "property '{}' failed at case {}/{}:\n{}",
                            __test_name, __case, __cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure reports the condition (or
/// a formatted message) without panicking mid-sample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                ::std::format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left != right` (both `{:?}`)",
                __l
            )));
        }
    }};
}

pub mod strategy {
    pub use crate::{Just, Map, Strategy};
}

pub mod test_runner {
    pub use crate::{ProptestConfig as Config, TestCaseError, TestRng};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&v));
            let n = crate::Strategy::sample(&(3u8..7), &mut rng);
            assert!((3..7).contains(&n));
            let i = crate::Strategy::sample(&(-5i32..-2), &mut rng);
            assert!((-5..-2).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut a = crate::TestRng::for_case("det", 3);
        let mut b = crate::TestRng::for_case("det", 3);
        let s = crate::collection::vec(0.0f64..1.0, 2..9);
        assert_eq!(crate::Strategy::sample(&s, &mut a), crate::Strategy::sample(&s, &mut b));
    }

    #[test]
    fn char_class_patterns_match() {
        let mut rng = crate::TestRng::for_case("class", 1);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[a-z]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_samples_and_asserts(x in 1u32..100, v in crate::collection::vec(0.0f64..1.0, 4),
                                         q in crate::array::uniform5(-1.0f64..1.0)) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert_eq!(v.len(), 4);
            prop_assert!(q.iter().all(|a| a.abs() <= 1.0), "bad array {q:?}");
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 6);
        }
    }
}
