//! A laptop-scale V1309-style contact binary on the AMR tree, in the
//! co-rotating frame with full FMM self-gravity — the production
//! scenario of §3/§6 at mini scale.
//!
//! ```sh
//! cargo run --release -p examples --bin stellar_merger
//! ```

use octotiger::diagnostics::totals;
use octotiger::{Scenario, Simulation};
use octree::subgrid::Field;
use util::vec3::Vec3;

/// Centre of mass of the donor material (tracked by its passive scalar).
fn donor_com(sim: &Simulation) -> (f64, Vec3) {
    let domain = sim.tree().domain();
    let mut m = 0.0;
    let mut com = Vec3::ZERO;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        let vol = domain.cell_volume(key.level);
        for (i, j, k) in grid.indexer().interior() {
            let dm = (grid.at(Field::DonorCore, i, j, k) + grid.at(Field::DonorEnv, i, j, k)) * vol;
            m += dm;
            com += domain.cell_center(key, i, j, k) * dm;
        }
    }
    (m, if m > 0.0 { com / m } else { Vec3::ZERO })
}

fn main() {
    println!("V1309-style contact binary (scaled): AMR + FMM + rotating frame\n");
    let scenario = Scenario::mini_binary(2);
    let model = scenario.binary.as_ref().expect("binary scenario").clone();
    println!(
        "binary: M1 = {:.2}, M2 = {:.2}, a = {:.2}, Omega = {:.3}",
        model.primary.mass,
        model.secondary.mass,
        (model.primary_pos - model.secondary_pos).norm(),
        model.omega
    );
    println!(
        "spin/orbital angular momentum = {:.3} (Darwin threshold: 1/3)",
        model.spin_to_orbital()
    );

    let mut sim = Simulation::new(scenario);
    println!(
        "tree: {} sub-grids across levels {:?}\n",
        sim.tree().leaf_count(),
        sim.tree()
            .leaves_per_level()
            .iter()
            .map(|(l, c)| format!("L{l}:{c}"))
            .collect::<Vec<_>>()
    );

    let start = totals(sim.tree(), None);
    let (dm0, dcom0) = donor_com(&sim);
    println!("      t        dt       mass       |L_z|      donor CoM x");
    for _ in 0..4 {
        let dt = sim.step();
        let t = totals(sim.tree(), None);
        let (_, dcom) = donor_com(&sim);
        println!(
            "{:9.4}  {:8.2e}  {:9.5}  {:9.3e}  {:9.4}",
            sim.time, dt, t.mass, t.angular.z, dcom.x
        );
    }
    let end = totals(sim.tree(), None);
    let (dm1, dcom1) = donor_com(&sim);
    println!("\nmass drift: {:.2e} (relative)", ((end.mass - start.mass) / start.mass).abs());
    println!(
        "donor material: {:.4} -> {:.4} Msun, CoM moved {:.3} Rsun",
        dm0,
        dm1,
        (dcom1 - dcom0).norm()
    );
    println!("\nIn the co-rotating frame the tidally locked binary evolves");
    println!("slowly; passive scalars track the donor material exactly as");
    println!("Octo-Tiger's post-processing does (paper §4.2).");
}
