//! GPU co-processor offload demo (§5.1): FMM kernels launched onto
//! simulated CUDA streams with futures for completion, CPU fallback
//! when all streams are busy, and the launch-fraction statistics of
//! §6.1.2.
//!
//! ```sh
//! cargo run --release -p examples --bin gpu_offload
//! ```

use amt::Runtime;
use gpusim::device::{Device, DeviceSpec};
use gpusim::launch_policy::{LaunchOutcome, LaunchStats, QueuePolicy, StreamPool};
use gravity::kernels::{gather_moments, monopole_kernel, MomentGrid};
use gravity::multipole::Multipole;
use gravity::stencil::Stencil;
use std::sync::Arc;
use util::vec3::Vec3;

fn sample_grid(width: i32) -> MomentGrid {
    gather_moments(width, |i, j, k| {
        Some(Multipole::monopole(
            1.0 + ((i * 3 + j * 5 + k * 7) % 11) as f64 * 0.1,
            Vec3::new(i as f64, j as f64, k as f64),
        ))
    })
}

fn main() {
    println!("GPU offload demo: many small FMM kernels on CUDA streams\n");
    let rt = Runtime::new(4);
    let device = Device::new(DeviceSpec::p100(), 16);
    println!(
        "device: {} ({} SMs, {} streams)",
        device.spec().name,
        device.spec().sm_count,
        16
    );

    let stats = Arc::new(LaunchStats::new());
    let pools = StreamPool::partition(
        device.streams(),
        4,
        QueuePolicy::CpuFallback,
        Arc::clone(&stats),
    );
    let pools: Vec<Arc<StreamPool>> = pools.into_iter().map(Arc::new).collect();
    let stencil = Arc::new(Stencil::octotiger());

    // Launch 64 FMM kernel tasks from 4 "worker threads" (AMT tasks),
    // each following the §5.1 policy.
    let n_kernels = 64;
    let mut events = Vec::new();
    for n in 0..n_kernels {
        let pool = Arc::clone(&pools[n % pools.len()]);
        let stencil = Arc::clone(&stencil);
        events.push(rt.async_call(move || {
            let grid = sample_grid(stencil.width());
            let offsets: Vec<_> = stencil.offsets().to_vec();
            match pool.launch(move || {
                let result = monopole_kernel(&grid, &offsets);
                assert!(result.interactions > 0);
            }) {
                LaunchOutcome::Gpu(ev) => {
                    // The §5.1 future: wait via the runtime, not a spin.
                    ev.get();
                    "gpu"
                }
                LaunchOutcome::CpuFallback(kernel) => {
                    kernel();
                    "cpu"
                }
            }
        }));
    }
    let mut gpu = 0;
    let mut cpu = 0;
    for ev in events {
        match rt.get(ev) {
            "gpu" => gpu += 1,
            _ => cpu += 1,
        }
    }
    println!("\nkernels executed: {} on GPU, {} on CPU fallback", gpu, cpu);
    println!(
        "launch statistics: {:.4}% GPU (paper §6.1.2: 97.4995%-99.9997%",
        100.0 * stats.gpu_fraction()
    );
    println!("depending on the worker:stream ratio)");
    println!("device kernel count: {}", device.kernels_executed());
    device.shutdown();
    println!("\nStream events integrate into the task graph exactly like HPX");
    println!("CUDA futures: dependent work schedules when the GPU finishes.");
}
