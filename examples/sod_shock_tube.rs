//! The Sod shock tube (§4.2 verification test 1) against the exact
//! Riemann solution, with an ASCII profile plot.
//!
//! ```sh
//! cargo run --release -p examples --bin sod_shock_tube
//! ```

use hydro::analytic::SodSolution;
use octotiger::verification::run_sod;
use octotiger::{Scenario, Simulation};
use octree::subgrid::Field;

fn main() {
    println!("Sod shock tube vs the exact Riemann solution\n");

    // Headline numbers via the verification harness.
    for level in [1u8, 2] {
        let res = run_sod(level, 0.15);
        println!(
            "level {level} ({:3} cells across): L1(rho) = {:.5} over {} samples",
            16 << (level - 1),
            res.l1_density,
            res.samples
        );
    }

    // Profile plot from a fresh run.
    let mut sim = Simulation::new(Scenario::sod(2));
    while sim.time < 0.15 && sim.steps < 1000 {
        sim.step();
    }
    let exact = SodSolution::classic(1.4);
    let domain = sim.tree().domain();

    // Collect a 1-D profile along the x axis (y = z = centre row).
    let mut profile: Vec<(f64, f64, f64)> = Vec::new();
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            if c.y.abs() < domain.cell_dx(2) && c.z.abs() < domain.cell_dx(2) {
                let (rho_e, _, _) = exact.sample(c.x / sim.time);
                profile.push((c.x, grid.at(Field::Rho, i, j, k), rho_e));
            }
        }
    }
    profile.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

    println!("\n  x        rho(sim)  rho(exact)   profile ('*' sim, '|' exact)");
    for (x, rho, rho_e) in &profile {
        let bar = (rho * 40.0) as usize;
        let bar_e = (rho_e * 40.0) as usize;
        let mut line = vec![' '; 44];
        if bar_e < line.len() {
            line[bar_e] = '|';
        }
        if bar < line.len() {
            line[bar] = '*';
        }
        let line: String = line.into_iter().collect();
        println!("{x:7.3}   {rho:8.4}  {rho_e:8.4}   {line}");
    }
    println!("\nThe rarefaction fan, contact, and shock all track the exact");
    println!("solution (paper §4.2, Tasker et al. test 1).");
}
