//! Distributed scaling study: sub-grids/second and parallel efficiency
//! for the MPI and libfabric parcelports over the real octree
//! decomposition — a compact version of Figures 2 and 3.
//!
//! ```sh
//! cargo run --release -p examples --bin scaling_study
//! ```

use perfmodel::scaling::{simulate_scaling, v1309_structure_tree, HandCalibration};
use parcelport::netmodel::TransportKind;

fn main() {
    println!("Scaling study (compact Fig. 2/3): V1309 tree, SFC partition,");
    println!("halo census, transport cost models\n");
    let calib = HandCalibration::default();
    let level = 12;
    let tree = v1309_structure_tree(level);
    println!("level {level}: {} sub-grids\n", tree.leaf_count());

    let ref_point = simulate_scaling(&tree, 1, TransportKind::Libfabric, &calib);
    let ref_throughput = ref_point.subgrids_per_second;

    println!("nodes   mpi sg/s    lf sg/s   speedup(lf)  eff(lf)  lf/mpi");
    for nodes in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
        let m = simulate_scaling(&tree, nodes, TransportKind::Mpi, &calib);
        let l = simulate_scaling(&tree, nodes, TransportKind::Libfabric, &calib);
        println!(
            "{nodes:5}  {:9.1}  {:9.1}   {:9.2}   {:6.1}%  {:6.2}",
            m.subgrids_per_second,
            l.subgrids_per_second,
            l.subgrids_per_second / ref_throughput,
            100.0 * l.subgrids_per_second / (ref_throughput * nodes as f64),
            l.subgrids_per_second / m.subgrids_per_second
        );
    }
    println!("\nShapes reproduced from the paper: near-ideal speedup while");
    println!("work per node is plentiful, saturation as sub-grids/node");
    println!("shrink, and the libfabric/MPI ratio rising from ~1 (slightly");
    println!("below at one node — the polling tax) toward ~2.8 at scale.");
}
