//! Quickstart: evolve a self-gravitating polytropic star for a few
//! steps and watch the conserved quantities.
//!
//! ```sh
//! cargo run --release -p examples --bin quickstart
//! ```

use octotiger::diagnostics::{drift, totals};
use octotiger::{Scenario, Simulation};

fn main() {
    println!("octotiger-rs quickstart: a 1 Msun polytrope in equilibrium");
    println!("(the §4.2 'single star at rest' verification scenario)\n");

    let scenario = Scenario::single_star(1);
    let mut sim = Simulation::new(scenario);
    println!(
        "tree: {} sub-grids ({} cells), gravity {}",
        sim.tree().leaf_count(),
        sim.tree().leaf_count() * 512,
        if sim.config.gravity { "on" } else { "off" }
    );

    let start = totals(sim.tree(), None);
    println!(
        "t = 0.000: mass {:.6}, |P| {:.3e}, |L| {:.3e}, E {:.6}",
        start.mass,
        start.momentum.norm(),
        start.angular.norm(),
        start.energy()
    );

    for step in 1..=10 {
        let dt = sim.step();
        if step % 2 == 0 {
            let now = totals(sim.tree(), None);
            let d = drift(&start, &now, start.mass, start.mass);
            println!(
                "t = {:.3}: dt {:.2e}  mass drift {:.2e}  |dP|/Mc {:.2e}  |dL| {:.2e}",
                sim.time, dt, d.mass, d.momentum, d.angular
            );
        }
    }

    let end = totals(sim.tree(), None);
    let d = drift(&start, &end, start.mass, start.mass);
    println!("\nafter {} steps (t = {:.4}):", sim.steps, sim.time);
    println!("  mass drift:             {:.3e}", d.mass);
    println!("  momentum drift:         {:.3e}", d.momentum);
    println!("  angular momentum drift: {:.3e}", d.angular);
    println!("  sub-grids processed:    {}", sim.subgrids_processed);
    println!(
        "  scheduler tasks:        {}",
        sim.runtime().counters().get("tasks/executed")
    );
    println!("\nThe star retains its structure; conservation holds to");
    println!("round-off (the paper's §4.2 test 3).");
}
