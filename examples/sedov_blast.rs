//! The Sedov–Taylor blast wave (§4.2 verification test 2): the shock
//! radius against the analytic similarity solution over time.
//!
//! ```sh
//! cargo run --release -p examples --bin sedov_blast
//! ```

use hydro::analytic::sedov;
use octotiger::{Scenario, Simulation};
use octree::subgrid::Field;

fn shock_radius(sim: &Simulation) -> f64 {
    let domain = sim.tree().domain();
    let mut r_shock = 0.0f64;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            if grid.at(Field::Rho, i, j, k) > 1.2 {
                r_shock = r_shock.max(domain.cell_center(key, i, j, k).norm());
            }
        }
    }
    r_shock
}

fn main() {
    println!("Sedov-Taylor blast wave: shock radius vs R(t) = xi0 (E t^2 / rho)^(1/5)\n");
    let e0 = 1.0;
    let mut sim = Simulation::new(Scenario::sedov(2, e0));
    println!("   t        R(sim)    R(analytic)   ratio");
    let mut next_report = 0.005;
    while sim.time < 0.04 && sim.steps < 2000 {
        sim.step();
        if sim.time >= next_report {
            let r = shock_radius(&sim);
            let ra = sedov::shock_radius(e0, 1.0, sim.time, 5.0 / 3.0);
            println!(
                "{:8.4}  {:8.4}   {:8.4}     {:5.2}",
                sim.time,
                r,
                ra,
                if ra > 0.0 { r / ra } else { 0.0 }
            );
            next_report += 0.005;
        }
    }
    // Post-shock compression check.
    let mut rho_max = 0.0f64;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            rho_max = rho_max.max(grid.at(Field::Rho, i, j, k));
        }
    }
    println!(
        "\npeak compression {:.2} (strong-shock limit (g+1)/(g-1) = 4 for gamma = 5/3)",
        rho_max
    );
    println!("The measured front tracks the t^(2/5) similarity law (paper §4.2).");
}
