#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   1. release build of the whole workspace (bins + benches included)
#   2. the full test suite in quiet mode
#   3. rustdoc with warnings denied (broken links, missing docs on amt)
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --workspace --release =="
cargo build --workspace --release

echo
echo "== tier-1: cargo test -q =="
cargo test -q

echo
echo "== tier-1: cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo
echo "tier-1 green"
