#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   1. release build of the whole workspace (bins + benches included)
#   2. benches compile (cargo bench --no-run — `cargo build` skips them)
#   3. the full test suite in quiet mode
#   4. the FMM_CHUNK_CELLS and FMM_AGG_* knobs round-trip builder →
#      driver config
#   5. rustdoc with warnings denied (broken links, missing docs on amt)
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: deprecation budget =="
# The deprecation budget is zero: the one-release Locality::send /
# Locality::call shims were retired with the typed work-item redesign.
# Nothing may be parked behind #[deprecated]; migrate or delete it.
stray=$(grep -rln --include='*.rs' '#\[deprecated' crates tests || true)
if [ -n "$stray" ]; then
    echo "!! deprecated items found (the budget is zero):" >&2
    echo "$stray" >&2
    exit 1
fi
echo "deprecation budget OK (0/0 shims)"

echo
echo "== tier-1: cargo build --workspace --release =="
cargo build --workspace --release

echo
echo "== tier-1: cargo bench --no-run (benches must keep compiling) =="
cargo bench --workspace --no-run

echo
echo "== tier-1: cargo test -q =="
cargo test -q

echo
echo "== tier-1: knob round-trips (builder -> driver config) =="
cargo test -q -p integration-tests --test distributed_driver \
    fmm_chunk_cells_round_trips_through_config_and_cluster
cargo test -q -p integration-tests --test distributed_driver \
    fmm_agg_knobs_round_trip_through_config_and_cluster

echo
echo "== tier-1: cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo
echo "tier-1 green"
