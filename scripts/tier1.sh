#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   1. release build of the whole workspace (bins + benches included)
#   2. benches compile (cargo bench --no-run — `cargo build` skips them)
#   3. the full test suite in quiet mode
#   4. the FMM_CHUNK_CELLS knob round-trips builder → driver config
#   5. rustdoc with warnings denied (broken links, missing docs on amt)
#
# Usage: scripts/tier1.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: deprecation budget =="
# The only #[deprecated] items allowed in the tree are the two
# one-release Locality::send / Locality::call shims in cluster.rs.
# Anything else must be migrated or deleted, not parked.
stray=$(grep -rln --include='*.rs' '#\[deprecated' crates tests \
    | grep -v '^crates/parcelport/src/cluster.rs$' || true)
if [ -n "$stray" ]; then
    echo "!! deprecated items outside the allowed send/call shims:" >&2
    echo "$stray" >&2
    exit 1
fi
shims=$(grep -c '#\[deprecated' crates/parcelport/src/cluster.rs || true)
if [ "$shims" -gt 2 ]; then
    echo "!! cluster.rs has $shims deprecated items; only the send/call shims (2) are allowed" >&2
    exit 1
fi
echo "deprecation budget OK ($shims/2 shims)"

echo
echo "== tier-1: cargo build --workspace --release =="
cargo build --workspace --release

echo
echo "== tier-1: cargo bench --no-run (benches must keep compiling) =="
cargo bench --workspace --no-run

echo
echo "== tier-1: cargo test -q =="
cargo test -q

echo
echo "== tier-1: FMM_CHUNK_CELLS round-trip (builder -> driver config) =="
cargo test -q -p integration-tests --test distributed_driver \
    fmm_chunk_cells_round_trips_through_config_and_cluster

echo
echo "== tier-1: cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo
echo "tier-1 green"
