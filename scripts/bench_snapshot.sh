#!/usr/bin/env bash
# FMM performance snapshot: kernel microbenchmarks (quick mode), the
# measured solver throughput / launch-split / scratch numbers, the
# distributed real-driver transport comparison, the APEX-style task
# timeline, and the Fig 2/3 trace-calibrated scale-out co-simulation —
# all merged into BENCH_fmm.json at the repo root, with the raw
# Perfetto trace archived under target/bench/.
#
# Usage: scripts/bench_snapshot.sh [fmm_iters] [driver_steps]
#
# Any bench bin exiting non-zero (including a panic) aborts the script
# with a loud marker so a broken snapshot is never mistaken for a run.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() {
    echo "!! BENCH FAILED: $1 exited non-zero — BENCH_fmm.json is stale" >&2
    exit 1
}

echo "== fmm_kernels microbenchmarks (quick) =="
cargo bench -p bench --bench fmm_kernels -- --quick || fail "fmm_kernels"

echo
echo "== solver throughput snapshot =="
cargo run --release -p bench --bin fmm_snapshot -- "${1:-3}" || fail "fmm_snapshot"

# Scaling gate: with the same-level pass chunked, 2 workers must be at
# least 0.9x serial throughput. A regression here means the pass
# re-grew a serialization point (one monolithic task per node, a
# blocking merge, ...), so fail loudly instead of archiving it.
awk '
    /"serial_subgrids_per_sec"/ { gsub(/[,"]/, ""); serial = $2 }
    /"parallel_subgrids_per_sec"/ {
        if (match($0, /"2": [0-9.]+/)) {
            two = substr($0, RSTART + 5, RLENGTH - 5)
        }
    }
    END {
        if (serial == "" || two == "") {
            print "!! BENCH FAILED: throughput fields missing from BENCH_fmm.json" > "/dev/stderr"
            exit 1
        }
        ratio = two / serial
        printf "scaling gate: 2-worker %.1f vs serial %.1f sub-grids/s (%.2fx)\n", two, serial, ratio
        if (ratio < 0.9) {
            printf "!! BENCH FAILED: 2-worker throughput %.2fx serial (< 0.9x) — same-level pass lost its parallelism\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' BENCH_fmm.json || fail "fmm scaling gate"

echo
echo "== §6.1.2 launch fractions + work-aggregation collapse =="
cargo run --release -p bench --bin gpu_launch_fraction || fail "gpu_launch_fraction"

# Aggregation gate: the batched 64-sub-grid solve must issue at most
# half the launches of the per-kernel baseline (ISSUE 7 acceptance:
# >= 2x launch-count collapse at the default 8-slot window). Falling
# under it means the slot windows stopped fusing.
awk '
    /"baseline_launches"/ { gsub(/[,"]/, ""); baseline = $2 }
    /"batched_launches"/  { gsub(/[,"]/, ""); batched = $2 }
    END {
        if (baseline == "" || batched == "") {
            print "!! BENCH FAILED: aggregation fields missing from BENCH_fmm.json" > "/dev/stderr"
            exit 1
        }
        printf "aggregation gate: %d batched vs %d per-item launches (%.2fx collapse)\n", batched, baseline, baseline / batched
        if (batched * 2 > baseline) {
            printf "!! BENCH FAILED: batched solve issued %d launches (> half of %d) — aggregation stopped fusing\n", batched, baseline > "/dev/stderr"
            exit 1
        }
    }
' BENCH_fmm.json || fail "aggregation gate"

echo
echo "== distributed real-driver transport comparison =="
cargo run --release -p bench --bin fig3_real_solver -- "${2:-1}" || fail "fig3_real_solver"

echo
echo "== task-trace timeline (per-category breakdown + overhead) =="
cargo run --release -p bench --bin trace_timeline -- "${2:-2}" \
    target/bench/trace_timeline.json || fail "trace_timeline"

echo
echo "== fault-tolerance overhead (reliable delivery + checkpoint) =="
cargo run --release -p bench --bin fault_overhead -- "${2:-2}" || fail "fault_overhead"

echo
echo "== Fig 2/3 trace-calibrated scale-out co-simulation =="
cargo run --release -p bench --bin fig23_scaleout || fail "fig23_scaleout"

# Scale-out gates: the co-simulation must (a) have written its section,
# (b) reproduce the Fig 3 shape — libfabric at worst break-even at one
# locality and clearly ahead of MPI at 5400 — and (c) land the Fig 2
# efficiency roll-off at 5400 localities inside a sane band: well below
# ideal (comm-bound) but not collapsed to serial.
awk '
    /"scaleout"/            { seen = 1 }
    /"crossover_localities"/ { gsub(/[,"]/, ""); crossover = $2 }
    /"ratio_at_1"/          { gsub(/[,"]/, ""); r1 = $2 }
    /"ratio_at_5400"/       { gsub(/[,"]/, ""); r5400 = $2 }
    /"efficiency_at_5400"/  { gsub(/[,"]/, ""); eff = $2 }
    END {
        if (!seen || crossover == "" || r1 == "" || r5400 == "" || eff == "") {
            print "!! BENCH FAILED: scaleout fields missing from BENCH_fmm.json" > "/dev/stderr"
            exit 1
        }
        printf "scale-out gate: crossover %d localities, lf:MPI %.2fx -> %.2fx, eff(5400) %.3f\n", crossover, r1, r5400, eff
        if (r1 > 1.02) {
            printf "!! BENCH FAILED: libfabric already %.2fx MPI at 1 locality — crossover shape lost\n", r1 > "/dev/stderr"
            exit 1
        }
        if (r5400 < 1.05) {
            printf "!! BENCH FAILED: libfabric only %.2fx MPI at 5400 localities — Fig 3 advantage gone\n", r5400 > "/dev/stderr"
            exit 1
        }
        if (eff < 0.05 || eff > 0.85) {
            printf "!! BENCH FAILED: efficiency %.3f at 5400 localities outside (0.05, 0.85) — Fig 2 roll-off shape lost\n", eff > "/dev/stderr"
            exit 1
        }
    }
' BENCH_fmm.json || fail "scale-out gate"
