#!/usr/bin/env bash
# FMM performance snapshot: kernel microbenchmarks (quick mode) plus the
# measured solver throughput / launch-split / scratch numbers, written
# to BENCH_fmm.json at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmm_kernels microbenchmarks (quick) =="
cargo bench -p bench --bench fmm_kernels -- --quick

echo
echo "== solver throughput snapshot =="
cargo run --release -p bench --bin fmm_snapshot -- "${1:-3}"
