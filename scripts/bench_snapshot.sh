#!/usr/bin/env bash
# FMM performance snapshot: kernel microbenchmarks (quick mode), the
# measured solver throughput / launch-split / scratch numbers, the
# distributed real-driver transport comparison, and the APEX-style
# task timeline — all merged into BENCH_fmm.json at the repo root,
# with the raw Perfetto trace archived next to it.
#
# Usage: scripts/bench_snapshot.sh [fmm_iters] [driver_steps]
#
# Any bench bin exiting non-zero (including a panic) aborts the script
# with a loud marker so a broken snapshot is never mistaken for a run.
set -euo pipefail
cd "$(dirname "$0")/.."

fail() {
    echo "!! BENCH FAILED: $1 exited non-zero — BENCH_fmm.json is stale" >&2
    exit 1
}

echo "== fmm_kernels microbenchmarks (quick) =="
cargo bench -p bench --bench fmm_kernels -- --quick || fail "fmm_kernels"

echo
echo "== solver throughput snapshot =="
cargo run --release -p bench --bin fmm_snapshot -- "${1:-3}" || fail "fmm_snapshot"

# Scaling gate: with the same-level pass chunked, 2 workers must be at
# least 0.9x serial throughput. A regression here means the pass
# re-grew a serialization point (one monolithic task per node, a
# blocking merge, ...), so fail loudly instead of archiving it.
awk '
    /"serial_subgrids_per_sec"/ { gsub(/[,"]/, ""); serial = $2 }
    /"parallel_subgrids_per_sec"/ {
        if (match($0, /"2": [0-9.]+/)) {
            two = substr($0, RSTART + 5, RLENGTH - 5)
        }
    }
    END {
        if (serial == "" || two == "") {
            print "!! BENCH FAILED: throughput fields missing from BENCH_fmm.json" > "/dev/stderr"
            exit 1
        }
        ratio = two / serial
        printf "scaling gate: 2-worker %.1f vs serial %.1f sub-grids/s (%.2fx)\n", two, serial, ratio
        if (ratio < 0.9) {
            printf "!! BENCH FAILED: 2-worker throughput %.2fx serial (< 0.9x) — same-level pass lost its parallelism\n", ratio > "/dev/stderr"
            exit 1
        }
    }
' BENCH_fmm.json || fail "fmm scaling gate"

echo
echo "== §6.1.2 launch fractions + work-aggregation collapse =="
cargo run --release -p bench --bin gpu_launch_fraction || fail "gpu_launch_fraction"

# Aggregation gate: the batched 64-sub-grid solve must issue at most
# half the launches of the per-kernel baseline (ISSUE 7 acceptance:
# >= 2x launch-count collapse at the default 8-slot window). Falling
# under it means the slot windows stopped fusing.
awk '
    /"baseline_launches"/ { gsub(/[,"]/, ""); baseline = $2 }
    /"batched_launches"/  { gsub(/[,"]/, ""); batched = $2 }
    END {
        if (baseline == "" || batched == "") {
            print "!! BENCH FAILED: aggregation fields missing from BENCH_fmm.json" > "/dev/stderr"
            exit 1
        }
        printf "aggregation gate: %d batched vs %d per-item launches (%.2fx collapse)\n", batched, baseline, baseline / batched
        if (batched * 2 > baseline) {
            printf "!! BENCH FAILED: batched solve issued %d launches (> half of %d) — aggregation stopped fusing\n", batched, baseline > "/dev/stderr"
            exit 1
        }
    }
' BENCH_fmm.json || fail "aggregation gate"

echo
echo "== distributed real-driver transport comparison =="
cargo run --release -p bench --bin fig3_real_solver -- "${2:-1}" || fail "fig3_real_solver"

echo
echo "== task-trace timeline (per-category breakdown + overhead) =="
cargo run --release -p bench --bin trace_timeline -- "${2:-2}" trace_timeline.json \
    || fail "trace_timeline"

echo
echo "== fault-tolerance overhead (reliable delivery + checkpoint) =="
cargo run --release -p bench --bin fault_overhead -- "${2:-2}" || fail "fault_overhead"
