//! The finite-volume hydrodynamics solver of Octo-Tiger (paper §4.2).
//!
//! "Octo-Tiger uses the central advection scheme of [Kurganov & Tadmor
//! 2000]. The piece-wise parabolic method (PPM) is used to compute the
//! thermodynamic variables at cell faces. ... We use the dual-energy
//! formalism of \[Enzo\] ...: We evolve both the gas total energy as well
//! as the entropy. ... The angular momentum technique described by
//! [Després & Labourasse] is applied to the PPM reconstruction."
//!
//! Modules:
//!
//! * [`eos`] — ideal-gas (γ-law) equation of state and the entropy
//!   tracer τ used by the dual-energy formalism.
//! * [`prim`] — conserved ↔ primitive conversion with the dual-energy
//!   switch (entropy-based internal energy in high-Mach flow).
//! * [`ppm`] — 1-D piecewise parabolic reconstruction with monotonicity
//!   limiting (two ghost cells each side, matching `octree::N_GHOST`).
//! * [`flux`] — physical Euler fluxes and the Kurganov–Tadmor central
//!   numerical flux with local signal speeds.
//! * [`step`] — the per-sub-grid flux sweep producing `dU/dt`, the CFL
//!   time step, and TVD-RK2 integration over a whole octree level.
//! * [`angmom`] — the angular-momentum bookkeeping: face torques are
//!   accumulated into the evolved spin fields so that total (orbital +
//!   spin) angular momentum is conserved to machine precision.
//! * [`rotating`] — Coriolis and centrifugal source terms of the
//!   rotating frame ("the grid is rotating about the z-axis with a
//!   period of 1.42 days").
//! * [`analytic`] — exact Sod shock-tube and Sedov–Taylor solutions for
//!   the verification suite of §4.2.
//! * [`radiation`] — the §7 extension: the gray two-moment (M1)
//!   radiation transport module the paper reports developing for the
//!   high-accuracy V1309 runs.

pub mod analytic;
pub mod angmom;
pub mod eos;
pub mod flux;
pub mod ppm;
pub mod prim;
pub mod radiation;
pub mod rotating;
pub mod step;

pub use eos::IdealGas;
pub use prim::Primitive;
pub use step::{cfl_dt, HydroStepper};
