//! The per-sub-grid flux sweep, CFL condition, and RK2 integration.
//!
//! [`HydroStepper::dudt`] computes the semi-discrete right-hand side for
//! every interior cell of a sub-grid whose ghosts have been filled:
//! PPM-reconstruct each field along each axis, evaluate the
//! Kurganov–Tadmor flux at every face, difference fluxes, and add the
//! angular-momentum spin source of [`crate::angmom`]. The driver in the
//! `octotiger` crate composes this with halo exchange and TVD-RK2
//! stages, exactly the structure of Octo-Tiger's timestep.

use crate::angmom::spin_source;
use crate::eos::{IdealGas, DUAL_ENERGY_SWITCH};
use crate::flux::{kt_flux, physical_flux, StateVec};
use crate::ppm::ppm_cell;
use octree::subgrid::{Field, SubGrid, ALL_FIELDS, FIELD_COUNT, N_SUB};
use util::vec3::Vec3;

/// CFL time step: `cfl * dx / max_signal_speed`.
pub fn cfl_dt(dx: f64, max_signal: f64, cfl: f64) -> f64 {
    assert!(cfl > 0.0 && cfl < 1.0, "CFL number must be in (0,1)");
    if max_signal <= 0.0 {
        f64::INFINITY
    } else {
        cfl * dx / max_signal
    }
}

/// The hydrodynamics solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct HydroStepper {
    pub eos: IdealGas,
}

impl HydroStepper {
    pub fn new(eos: IdealGas) -> HydroStepper {
        HydroStepper { eos }
    }

    /// Gather the full state vector of cell `(i, j, k)` (ghosts allowed).
    #[inline]
    fn state_at(&self, grid: &SubGrid, i: isize, j: isize, k: isize) -> StateVec {
        let mut u = [0.0; FIELD_COUNT];
        for f in ALL_FIELDS {
            u[f.idx()] = grid.at(f, i, j, k);
        }
        u
    }

    /// Maximum signal speed |u|+c over the interior (for the CFL step).
    pub fn max_signal_speed(&self, grid: &SubGrid) -> f64 {
        let mut max = 0.0f64;
        for (i, j, k) in grid.indexer().interior() {
            let u = self.state_at(grid, i, j, k);
            for axis in 0..3 {
                let (_, a) = physical_flux(&self.eos, &u, axis);
                max = max.max(a);
            }
        }
        max
    }

    /// Semi-discrete RHS for every interior cell, in the row-major
    /// interior order of `GridIndexer::interior`. Ghosts must be filled.
    pub fn dudt(&self, grid: &SubGrid, dx: f64) -> Vec<StateVec> {
        let n = N_SUB as isize;
        let mut out = vec![[0.0; FIELD_COUNT]; (n * n * n) as usize];
        let interior_index =
            |i: isize, j: isize, k: isize| -> usize { ((i * n + j) * n + k) as usize };

        // Per axis: reconstruct lines and difference face fluxes.
        for axis in 0..3usize {
            // Iterate over the two transverse coordinates.
            for a in 0..n {
                for b in 0..n {
                    // Gather the line of states: cells -3..n+3 along `axis`.
                    let cell = |c: isize| -> (isize, isize, isize) {
                        match axis {
                            0 => (c, a, b),
                            1 => (a, c, b),
                            _ => (a, b, c),
                        }
                    };
                    let line: Vec<StateVec> = (-3..n + 3)
                        .map(|c| {
                            let (i, j, k) = cell(c);
                            self.state_at(grid, i, j, k)
                        })
                        .collect();
                    // PPM faces for cells -1..n (line index offset +3).
                    // faces[c + 1] = (minus, plus) of cell c.
                    let n_rec = (n + 2) as usize;
                    let mut minus = vec![[0.0; FIELD_COUNT]; n_rec];
                    let mut plus = vec![[0.0; FIELD_COUNT]; n_rec];
                    for (rec, c) in (-1..n + 1).enumerate() {
                        let li = (c + 3) as usize;
                        for f in 0..FIELD_COUNT {
                            let w = [
                                line[li - 2][f],
                                line[li - 1][f],
                                line[li][f],
                                line[li + 1][f],
                                line[li + 2][f],
                            ];
                            let fp = ppm_cell(w);
                            minus[rec][f] = fp.minus;
                            plus[rec][f] = fp.plus;
                        }
                    }
                    // Face fluxes: face `c` sits between cells c-1 and c,
                    // for c in 0..=n.
                    let fluxes: Vec<StateVec> = (0..=n)
                        .map(|c| {
                            let left = &plus[c as usize]; // cell c-1 is rec index c-1+1
                            let right = &minus[(c + 1) as usize];
                            kt_flux(&self.eos, left, right, axis)
                        })
                        .collect();
                    // Difference into the RHS and add the spin source.
                    for c in 0..n {
                        let (i, j, k) = cell(c);
                        let idx = interior_index(i, j, k);
                        let fm = &fluxes[c as usize];
                        let fp = &fluxes[(c + 1) as usize];
                        for f in 0..FIELD_COUNT {
                            out[idx][f] += (fm[f] - fp[f]) / dx;
                        }
                        // Angular momentum bookkeeping: momentum flux
                        // vectors through the two faces.
                        let fsm = Vec3::new(
                            fm[Field::Sx.idx()],
                            fm[Field::Sy.idx()],
                            fm[Field::Sz.idx()],
                        );
                        let fsp = Vec3::new(
                            fp[Field::Sx.idx()],
                            fp[Field::Sy.idx()],
                            fp[Field::Sz.idx()],
                        );
                        let spin = spin_source(axis, fsm, fsp);
                        out[idx][Field::Lx.idx()] += spin.x;
                        out[idx][Field::Ly.idx()] += spin.y;
                        out[idx][Field::Lz.idx()] += spin.z;
                    }
                }
            }
        }
        out
    }

    /// `U += dt * dudt` over the interior.
    pub fn apply(&self, grid: &mut SubGrid, dudt: &[StateVec], dt: f64) {
        let n = N_SUB as isize;
        assert_eq!(dudt.len(), (n * n * n) as usize, "RHS length mismatch");
        let mut idx = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    for f in ALL_FIELDS {
                        grid.add(f, i, j, k, dt * dudt[idx][f.idx()]);
                    }
                    idx += 1;
                }
            }
        }
    }

    /// `U = (U_old + U_stage + dt * dudt(U_stage)) / 2` — the second TVD
    /// RK2 stage. `grid` holds `U_stage`; `old` holds `U_old`.
    pub fn apply_rk2_final(&self, grid: &mut SubGrid, old: &SubGrid, dudt: &[StateVec], dt: f64) {
        let n = N_SUB as isize;
        assert_eq!(dudt.len(), (n * n * n) as usize, "RHS length mismatch");
        let mut idx = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    for f in ALL_FIELDS {
                        let u_old = old.at(f, i, j, k);
                        let u_stage = grid.at(f, i, j, k);
                        grid.set(
                            f,
                            i,
                            j,
                            k,
                            0.5 * (u_old + u_stage + dt * dudt[idx][f.idx()]),
                        );
                    }
                    idx += 1;
                }
            }
        }
    }

    /// Physical floors: density and internal energy must stay positive
    /// (strong rarefactions on under-resolved grids can otherwise drive
    /// them negative). Momenta in floored cells are zeroed — the cell
    /// is numerically empty.
    pub fn enforce_floors(&self, grid: &mut SubGrid) {
        let n = N_SUB as isize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let rho = grid.at(Field::Rho, i, j, k);
                    if rho < crate::prim::RHO_FLOOR {
                        grid.set(Field::Rho, i, j, k, crate::prim::RHO_FLOOR);
                        grid.set(Field::Sx, i, j, k, 0.0);
                        grid.set(Field::Sy, i, j, k, 0.0);
                        grid.set(Field::Sz, i, j, k, 0.0);
                    }
                    let rho = grid.at(Field::Rho, i, j, k);
                    let e_floor = rho * 1.0e-10;
                    let s = Vec3::new(
                        grid.at(Field::Sx, i, j, k),
                        grid.at(Field::Sy, i, j, k),
                        grid.at(Field::Sz, i, j, k),
                    );
                    let ke = 0.5 * s.norm2() / rho;
                    if grid.at(Field::Egas, i, j, k) < ke + e_floor {
                        grid.set(Field::Egas, i, j, k, ke + e_floor);
                    }
                    if grid.at(Field::Tau, i, j, k) < 0.0 {
                        let t = self.eos.tau_from_e(e_floor);
                        grid.set(Field::Tau, i, j, k, t);
                    }
                }
            }
        }
    }

    /// Dual-energy resynchronization: where the thermal energy is well
    /// resolved, reset the entropy tracer from the total energy (keeps τ
    /// consistent in smooth flow; elsewhere τ remains authoritative).
    pub fn resync_tau(&self, grid: &mut SubGrid) {
        let n = N_SUB as isize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let rho = grid.at(Field::Rho, i, j, k).max(crate::prim::RHO_FLOOR);
                    let s = Vec3::new(
                        grid.at(Field::Sx, i, j, k),
                        grid.at(Field::Sy, i, j, k),
                        grid.at(Field::Sz, i, j, k),
                    );
                    let egas = grid.at(Field::Egas, i, j, k);
                    let e_thermal = egas - 0.5 * s.norm2() / rho;
                    if egas > 0.0 && e_thermal > DUAL_ENERGY_SWITCH * egas {
                        grid.set(Field::Tau, i, j, k, self.eos.tau_from_e(e_thermal));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_grid(rho: f64, vel: Vec3, e_int: f64) -> SubGrid {
        let eos = IdealGas::monatomic();
        let mut g = SubGrid::new();
        let prim = crate::prim::Primitive { rho, vel, p: eos.pressure(e_int), e_int };
        let (r, s, e, tau) = prim.to_conserved(&eos);
        // Fill interior AND ghosts (as a periodic/infinite uniform medium).
        let indexer = g.indexer();
        for (i, j, k) in indexer.all() {
            g.set(Field::Rho, i, j, k, r);
            g.set(Field::Sx, i, j, k, s.x);
            g.set(Field::Sy, i, j, k, s.y);
            g.set(Field::Sz, i, j, k, s.z);
            g.set(Field::Egas, i, j, k, e);
            g.set(Field::Tau, i, j, k, tau);
        }
        g
    }

    #[test]
    fn uniform_state_is_steady() {
        let stepper = HydroStepper::new(IdealGas::monatomic());
        let g = uniform_grid(1.0, Vec3::new(0.3, -0.2, 0.1), 2.0);
        let rhs = stepper.dudt(&g, 0.1);
        for (n, du) in rhs.iter().enumerate() {
            for f in 0..FIELD_COUNT {
                assert!(
                    du[f].abs() < 1e-12,
                    "cell {n} field {f}: residual {}",
                    du[f]
                );
            }
        }
    }

    #[test]
    fn cfl_dt_behaviour() {
        assert!((cfl_dt(0.1, 2.0, 0.4) - 0.02).abs() < 1e-15);
        assert_eq!(cfl_dt(0.1, 0.0, 0.4), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn cfl_number_validated() {
        let _ = cfl_dt(0.1, 1.0, 1.5);
    }

    #[test]
    fn max_signal_speed_of_static_gas_is_sound_speed() {
        let eos = IdealGas::monatomic();
        let stepper = HydroStepper::new(eos);
        let g = uniform_grid(1.0, Vec3::ZERO, 1.5);
        let c = eos.sound_speed(1.0, eos.pressure(1.5));
        assert!((stepper.max_signal_speed(&g) - c).abs() < 1e-12);
    }

    /// Build a grid with a 1-D density pulse and mirror-periodic ghosts,
    /// then check conservation of the flux sweep.
    #[test]
    fn flux_sweep_conserves_in_periodic_interior() {
        let eos = IdealGas::monatomic();
        let stepper = HydroStepper::new(eos);
        let mut g = uniform_grid(1.0, Vec3::new(0.5, 0.0, 0.0), 1.0);
        // Periodic pulse along x with period N_SUB so ghosts replicate.
        let indexer = g.indexer();
        for (i, j, k) in indexer.all() {
            let phase =
                2.0 * std::f64::consts::PI * (i.rem_euclid(N_SUB as isize) as f64) / N_SUB as f64;
            let rho = 1.0 + 0.2 * phase.sin();
            g.set(Field::Rho, i, j, k, rho);
            g.set(Field::Sx, i, j, k, rho * 0.5);
            let e_int = 1.0;
            g.set(Field::Egas, i, j, k, e_int + 0.5 * rho * 0.25);
            g.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
        }
        let dx = 0.1;
        let rhs = stepper.dudt(&g, dx);
        // With periodic data the total mass change is exactly the
        // difference of identical boundary fluxes: zero.
        let total_drho: f64 = rhs.iter().map(|du| du[Field::Rho.idx()]).sum();
        assert!(
            total_drho.abs() < 1e-10,
            "periodic sweep must conserve mass, got {total_drho}"
        );
    }

    #[test]
    fn apply_and_rk2_combine_correctly() {
        let stepper = HydroStepper::new(IdealGas::monatomic());
        let mut g = uniform_grid(2.0, Vec3::ZERO, 1.0);
        let old = g.clone();
        let n3 = N_SUB * N_SUB * N_SUB;
        // Artificial RHS: +1 on density everywhere.
        let mut rhs = vec![[0.0; FIELD_COUNT]; n3];
        for du in rhs.iter_mut() {
            du[Field::Rho.idx()] = 1.0;
        }
        stepper.apply(&mut g, &rhs, 0.1);
        assert!((g.at(Field::Rho, 0, 0, 0) - 2.1).abs() < 1e-14);
        // RK2 final: U = (2.0 + 2.1 + 0.1*1)/2 = 2.1.
        stepper.apply_rk2_final(&mut g, &old, &rhs, 0.1);
        assert!((g.at(Field::Rho, 0, 0, 0) - 2.1).abs() < 1e-14);
    }

    #[test]
    fn resync_tau_updates_resolved_cells() {
        let eos = IdealGas::monatomic();
        let stepper = HydroStepper::new(eos);
        let mut g = uniform_grid(1.0, Vec3::ZERO, 2.0);
        // Corrupt tau; resync must restore it from E.
        g.field_mut(Field::Tau).fill(0.0);
        stepper.resync_tau(&mut g);
        let expect = eos.tau_from_e(2.0);
        assert!((g.at(Field::Tau, 3, 3, 3) - expect).abs() < 1e-12);
    }

    #[test]
    fn smooth_symmetric_stress_has_zero_spin_source() {
        // For a smooth linear shear the discrete momentum-flux tensor is
        // symmetric, so the torque residual - and hence the spin source -
        // vanishes identically: the x-sweep term -F_y(x-faces) cancels
        // the y-sweep term +F_x(y-faces). Spin only absorbs *discrete*
        // asymmetries (limiting/dissipation at jumps).
        let eos = IdealGas::monatomic();
        let stepper = HydroStepper::new(eos);
        let mut g = uniform_grid(1.0, Vec3::ZERO, 1.0);
        let indexer = g.indexer();
        let ux = 0.5;
        for (i, j, k) in indexer.all() {
            let vy = 0.1 * i as f64;
            g.set(Field::Sx, i, j, k, ux);
            g.set(Field::Sy, i, j, k, vy);
            g.set(Field::Egas, i, j, k, 1.0 + 0.5 * (ux * ux + vy * vy));
        }
        let rhs = stepper.dudt(&g, 0.1);
        let spin_total: f64 = rhs.iter().map(|du| du[Field::Lz.idx()].abs()).sum();
        assert!(
            spin_total < 1e-12,
            "symmetric stress must give zero spin source, got {spin_total}"
        );
    }

    #[test]
    fn shear_jump_generates_compensating_spin() {
        // A tangential-velocity discontinuity: the KT dissipation makes
        // the x-face y-momentum flux asymmetric against the y-face
        // x-momentum flux, and the spin fields must absorb the torque.
        let eos = IdealGas::monatomic();
        let stepper = HydroStepper::new(eos);
        let mut g = uniform_grid(1.0, Vec3::ZERO, 1.0);
        let indexer = g.indexer();
        let ux = 0.5;
        for (i, j, k) in indexer.all() {
            let vy = if i < 4 { 0.0 } else { 1.0 };
            g.set(Field::Sx, i, j, k, ux);
            g.set(Field::Sy, i, j, k, vy);
            g.set(Field::Egas, i, j, k, 1.0 + 0.5 * (ux * ux + vy * vy));
        }
        let rhs = stepper.dudt(&g, 0.1);
        let spin_total: f64 = rhs.iter().map(|du| du[Field::Lz.idx()].abs()).sum();
        assert!(spin_total > 1e-6, "shear jump must generate spin bookkeeping");
        assert!(spin_total.is_finite());
    }
}

