//! Gray two-moment (M1) radiation transport — the paper's §7 extension.
//!
//! "We have already developed a radiation transport module for
//! Octo-Tiger based on the two moment approach adapted by [Skinner &
//! Ostriker 2013]. This will be required to simulate the V1309 merger
//! with high accuracy."
//!
//! This module implements that two-moment scheme on a 1-D/3-D array
//! (stand-alone, pending coupling into the main field set exactly as in
//! the paper, where the module existed but was not yet production):
//! evolve the radiation energy density `E` and flux `F` with the M1
//! closure
//!
//!   ∂E/∂t + ∇·F = c κ ρ (aT⁴ − E)
//!   ∂F/∂t + c² ∇·P = −c κ ρ F
//!
//! where `P = D E` and the Eddington tensor `D` interpolates between
//! the diffusion (D = I/3) and free-streaming (D = n̂n̂) limits through
//! the flux factor `f = |F|/(cE)` (Levermore closure). An HLL-style
//! two-speed flux keeps the explicit update stable at CFL ≤ 1 in ĉ
//! units; a reduced speed of light `c_hat` is supported, as is standard
//! practice.

/// Radiation state on a 1-D grid (per cell): energy density and flux
/// along x. The 3-D extension applies the same operators per axis.
#[derive(Debug, Clone)]
pub struct RadiationField {
    pub e: Vec<f64>,
    pub f: Vec<f64>,
    /// (Reduced) speed of light.
    pub c_hat: f64,
}

/// The Levermore M1 closure: Eddington factor χ(f) with
/// `f = |F| / (c E)` ∈ [0, 1]:
///
///   χ = (3 + 4 f²) / (5 + 2 √(4 − 3 f²)).
///
/// χ = 1/3 in the diffusion limit, χ = 1 free-streaming.
pub fn eddington_factor(f: f64) -> f64 {
    let f = f.clamp(0.0, 1.0);
    (3.0 + 4.0 * f * f) / (5.0 + 2.0 * (4.0 - 3.0 * f * f).sqrt())
}

impl RadiationField {
    /// A uniform field of energy `e0` at rest.
    pub fn uniform(n: usize, e0: f64, c_hat: f64) -> RadiationField {
        assert!(n >= 4, "grid too small");
        assert!(c_hat > 0.0);
        RadiationField { e: vec![e0; n], f: vec![0.0; n], c_hat }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.e.len()
    }

    /// Whether the grid is empty (never after construction).
    pub fn is_empty(&self) -> bool {
        self.e.is_empty()
    }

    /// Total radiation energy (Σ E·dx with dx = 1).
    pub fn total_energy(&self) -> f64 {
        self.e.iter().sum()
    }

    /// The flux factor of cell `i`.
    pub fn flux_factor(&self, i: usize) -> f64 {
        if self.e[i] <= 0.0 {
            return 0.0;
        }
        (self.f[i].abs() / (self.c_hat * self.e[i])).clamp(0.0, 1.0)
    }

    /// One explicit transport step of size `dt` on spacing `dx` with
    /// outflow boundaries. Returns the CFL number used (must be ≤ 1).
    pub fn transport_step(&mut self, dt: f64, dx: f64) -> f64 {
        let cfl = self.c_hat * dt / dx;
        assert!(cfl <= 1.0, "radiation CFL violated: {cfl}");
        let n = self.len();
        let c = self.c_hat;
        // Face fluxes via a two-speed (HLL with ±c) Riemann solve of
        // the linear two-moment system:
        //   flux(E) = F,  flux(F) = c² χ E.
        let get = |v: &[f64], i: isize| -> f64 {
            v[(i.clamp(0, n as isize - 1)) as usize]
        };
        let mut fe = vec![0.0; n + 1]; // face flux of E
        let mut ff = vec![0.0; n + 1]; // face flux of F
        for face in 0..=n as isize {
            let (il, ir) = (face - 1, face);
            let (el, er) = (get(&self.e, il), get(&self.e, ir));
            let (fl, fr) = (get(&self.f, il), get(&self.f, ir));
            let chi_l = eddington_factor(if el > 0.0 { (fl.abs() / (c * el)).min(1.0) } else { 0.0 });
            let chi_r = eddington_factor(if er > 0.0 { (fr.abs() / (c * er)).min(1.0) } else { 0.0 });
            let pl = c * c * chi_l * el;
            let pr = c * c * chi_r * er;
            // HLL with wave speeds ±c.
            fe[face as usize] = 0.5 * (fl + fr) - 0.5 * c * (er - el);
            ff[face as usize] = 0.5 * (pl + pr) - 0.5 * c * (fr - fl);
        }
        for i in 0..n {
            self.e[i] += dt / dx * (fe[i] - fe[i + 1]);
            self.f[i] += dt / dx * (ff[i] - ff[i + 1]);
            // Keep the state admissible: |F| <= c E, E >= 0.
            self.e[i] = self.e[i].max(0.0);
            let fmax = c * self.e[i];
            self.f[i] = self.f[i].clamp(-fmax, fmax);
        }
        cfl
    }

    /// Implicit local matter coupling over `dt`: exchange energy with
    /// gas of density `rho`, opacity `kappa`, and internal energy
    /// `e_gas` (radiation-gas equilibrium `aT⁴ ≈ e_gas` in these toy
    /// units), conserving `E + e_gas` exactly per cell. Returns the new
    /// gas energies.
    pub fn couple_matter(&mut self, dt: f64, rho: &[f64], kappa: f64, e_gas: &mut [f64]) {
        assert_eq!(rho.len(), self.len());
        assert_eq!(e_gas.len(), self.len());
        for i in 0..self.len() {
            let rate = self.c_hat * kappa * rho[i];
            if rate <= 0.0 {
                continue;
            }
            // Linearized exchange toward equipartition, solved
            // implicitly: d(E - e)/dt = -2 rate (E - e) in symmetric toy
            // form — unconditionally stable, exactly conservative.
            let total = self.e[i] + e_gas[i];
            let diff = self.e[i] - e_gas[i];
            let decay = (-2.0 * rate * dt).exp();
            let new_diff = diff * decay;
            self.e[i] = 0.5 * (total + new_diff);
            e_gas[i] = 0.5 * (total - new_diff);
            // Flux decays with absorption.
            self.f[i] *= (-rate * dt).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_limits() {
        assert!((eddington_factor(0.0) - 1.0 / 3.0).abs() < 1e-14);
        assert!((eddington_factor(1.0) - 1.0).abs() < 1e-14);
        // Monotone in between.
        let mut last = 0.0;
        for i in 0..=10 {
            let chi = eddington_factor(i as f64 / 10.0);
            assert!(chi >= last);
            last = chi;
        }
    }

    #[test]
    fn transport_conserves_energy_in_the_interior() {
        let mut r = RadiationField::uniform(64, 0.0, 1.0);
        // A pulse in the middle.
        for i in 28..36 {
            r.e[i] = 1.0;
        }
        let before = r.total_energy();
        for _ in 0..10 {
            r.transport_step(0.5, 1.0);
        }
        let after = r.total_energy();
        assert!(
            (after - before).abs() < 1e-12 * before,
            "interior transport must conserve: {before} -> {after}"
        );
    }

    #[test]
    fn free_streaming_pulse_moves_at_c_hat() {
        let c_hat = 1.0;
        let mut r = RadiationField::uniform(200, 1e-12, c_hat);
        // A streaming pulse: F = cE (flux factor 1).
        for i in 20..30 {
            r.e[i] = 1.0;
            r.f[i] = c_hat * 1.0;
        }
        let centroid = |r: &RadiationField| -> f64 {
            let tot: f64 = r.e.iter().sum();
            r.e.iter().enumerate().map(|(i, e)| i as f64 * e).sum::<f64>() / tot
        };
        let x0 = centroid(&r);
        let steps = 100;
        let dt = 0.5;
        for _ in 0..steps {
            r.transport_step(dt, 1.0);
        }
        let x1 = centroid(&r);
        let expected = steps as f64 * dt * c_hat;
        let moved = x1 - x0;
        assert!(
            (moved - expected).abs() / expected < 0.15,
            "pulse moved {moved} cells, expected ~{expected}"
        );
    }

    #[test]
    fn static_uniform_field_is_steady() {
        let mut r = RadiationField::uniform(32, 2.5, 1.0);
        for _ in 0..20 {
            r.transport_step(0.9, 1.0);
        }
        for &e in &r.e {
            assert!((e - 2.5).abs() < 1e-12);
        }
        for &f in &r.f {
            assert!(f.abs() < 1e-12);
        }
    }

    #[test]
    fn matter_coupling_equilibrates_and_conserves() {
        let n = 16;
        let mut r = RadiationField::uniform(n, 4.0, 1.0);
        let rho = vec![1.0; n];
        let mut e_gas = vec![1.0; n];
        let before: f64 = r.total_energy() + e_gas.iter().sum::<f64>();
        for _ in 0..50 {
            r.couple_matter(0.1, &rho, 5.0, &mut e_gas);
        }
        let after: f64 = r.total_energy() + e_gas.iter().sum::<f64>();
        assert!((after - before).abs() < 1e-10 * before, "coupling must conserve");
        // Equilibrium: E ≈ e_gas ≈ 2.5 everywhere.
        for i in 0..n {
            assert!((r.e[i] - 2.5).abs() < 1e-6);
            assert!((e_gas[i] - 2.5).abs() < 1e-6);
        }
    }

    #[test]
    fn admissibility_is_enforced() {
        let mut r = RadiationField::uniform(16, 1.0, 2.0);
        r.f[8] = 100.0; // wildly super-luminal
        r.transport_step(0.4, 1.0);
        for i in 0..r.len() {
            assert!(r.e[i] >= 0.0);
            assert!(r.f[i].abs() <= 2.0 * r.e[i] + 1e-12, "flux limited by cE");
        }
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn cfl_violation_panics() {
        let mut r = RadiationField::uniform(16, 1.0, 1.0);
        r.transport_step(2.0, 1.0);
    }
}
