//! Rotating-frame source terms.
//!
//! "The grid is rotating about the z-axis with a period of 1.42 days,
//! corresponding to the initial period of the binary" (§6). In the
//! co-rotating frame the momentum equation gains the Coriolis and
//! centrifugal terms
//!
//!   ds/dt += −2 Ω × s + ρ Ω² (x, y, 0),
//!
//! and the gas energy gains the centrifugal work `u · ρΩ²(x,y,0)`
//! (Coriolis forces do no work). The diagnostics in the `octotiger`
//! crate convert conserved quantities back to the inertial frame when
//! checking conservation.

use octree::subgrid::{Field, SubGrid, N_SUB};
use util::vec3::Vec3;

/// Rotation about the z-axis with angular velocity `omega`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RotatingFrame {
    pub omega: f64,
}

impl RotatingFrame {
    pub fn new(omega: f64) -> RotatingFrame {
        RotatingFrame { omega }
    }

    /// No rotation (verification tests).
    pub fn inertial() -> RotatingFrame {
        RotatingFrame { omega: 0.0 }
    }

    /// Frame acceleration (per unit mass) at position `r` for velocity
    /// `u`: Coriolis + centrifugal.
    #[inline]
    pub fn acceleration(&self, r: Vec3, u: Vec3) -> Vec3 {
        if self.omega == 0.0 {
            return Vec3::ZERO;
        }
        let om = Vec3::new(0.0, 0.0, self.omega);
        let coriolis = -2.0 * om.cross(u);
        let centrifugal = Vec3::new(r.x, r.y, 0.0) * (self.omega * self.omega);
        coriolis + centrifugal
    }

    /// Accumulate the frame sources into a sub-grid's RHS. `origin` is
    /// the node's lower corner, `dx` its cell size; the rotation axis
    /// passes through the domain origin.
    pub fn add_sources(
        &self,
        grid: &SubGrid,
        origin: Vec3,
        dx: f64,
        dudt: &mut [crate::flux::StateVec],
    ) {
        if self.omega == 0.0 {
            return;
        }
        let n = N_SUB as isize;
        let mut idx = 0;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let r = Vec3::new(
                        origin.x + (i as f64 + 0.5) * dx,
                        origin.y + (j as f64 + 0.5) * dx,
                        origin.z + (k as f64 + 0.5) * dx,
                    );
                    let rho = grid.at(Field::Rho, i, j, k);
                    let s = Vec3::new(
                        grid.at(Field::Sx, i, j, k),
                        grid.at(Field::Sy, i, j, k),
                        grid.at(Field::Sz, i, j, k),
                    );
                    let u = if rho > 0.0 { s / rho } else { Vec3::ZERO };
                    let a = self.acceleration(r, u);
                    dudt[idx][Field::Sx.idx()] += rho * a.x;
                    dudt[idx][Field::Sy.idx()] += rho * a.y;
                    dudt[idx][Field::Sz.idx()] += rho * a.z;
                    // Only the centrifugal part does work.
                    let centrifugal = Vec3::new(r.x, r.y, 0.0) * (self.omega * self.omega);
                    dudt[idx][Field::Egas.idx()] += s.dot(centrifugal);
                    idx += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flux::StateVec;
    use octree::subgrid::FIELD_COUNT;

    #[test]
    fn inertial_frame_is_a_no_op() {
        let f = RotatingFrame::inertial();
        assert_eq!(f.acceleration(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)), Vec3::ZERO);
        let g = SubGrid::new();
        let mut rhs: Vec<StateVec> = vec![[0.0; FIELD_COUNT]; N_SUB * N_SUB * N_SUB];
        f.add_sources(&g, Vec3::ZERO, 0.1, &mut rhs);
        assert!(rhs.iter().all(|du| du.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn coriolis_deflects_perpendicular() {
        let f = RotatingFrame::new(1.0);
        // Moving +x at the origin: Coriolis = -2 ẑ×u = -2(ẑ×x̂) = -2ŷ.
        let a = f.acceleration(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        assert!((a - Vec3::new(0.0, -2.0, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn centrifugal_points_outward() {
        let f = RotatingFrame::new(2.0);
        let a = f.acceleration(Vec3::new(3.0, 0.0, 5.0), Vec3::ZERO);
        // Ω² (x, y, 0) = 4 * (3, 0, 0); z-coordinate irrelevant.
        assert!((a - Vec3::new(12.0, 0.0, 0.0)).norm() < 1e-14);
    }

    #[test]
    fn coriolis_does_no_work() {
        let f = RotatingFrame::new(1.7);
        let u = Vec3::new(0.3, -0.8, 0.2);
        let coriolis = f.acceleration(Vec3::ZERO, u); // centrifugal = 0 at origin
        assert!(coriolis.dot(u).abs() < 1e-14);
    }

    #[test]
    fn sources_accumulate_into_rhs() {
        let f = RotatingFrame::new(1.0);
        let mut g = SubGrid::new();
        g.field_mut(Field::Rho).fill(1.0);
        g.field_mut(Field::Sx).fill(0.5);
        let mut rhs: Vec<StateVec> = vec![[0.0; FIELD_COUNT]; N_SUB * N_SUB * N_SUB];
        f.add_sources(&g, Vec3::new(1.0, 1.0, 1.0), 0.25, &mut rhs);
        // Some cell must feel both Coriolis (−2Ω×u → -y) and
        // centrifugal (+x, +y).
        let any_sy = rhs.iter().any(|du| du[Field::Sy.idx()] != 0.0);
        let any_sx = rhs.iter().any(|du| du[Field::Sx.idx()] != 0.0);
        let any_e = rhs.iter().any(|du| du[Field::Egas.idx()] != 0.0);
        assert!(any_sx && any_sy && any_e);
    }
}
