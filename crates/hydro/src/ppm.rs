//! 1-D piecewise parabolic (PPM) reconstruction.
//!
//! "The piece-wise parabolic method (PPM) [Colella & Woodward 1984] is
//! used to compute the thermodynamic variables at cell faces" (§4.2).
//! This is the standard fourth-order interface interpolation followed by
//! the Colella–Woodward monotonicity limiter. Reconstruction needs two
//! cells of context on each side, which is exactly the sub-grid ghost
//! width (`octree::subgrid::N_GHOST`).

/// Van Leer limited slope of `u` at index `i` (monotonized central).
#[inline]
fn mc_slope(um: f64, u0: f64, up: f64) -> f64 {
    let d_m = u0 - um;
    let d_p = up - u0;
    if d_m * d_p <= 0.0 {
        return 0.0;
    }
    let d_c = 0.5 * (up - um);
    let lim = 2.0 * d_m.abs().min(d_p.abs());
    d_c.signum() * d_c.abs().min(lim)
}

/// Fourth-order interface value between cells `i` and `i+1` with limited
/// slopes (CW eq. 1.6 with the standard slope substitution).
#[inline]
fn interface(um: f64, u0: f64, up: f64, upp: f64) -> f64 {
    u0 + 0.5 * (up - u0) - (mc_slope(u0, up, upp) - mc_slope(um, u0, up)) / 6.0
}

/// Left/right reconstructed states at the faces of one cell.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FacePair {
    /// Value at the cell's low face (the face shared with cell i−1).
    pub minus: f64,
    /// Value at the cell's high face (shared with cell i+1).
    pub plus: f64,
}

/// PPM reconstruction of cell `i` of a 1-D stencil `u[i-2..=i+2]`
/// (passed as a five-element window centred on the cell).
pub fn ppm_cell(w: [f64; 5]) -> FacePair {
    let u0 = w[2];
    // Interface values at i−1/2 and i+1/2.
    let mut um = interface(w[0], w[1], w[2], w[3]);
    let mut up = interface(w[1], w[2], w[3], w[4]);
    // CW monotonicity constraints.
    if (up - u0) * (u0 - um) <= 0.0 {
        // Local extremum: flatten.
        um = u0;
        up = u0;
    } else {
        let d = up - um;
        let c = d * (u0 - 0.5 * (um + up));
        if c > d * d / 6.0 {
            um = 3.0 * u0 - 2.0 * up;
        } else if -d * d / 6.0 > c {
            up = 3.0 * u0 - 2.0 * um;
        }
    }
    // Final bound: a face value never leaves the range of the two cells
    // sharing it (robustness clamp on top of the CW limiter).
    um = um.clamp(w[1].min(u0), w[1].max(u0));
    up = up.clamp(w[3].min(u0), w[3].max(u0));
    FacePair { minus: um, plus: up }
}

/// Reconstruct a whole 1-D run of cells: `u` must contain two ghost
/// cells on each side; the result has one entry per interior cell.
pub fn ppm_line(u: &[f64]) -> Vec<FacePair> {
    assert!(u.len() >= 5, "PPM needs at least 5 cells (2 ghosts each side)");
    (2..u.len() - 2)
        .map(|i| ppm_cell([u[i - 2], u[i - 1], u[i], u[i + 1], u[i + 2]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_is_exact() {
        let f = ppm_cell([4.0; 5]);
        assert_eq!(f.minus, 4.0);
        assert_eq!(f.plus, 4.0);
    }

    #[test]
    fn linear_is_exact() {
        // u = 3 + 2i: faces at i ± 1/2 are 3 + 2(i ± 1/2).
        let w = [3.0, 5.0, 7.0, 9.0, 11.0];
        let f = ppm_cell(w);
        assert!((f.minus - 6.0).abs() < 1e-13, "minus = {}", f.minus);
        assert!((f.plus - 8.0).abs() < 1e-13, "plus = {}", f.plus);
    }

    #[test]
    fn smooth_monotone_parabola_is_accurate() {
        // u(x) = x² on the monotone branch x >= 0: faces at x = 1.5 and
        // x = 2.5 are 2.25 and 6.25; point-sampled PPM with limited
        // slopes lands within ~0.1.
        let w = [0.0, 1.0, 4.0, 9.0, 16.0];
        let f = ppm_cell(w);
        assert!((f.minus - 2.25).abs() < 0.1, "minus = {}", f.minus);
        assert!((f.plus - 6.25).abs() < 0.1, "plus = {}", f.plus);
    }

    #[test]
    fn parabola_vertex_is_flattened() {
        // At a genuine extremum PPM clips to first order (by design).
        let w = [4.0, 1.0, 0.0, 1.0, 4.0];
        let f = ppm_cell(w);
        assert_eq!(f.minus, 0.0);
        assert_eq!(f.plus, 0.0);
    }

    #[test]
    fn extremum_is_flattened() {
        let f = ppm_cell([0.0, 1.0, 5.0, 1.0, 0.0]);
        assert_eq!(f.minus, 5.0);
        assert_eq!(f.plus, 5.0);
    }

    #[test]
    fn monotone_data_monotone_faces() {
        let w = [1.0, 2.0, 4.0, 8.0, 16.0];
        let f = ppm_cell(w);
        // Faces stay within the neighboring cell values.
        assert!(f.minus >= 2.0 - 1e-12 && f.minus <= 4.0 + 1e-12, "minus = {}", f.minus);
        assert!(f.plus >= 4.0 - 1e-12 && f.plus <= 8.0 + 1e-12, "plus = {}", f.plus);
    }

    #[test]
    fn line_reconstruction_shape() {
        let u: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let faces = ppm_line(&u);
        assert_eq!(faces.len(), 8);
        for (n, f) in faces.iter().enumerate() {
            let i = (n + 2) as f64;
            assert!((f.minus - (i - 0.5)).abs() < 1e-12);
            assert!((f.plus - (i + 0.5)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "at least 5")]
    fn short_line_panics() {
        let _ = ppm_line(&[1.0, 2.0, 3.0, 4.0]);
    }

    proptest! {
        #[test]
        fn faces_bounded_by_neighbors(w in proptest::array::uniform5(-100.0f64..100.0)) {
            let f = ppm_cell(w);
            let lo = w[1].min(w[2]).min(w[3]);
            let hi = w[1].max(w[2]).max(w[3]);
            prop_assert!(f.minus >= lo - 1e-9 && f.minus <= hi + 1e-9,
                         "minus {} outside [{lo},{hi}] for {w:?}", f.minus);
            prop_assert!(f.plus >= lo - 1e-9 && f.plus <= hi + 1e-9,
                         "plus {} outside [{lo},{hi}] for {w:?}", f.plus);
        }

        #[test]
        fn reconstruction_is_tvd_on_monotone_runs(a in -10.0f64..10.0, b in 0.01f64..5.0) {
            // Strictly increasing data: faces must be ordered
            // minus <= u0 <= plus for every cell.
            let w: [f64; 5] = std::array::from_fn(|i| a + b * i as f64);
            let f = ppm_cell(w);
            prop_assert!(f.minus <= w[2] + 1e-12);
            prop_assert!(f.plus >= w[2] - 1e-12);
        }
    }
}
