//! Angular-momentum-conserving bookkeeping.
//!
//! "The angular momentum technique described by [Després & Labourasse
//! 2015] is applied to the PPM reconstruction. It adds a degree of
//! freedom ... by allowing for the addition of a spatially constant
//! angular velocity component ... determined by evolving three
//! additional variables corresponding to the spin angular momentum for
//! a given cell" (§4.2).
//!
//! Our realization of the same idea: the evolved spin fields
//! (`Field::Lx..Lz`) absorb exactly the discrete torque residual of the
//! momentum flux, so that the total angular momentum
//!
//!   L = Σᵢ ( rᵢ × sᵢ + lᵢ ) Vᵢ
//!
//! changes only through domain-boundary fluxes — i.e. it is conserved to
//! machine precision on a periodic/closed domain, which is the paper's
//! headline numerical property. Derivation: with ds/dt = (F⁻ − F⁺)/dx
//! per axis, requiring d(r×s + l)/dt to telescope as the face quantity
//! r_f × F_f gives
//!
//!   dl/dt = ((r_f⁻ − r) × F⁻ − (r_f⁺ − r) × F⁺)/dx
//!         = −ê_axis × (F⁻ + F⁺) / 2 ,
//!
//! where F is the (vector) momentum flux through the two faces along
//! that axis. The l fields additionally advect with the flow through the
//! ordinary flux sweep (their own flux form conserves Σl).

use util::vec3::Vec3;

/// The spin source for one cell and one axis: `−ê_axis × (F⁻ + F⁺)/2`,
/// with `f_minus`/`f_plus` the momentum flux vectors through the cell's
/// low/high face along `axis`.
#[inline]
pub fn spin_source(axis: usize, f_minus: Vec3, f_plus: Vec3) -> Vec3 {
    let e = axis_unit(axis);
    -e.cross(f_minus + f_plus) * 0.5
}

#[inline]
pub fn axis_unit(axis: usize) -> Vec3 {
    match axis {
        0 => Vec3::new(1.0, 0.0, 0.0),
        1 => Vec3::new(0.0, 1.0, 0.0),
        2 => Vec3::new(0.0, 0.0, 1.0),
        _ => panic!("axis must be 0, 1, or 2"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_flux_produces_no_spin() {
        // Momentum flux parallel to the face normal (1-D flow): no torque.
        let f = Vec3::new(3.0, 0.0, 0.0);
        assert_eq!(spin_source(0, f, f), Vec3::ZERO);
    }

    #[test]
    fn shear_flux_produces_spin() {
        // Transverse momentum carried through x-faces: z-spin.
        let f = Vec3::new(0.0, 2.0, 0.0);
        let s = spin_source(0, f, f);
        assert_eq!(s, Vec3::new(0.0, 0.0, -2.0));
    }

    #[test]
    fn uniform_diagonal_flow_cancels_across_axes() {
        // For uniform u = (u, v, 0), the x-face flux is ρ u_x u and the
        // y-face flux is ρ u_y u; their spin sources cancel exactly.
        let rho = 1.3;
        let u = Vec3::new(0.7, -1.1, 0.4);
        let fx = u * (rho * u.x);
        let fy = u * (rho * u.y);
        let fz = u * (rho * u.z);
        let total = spin_source(0, fx, fx) + spin_source(1, fy, fy) + spin_source(2, fz, fz);
        assert!(total.norm() < 1e-14, "residual spin {total:?}");
    }

    #[test]
    #[should_panic(expected = "axis")]
    fn bad_axis_panics() {
        let _ = axis_unit(3);
    }
}
