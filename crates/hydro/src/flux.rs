//! Physical Euler fluxes and the Kurganov–Tadmor central numerical flux.
//!
//! "Octo-Tiger uses the central advection scheme of [Kurganov & Tadmor
//! 2000]" (§4.2): a Riemann-solver-free central scheme whose numerical
//! flux is the average of the physical fluxes of the reconstructed
//! left/right states plus local-signal-speed dissipation,
//!
//! F½ = ½ (F(u_L) + F(u_R)) − ½ a (u_R − u_L),  a = max(|u|+c).
//!
//! All 14 evolved fields travel through the same flux: passive scalars
//! and the spin fields advect with the flow ("evolved using the same
//! continuity equation that describes the evolution of the mass
//! density"); momentum carries the pressure term; total energy carries
//! the pressure-work term.

use crate::eos::IdealGas;
use crate::prim::Primitive;
use octree::subgrid::{Field, FIELD_COUNT};
use util::vec3::Vec3;

/// A full per-cell state (or flux) vector in field storage order.
pub type StateVec = [f64; FIELD_COUNT];

/// Extract the primitive state from a conserved state vector.
pub fn primitive_of(eos: &IdealGas, u: &StateVec) -> Primitive {
    Primitive::from_conserved(
        eos,
        u[Field::Rho.idx()],
        Vec3::new(u[Field::Sx.idx()], u[Field::Sy.idx()], u[Field::Sz.idx()]),
        u[Field::Egas.idx()],
        u[Field::Tau.idx()],
    )
}

/// The physical flux of `u` along `axis` (0 = x, 1 = y, 2 = z), plus the
/// local signal speed |u_axis| + c.
pub fn physical_flux(eos: &IdealGas, u: &StateVec, axis: usize) -> (StateVec, f64) {
    let prim = primitive_of(eos, u);
    let ua = prim.vel[axis];
    let mut f = [0.0; FIELD_COUNT];
    // Everything advects...
    for i in 0..FIELD_COUNT {
        f[i] = u[i] * ua;
    }
    // ...momentum additionally carries pressure...
    f[Field::Sx.idx() + axis] += prim.p;
    // ...and energy carries pressure work.
    f[Field::Egas.idx()] = (u[Field::Egas.idx()] + prim.p) * ua;
    (f, prim.signal_speed(eos, axis))
}

/// Kurganov–Tadmor numerical flux between reconstructed states `left`
/// (the minus side of the face) and `right` (the plus side).
pub fn kt_flux(eos: &IdealGas, left: &StateVec, right: &StateVec, axis: usize) -> StateVec {
    let (fl, al) = physical_flux(eos, left, axis);
    let (fr, ar) = physical_flux(eos, right, axis);
    let a = al.max(ar);
    let mut f = [0.0; FIELD_COUNT];
    for i in 0..FIELD_COUNT {
        f[i] = 0.5 * (fl[i] + fr[i]) - 0.5 * a * (right[i] - left[i]);
    }
    f
}

/// Build a state vector from a primitive plus tracer values (spin and
/// scalars zero). Test/setup helper.
pub fn state_from_primitive(eos: &IdealGas, p: &Primitive) -> StateVec {
    let (rho, s, egas, tau) = p.to_conserved(eos);
    let mut u = [0.0; FIELD_COUNT];
    u[Field::Rho.idx()] = rho;
    u[Field::Sx.idx()] = s.x;
    u[Field::Sy.idx()] = s.y;
    u[Field::Sz.idx()] = s.z;
    u[Field::Egas.idx()] = egas;
    u[Field::Tau.idx()] = tau;
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(rho: f64, v: Vec3, e_int: f64) -> StateVec {
        let eos = IdealGas::monatomic();
        state_from_primitive(
            &eos,
            &Primitive { rho, vel: v, p: eos.pressure(e_int), e_int },
        )
    }

    #[test]
    fn flux_of_static_gas_is_pure_pressure() {
        let eos = IdealGas::monatomic();
        let u = state(1.0, Vec3::ZERO, 3.0);
        for axis in 0..3 {
            let (f, a) = physical_flux(&eos, &u, axis);
            assert_eq!(f[Field::Rho.idx()], 0.0);
            assert_eq!(f[Field::Egas.idx()], 0.0);
            // Only the momentum component along `axis` carries pressure.
            for other in 0..3 {
                let v = f[Field::Sx.idx() + other];
                if other == axis {
                    assert!((v - eos.pressure(3.0)).abs() < 1e-14);
                } else {
                    assert_eq!(v, 0.0);
                }
            }
            assert!(a > 0.0, "sound speed must be positive");
        }
    }

    #[test]
    fn advective_flux_scales_with_velocity() {
        let eos = IdealGas::monatomic();
        let u = state(2.0, Vec3::new(3.0, 0.0, 0.0), 1.0);
        let (f, _) = physical_flux(&eos, &u, 0);
        assert!((f[Field::Rho.idx()] - 6.0).abs() < 1e-14);
        // s_x u + p = 2*3*3 + (2/3)*1.
        assert!((f[Field::Sx.idx()] - (18.0 + 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn kt_flux_of_identical_states_is_physical_flux() {
        let eos = IdealGas::monatomic();
        let u = state(1.5, Vec3::new(0.5, -0.25, 0.1), 2.0);
        for axis in 0..3 {
            let (f, _) = physical_flux(&eos, &u, axis);
            let kt = kt_flux(&eos, &u, &u, axis);
            for i in 0..FIELD_COUNT {
                assert!((kt[i] - f[i]).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn kt_flux_dissipates_jumps() {
        // A density jump with identical velocity/pressure: the KT flux
        // must transport mass from high to low density (upwinding via
        // the dissipation term).
        let eos = IdealGas::monatomic();
        let l = state(2.0, Vec3::ZERO, 1.0);
        let r = state(1.0, Vec3::ZERO, 1.0);
        let f = kt_flux(&eos, &l, &r, 0);
        assert!(
            f[Field::Rho.idx()] > 0.0,
            "mass must flow toward the low-density side"
        );
    }

    #[test]
    fn passive_scalars_advect_with_the_flow() {
        let eos = IdealGas::monatomic();
        let mut u = state(1.0, Vec3::new(2.0, 0.0, 0.0), 1.0);
        u[Field::DonorCore.idx()] = 0.25;
        let (f, _) = physical_flux(&eos, &u, 0);
        assert!((f[Field::DonorCore.idx()] - 0.5).abs() < 1e-14);
        // Spin fields advect the same way.
        u[Field::Lz.idx()] = 4.0;
        let (f, _) = physical_flux(&eos, &u, 0);
        assert!((f[Field::Lz.idx()] - 8.0).abs() < 1e-14);
    }

    #[test]
    fn flux_is_antisymmetric_under_velocity_reversal() {
        let eos = IdealGas::monatomic();
        let up = state(1.0, Vec3::new(1.0, 0.0, 0.0), 2.0);
        let un = state(1.0, Vec3::new(-1.0, 0.0, 0.0), 2.0);
        let (fp, _) = physical_flux(&eos, &up, 0);
        let (fn_, _) = physical_flux(&eos, &un, 0);
        assert!((fp[Field::Rho.idx()] + fn_[Field::Rho.idx()]).abs() < 1e-14);
        assert!((fp[Field::Egas.idx()] + fn_[Field::Egas.idx()]).abs() < 1e-14);
        // Momentum flux (ρu² + p) is symmetric instead.
        assert!((fp[Field::Sx.idx()] - fn_[Field::Sx.idx()]).abs() < 1e-14);
    }
}
