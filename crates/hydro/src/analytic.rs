//! Analytic reference solutions for the verification suite (§4.2).
//!
//! "We used a test suite of four verification tests, recommended by
//! Tasker et al. for self-gravitating astrophysical codes ... The first
//! two are purely hydrodynamic tests: the Sod shock tube and the
//! Sedov-Taylor blast wave. Both have analytical solutions which we can
//! use for comparisons."
//!
//! * [`SodSolution`] — the exact Riemann solution of the Sod tube,
//!   computed with a Newton iteration on the star-region pressure
//!   (Toro's standard two-rarefaction/shock formulation).
//! * [`sedov`] — the Sedov–Taylor similarity scalings: shock radius
//!   `R(t) = ξ₀ (E t² / ρ₀)^(1/5)` and the strong-shock jump
//!   conditions, which the blast-wave test checks.

/// Exact solution of a Riemann problem for the ideal-gas Euler
/// equations (1-D), specialized for sampling at `x/t`.
#[derive(Debug, Clone, Copy)]
pub struct SodSolution {
    gamma: f64,
    rho_l: f64,
    p_l: f64,
    u_l: f64,
    rho_r: f64,
    p_r: f64,
    u_r: f64,
    /// Star-region pressure and velocity.
    p_star: f64,
    u_star: f64,
}

impl SodSolution {
    /// The classic Sod initial condition: (ρ, u, p) = (1, 0, 1) left,
    /// (0.125, 0, 0.1) right.
    pub fn classic(gamma: f64) -> SodSolution {
        Self::new(gamma, 1.0, 0.0, 1.0, 0.125, 0.0, 0.1)
    }

    /// General two-state Riemann problem.
    pub fn new(
        gamma: f64,
        rho_l: f64,
        u_l: f64,
        p_l: f64,
        rho_r: f64,
        u_r: f64,
        p_r: f64,
    ) -> SodSolution {
        assert!(rho_l > 0.0 && rho_r > 0.0 && p_l > 0.0 && p_r > 0.0);
        let (p_star, u_star) =
            solve_star(gamma, rho_l, u_l, p_l, rho_r, u_r, p_r);
        SodSolution { gamma, rho_l, p_l, u_l, rho_r, p_r, u_r, p_star, u_star }
    }

    /// Star-region pressure (for tests).
    pub fn p_star(&self) -> f64 {
        self.p_star
    }

    /// Star-region velocity.
    pub fn u_star(&self) -> f64 {
        self.u_star
    }

    /// Sample (ρ, u, p) at similarity coordinate `xi = x/t` (interface
    /// at x = 0).
    pub fn sample(&self, xi: f64) -> (f64, f64, f64) {
        let g = self.gamma;
        let (p_s, u_s) = (self.p_star, self.u_star);
        if xi <= u_s {
            // Left of the contact.
            let (rho, p, u) = (self.rho_l, self.p_l, self.u_l);
            let c = (g * p / rho).sqrt();
            if p_s > p {
                // Left shock.
                let ratio = p_s / p;
                let sl = u - c * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
                if xi < sl {
                    (rho, u, p)
                } else {
                    let rho_s = rho * ((ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0));
                    (rho_s, u_s, p_s)
                }
            } else {
                // Left rarefaction.
                let c_s = c * (p_s / p).powf((g - 1.0) / (2.0 * g));
                let head = u - c;
                let tail = u_s - c_s;
                if xi < head {
                    (rho, u, p)
                } else if xi > tail {
                    let rho_s = rho * (p_s / p).powf(1.0 / g);
                    (rho_s, u_s, p_s)
                } else {
                    // Inside the fan.
                    let u_f = 2.0 / (g + 1.0) * (c + (g - 1.0) / 2.0 * u + xi);
                    let c_f = u_f - xi;
                    let rho_f = rho * (c_f / c).powf(2.0 / (g - 1.0));
                    let p_f = p * (c_f / c).powf(2.0 * g / (g - 1.0));
                    (rho_f, u_f, p_f)
                }
            }
        } else {
            // Right of the contact (mirror).
            let (rho, p, u) = (self.rho_r, self.p_r, self.u_r);
            let c = (g * p / rho).sqrt();
            if p_s > p {
                // Right shock.
                let ratio = p_s / p;
                let sr = u + c * ((g + 1.0) / (2.0 * g) * ratio + (g - 1.0) / (2.0 * g)).sqrt();
                if xi > sr {
                    (rho, u, p)
                } else {
                    let rho_s = rho * ((ratio + (g - 1.0) / (g + 1.0)) / ((g - 1.0) / (g + 1.0) * ratio + 1.0));
                    (rho_s, u_s, p_s)
                }
            } else {
                // Right rarefaction.
                let c_s = c * (p_s / p).powf((g - 1.0) / (2.0 * g));
                let head = u + c;
                let tail = u_s + c_s;
                if xi > head {
                    (rho, u, p)
                } else if xi < tail {
                    let rho_s = rho * (p_s / p).powf(1.0 / g);
                    (rho_s, u_s, p_s)
                } else {
                    let u_f = 2.0 / (g + 1.0) * (-c + (g - 1.0) / 2.0 * u + xi);
                    let c_f = xi - u_f;
                    let rho_f = rho * (c_f / c).powf(2.0 / (g - 1.0));
                    let p_f = p * (c_f / c).powf(2.0 * g / (g - 1.0));
                    (rho_f, u_f, p_f)
                }
            }
        }
    }
}

/// Toro's pressure function f(p; state) and derivative.
fn pressure_fn(g: f64, p: f64, rho_k: f64, p_k: f64) -> (f64, f64) {
    if p > p_k {
        // Shock branch.
        let a = 2.0 / ((g + 1.0) * rho_k);
        let b = (g - 1.0) / (g + 1.0) * p_k;
        let sq = (a / (p + b)).sqrt();
        let f = (p - p_k) * sq;
        let df = sq * (1.0 - (p - p_k) / (2.0 * (p + b)));
        (f, df)
    } else {
        // Rarefaction branch.
        let c_k = (g * p_k / rho_k).sqrt();
        let pr = p / p_k;
        let f = 2.0 * c_k / (g - 1.0) * (pr.powf((g - 1.0) / (2.0 * g)) - 1.0);
        let df = 1.0 / (rho_k * c_k) * pr.powf(-(g + 1.0) / (2.0 * g));
        (f, df)
    }
}

/// Newton solve for the star-region pressure and velocity.
fn solve_star(
    g: f64,
    rho_l: f64,
    u_l: f64,
    p_l: f64,
    rho_r: f64,
    u_r: f64,
    p_r: f64,
) -> (f64, f64) {
    let du = u_r - u_l;
    let mut p = 0.5 * (p_l + p_r).max(1e-12);
    for _ in 0..100 {
        let (fl, dfl) = pressure_fn(g, p, rho_l, p_l);
        let (fr, dfr) = pressure_fn(g, p, rho_r, p_r);
        let f = fl + fr + du;
        let step = f / (dfl + dfr);
        let p_new = (p - step).max(1e-12);
        if (p_new - p).abs() < 1e-14 * p {
            p = p_new;
            break;
        }
        p = p_new;
    }
    let (fl, _) = pressure_fn(g, p, rho_l, p_l);
    let (fr, _) = pressure_fn(g, p, rho_r, p_r);
    let u = 0.5 * (u_l + u_r) + 0.5 * (fr - fl);
    (p, u)
}

/// Sedov–Taylor similarity quantities.
pub mod sedov {
    /// Shock radius at time `t` for blast energy `e0` in a uniform
    /// medium of density `rho0`: `R = xi0 (e0 t² / rho0)^(1/5)`.
    /// `xi0` ≈ 1.1527 for γ = 5/3 (Sedov's dimensionless constant).
    pub fn shock_radius(e0: f64, rho0: f64, t: f64, gamma: f64) -> f64 {
        xi0(gamma) * (e0 * t * t / rho0).powf(0.2)
    }

    /// Shock speed dR/dt.
    pub fn shock_speed(e0: f64, rho0: f64, t: f64, gamma: f64) -> f64 {
        0.4 * shock_radius(e0, rho0, t, gamma) / t
    }

    /// Post-shock density from the strong-shock jump conditions:
    /// `rho = rho0 (γ+1)/(γ−1)`.
    pub fn post_shock_density(rho0: f64, gamma: f64) -> f64 {
        rho0 * (gamma + 1.0) / (gamma - 1.0)
    }

    /// Sedov's dimensionless constant ξ₀ (energy-integral
    /// normalization), tabulated for the two γ values used in the
    /// workspace and interpolated otherwise.
    pub fn xi0(gamma: f64) -> f64 {
        // Known values: γ = 1.4 → 1.033; γ = 5/3 → 1.1527 (spherical).
        let pts = [(1.4, 1.033), (5.0 / 3.0, 1.1527)];
        if gamma <= pts[0].0 {
            return pts[0].1;
        }
        if gamma >= pts[1].0 {
            return pts[1].1;
        }
        let t = (gamma - pts[0].0) / (pts[1].0 - pts[0].0);
        pts[0].1 + t * (pts[1].1 - pts[0].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_star_state_matches_literature() {
        // Toro's Test 1 (γ = 1.4): p* = 0.30313, u* = 0.92745.
        let s = SodSolution::classic(1.4);
        assert!((s.p_star() - 0.30313).abs() < 1e-4, "p* = {}", s.p_star());
        assert!((s.u_star() - 0.92745).abs() < 1e-4, "u* = {}", s.u_star());
    }

    #[test]
    fn sod_sampling_limits() {
        let s = SodSolution::classic(1.4);
        // Far left: unperturbed left state.
        let (rho, u, p) = s.sample(-10.0);
        assert_eq!((rho, u, p), (1.0, 0.0, 1.0));
        // Far right: unperturbed right state.
        let (rho, u, p) = s.sample(10.0);
        assert_eq!((rho, u, p), (0.125, 0.0, 0.1));
    }

    #[test]
    fn sod_contact_discontinuity_has_continuous_pressure() {
        let s = SodSolution::classic(1.4);
        let eps = 1e-6;
        let (rho_m, u_m, p_m) = s.sample(s.u_star() - eps);
        let (rho_p, u_p, p_p) = s.sample(s.u_star() + eps);
        assert!((p_m - p_p).abs() < 1e-4, "pressure jumps at contact");
        assert!((u_m - u_p).abs() < 1e-4, "velocity jumps at contact");
        assert!(rho_m != rho_p, "density must jump at the contact");
    }

    #[test]
    fn sod_profile_is_physical() {
        let s = SodSolution::classic(1.4);
        let mut xi = -2.0;
        while xi < 2.0 {
            let (rho, _u, p) = s.sample(xi);
            assert!(rho > 0.0 && p > 0.0, "negative state at xi = {xi}");
            xi += 0.01;
        }
    }

    #[test]
    fn symmetric_problem_has_zero_contact_velocity() {
        let s = SodSolution::new(1.4, 1.0, 0.0, 1.0, 1.0, 0.0, 1.0);
        assert!(s.u_star().abs() < 1e-12);
        assert!((s.p_star() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn strong_shock_limit_density_ratio() {
        // Very strong left shock: star density approaches (γ+1)/(γ-1) ρ.
        let g = 5.0 / 3.0;
        let s = SodSolution::new(g, 1.0, 0.0, 1000.0, 1.0, 0.0, 1e-6);
        let (rho, _, _) = s.sample(s.u_star() + 1e-3);
        let limit = (g + 1.0) / (g - 1.0);
        assert!(rho < limit + 0.5, "post-shock density {rho} beyond limit {limit}");
        assert!(rho > 0.5 * limit, "post-shock density {rho} far from limit {limit}");
    }

    #[test]
    fn sedov_scalings() {
        let (e0, rho0, g) = (1.0, 1.0, 5.0 / 3.0);
        let r1 = sedov::shock_radius(e0, rho0, 1.0, g);
        let r32 = sedov::shock_radius(e0, rho0, 32.0, g);
        // R ∝ t^(2/5): t -> 32 t multiplies R by 4.
        assert!((r32 / r1 - 4.0).abs() < 1e-12);
        assert!((sedov::post_shock_density(1.0, g) - 4.0).abs() < 1e-12);
        // Energy scaling: E -> 32 E also multiplies R by 2.
        let r_e = sedov::shock_radius(32.0 * e0, rho0, 1.0, g);
        assert!((r_e / r1 - 2.0).abs() < 1e-12);
        assert!(sedov::shock_speed(e0, rho0, 1.0, g) > 0.0);
        // xi0 interpolation midpoint sanity.
        assert!(sedov::xi0(1.5) > 1.033 && sedov::xi0(1.5) < 1.1527);
    }
}
