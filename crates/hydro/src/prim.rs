//! Conserved ↔ primitive conversion with the dual-energy switch.

use crate::eos::{IdealGas, DUAL_ENERGY_SWITCH};
use util::vec3::Vec3;

/// Density floor: cells never drain below this (the V1309 domain is
/// padded with a tenuous atmosphere; a hard floor keeps the far field
/// well-conditioned, as in Octo-Tiger).
pub const RHO_FLOOR: f64 = 1.0e-15;

/// Primitive hydrodynamic state of one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Primitive {
    pub rho: f64,
    pub vel: Vec3,
    /// Gas pressure.
    pub p: f64,
    /// Internal energy density ρε (consistent with `p` via the EOS).
    pub e_int: f64,
}

impl Primitive {
    /// Recover primitives from conserved (ρ, s, E, τ) using the
    /// dual-energy formalism: if the thermally resolved fraction of E is
    /// too small (high Mach), internal energy comes from the entropy
    /// tracer τ instead of E − ½ρu².
    pub fn from_conserved(eos: &IdealGas, rho: f64, s: Vec3, egas: f64, tau: f64) -> Primitive {
        let rho = rho.max(RHO_FLOOR);
        let vel = s / rho;
        let e_kin = 0.5 * rho * vel.norm2();
        let e_thermal = egas - e_kin;
        let e_int = if egas > 0.0 && e_thermal > DUAL_ENERGY_SWITCH * egas {
            e_thermal
        } else {
            eos.e_from_tau(tau)
        };
        let e_int = e_int.max(0.0);
        Primitive { rho, vel, p: eos.pressure(e_int), e_int }
    }

    /// Conserved variables (ρ, s, E, τ) of this state.
    pub fn to_conserved(&self, eos: &IdealGas) -> (f64, Vec3, f64, f64) {
        let s = self.vel * self.rho;
        let egas = self.e_int + 0.5 * self.rho * self.vel.norm2();
        (self.rho, s, egas, eos.tau_from_e(self.e_int))
    }

    /// Signal speed along axis `axis`: |u| + c.
    pub fn signal_speed(&self, eos: &IdealGas, axis: usize) -> f64 {
        self.vel[axis].abs() + eos.sound_speed(self.rho, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_low_mach() {
        let eos = IdealGas::monatomic();
        let p0 = Primitive {
            rho: 1.0,
            vel: Vec3::new(0.1, -0.2, 0.05),
            p: eos.pressure(2.0),
            e_int: 2.0,
        };
        let (rho, s, e, tau) = p0.to_conserved(&eos);
        let p1 = Primitive::from_conserved(&eos, rho, s, e, tau);
        assert!((p1.rho - p0.rho).abs() < 1e-14);
        assert!((p1.vel - p0.vel).norm() < 1e-14);
        assert!((p1.e_int - p0.e_int).abs() < 1e-12);
    }

    #[test]
    fn high_mach_uses_entropy() {
        let eos = IdealGas::monatomic();
        // Kinetic energy vastly dominates: e_int = 1e-12, v = 1000.
        let p0 = Primitive {
            rho: 1.0,
            vel: Vec3::new(1000.0, 0.0, 0.0),
            p: eos.pressure(1e-12),
            e_int: 1e-12,
        };
        let (rho, s, e, tau) = p0.to_conserved(&eos);
        // Corrupt E slightly (as cancellation would): the recovered
        // internal energy must still come out right via tau.
        let p1 = Primitive::from_conserved(&eos, rho, s, e * (1.0 + 1e-9), tau);
        assert!(
            (p1.e_int - 1e-12).abs() < 1e-17,
            "entropy fallback failed: {} vs 1e-12",
            p1.e_int
        );
    }

    #[test]
    fn density_floor_applies() {
        let eos = IdealGas::monatomic();
        let p = Primitive::from_conserved(&eos, 0.0, Vec3::ZERO, 0.0, 0.0);
        assert_eq!(p.rho, RHO_FLOOR);
        assert_eq!(p.p, 0.0);
    }

    #[test]
    fn negative_thermal_energy_recovers_from_tau() {
        let eos = IdealGas::monatomic();
        let tau = eos.tau_from_e(0.5);
        let p = Primitive::from_conserved(&eos, 1.0, Vec3::new(10.0, 0.0, 0.0), 40.0, tau);
        // E - ke = 40 - 50 < 0: must fall back to tau.
        assert!((p.e_int - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn roundtrip_random_states(rho in 1e-6f64..1e3,
                                   vx in -10.0f64..10.0, vy in -10.0f64..10.0, vz in -10.0f64..10.0,
                                   e_int in 1e-3f64..1e3) {
            let eos = IdealGas::new(1.4);
            let p0 = Primitive { rho, vel: Vec3::new(vx, vy, vz), p: eos.pressure(e_int), e_int };
            let (r, s, e, tau) = p0.to_conserved(&eos);
            let p1 = Primitive::from_conserved(&eos, r, s, e, tau);
            prop_assert!((p1.rho - rho).abs() < 1e-12 * rho);
            prop_assert!((p1.vel - p0.vel).norm() < 1e-10);
            // e_int either from E (fine here: moderate Mach) or tau.
            prop_assert!((p1.e_int - e_int).abs() < 1e-6 * e_int.max(1.0));
        }

        #[test]
        fn signal_speed_nonnegative(rho in 1e-6f64..1e3, v in -100.0f64..100.0, e in 0.0f64..1e3) {
            let eos = IdealGas::monatomic();
            let p = Primitive { rho, vel: Vec3::new(v, 0.0, 0.0), p: eos.pressure(e), e_int: e };
            for axis in 0..3 {
                prop_assert!(p.signal_speed(&eos, axis) >= 0.0);
            }
        }
    }
}
