//! Ideal-gas (γ-law) equation of state and the dual-energy entropy
//! tracer.
//!
//! Octo-Tiger's dual-energy formalism (§4.2, after Enzo) evolves both
//! the gas total energy E and an entropy tracer τ = (ρε)^(1/γ) (ρε the
//! internal energy density). In high-Mach flow, where E is dominated by
//! kinetic energy and E − ρu²/2 is catastrophically cancelled, the
//! internal energy is recovered from τ instead.

/// γ-law equation of state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealGas {
    /// Adiabatic index γ (> 1).
    pub gamma: f64,
}

impl IdealGas {
    pub fn new(gamma: f64) -> IdealGas {
        assert!(gamma > 1.0, "gamma must exceed 1");
        IdealGas { gamma }
    }

    /// Monatomic ideal gas, γ = 5/3 — the paper's stellar matter EOS
    /// (Octo-Tiger's V1309 runs use n = 3/2 polytropic structure, which
    /// corresponds to γ = 5/3).
    pub fn monatomic() -> IdealGas {
        IdealGas::new(5.0 / 3.0)
    }

    /// Pressure from internal energy density ρε: `p = (γ−1) ρε`.
    #[inline]
    pub fn pressure(&self, e_int: f64) -> f64 {
        (self.gamma - 1.0) * e_int.max(0.0)
    }

    /// Internal energy density from pressure.
    #[inline]
    pub fn e_from_pressure(&self, p: f64) -> f64 {
        p / (self.gamma - 1.0)
    }

    /// Adiabatic sound speed `c = sqrt(γ p / ρ)`.
    #[inline]
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        if rho <= 0.0 {
            return 0.0;
        }
        (self.gamma * p.max(0.0) / rho).sqrt()
    }

    /// The entropy tracer from internal energy density: τ = (ρε)^(1/γ).
    #[inline]
    pub fn tau_from_e(&self, e_int: f64) -> f64 {
        e_int.max(0.0).powf(1.0 / self.gamma)
    }

    /// Internal energy density from the entropy tracer: ρε = τ^γ.
    #[inline]
    pub fn e_from_tau(&self, tau: f64) -> f64 {
        tau.max(0.0).powf(self.gamma)
    }
}

/// Dual-energy switch threshold: when the thermal fraction
/// `(E − ρu²/2) / E` falls below this, use the entropy tracer
/// (Enzo's canonical value is ~1e-3; Octo-Tiger uses 1e-3 too; we keep
/// a slightly conservative 1e-3).
pub const DUAL_ENERGY_SWITCH: f64 = 1.0e-3;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pressure_energy_roundtrip() {
        let eos = IdealGas::monatomic();
        let e = 2.5;
        let p = eos.pressure(e);
        assert!((eos.e_from_pressure(p) - e).abs() < 1e-14);
        assert!((p - (2.0 / 3.0) * e).abs() < 1e-14);
    }

    #[test]
    fn tau_roundtrip() {
        let eos = IdealGas::new(1.4);
        for e in [1e-12, 1.0, 37.5, 1e8] {
            let tau = eos.tau_from_e(e);
            assert!((eos.e_from_tau(tau) - e).abs() < 1e-9 * e, "e = {e}");
        }
    }

    #[test]
    fn sound_speed_sane() {
        let eos = IdealGas::new(1.4);
        let c = eos.sound_speed(1.4, 1.0);
        assert!((c - 1.0).abs() < 1e-14);
        assert_eq!(eos.sound_speed(0.0, 1.0), 0.0);
        assert_eq!(eos.sound_speed(1.0, -1.0), 0.0);
    }

    #[test]
    fn negative_energy_clamps() {
        let eos = IdealGas::monatomic();
        assert_eq!(eos.pressure(-1.0), 0.0);
        assert_eq!(eos.tau_from_e(-1.0), 0.0);
        assert_eq!(eos.e_from_tau(-1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn gamma_validated() {
        let _ = IdealGas::new(1.0);
    }

    proptest! {
        #[test]
        fn tau_is_monotone(e1 in 1e-6f64..1e6, e2 in 1e-6f64..1e6) {
            let eos = IdealGas::monatomic();
            prop_assert_eq!(e1 < e2, eos.tau_from_e(e1) < eos.tau_from_e(e2));
        }
    }
}
