//! Explicit-continuation futures — the heart of HPX futurization.
//!
//! "A powerful and composable primitive, the future object represents and
//! manages asynchronous execution and dataflow" (paper §4.1). The key
//! semantics reproduced here:
//!
//! * [`Promise::set_value`] makes the future ready and *schedules* any
//!   attached continuation as a task — dependencies trigger dependents,
//!   nobody blocks.
//! * [`Future::then`] attaches a continuation and returns a future for
//!   its result, enabling arbitrarily deep dataflow trees.
//! * [`when_all`] joins a set of futures.
//! * [`Future::get_help`] blocks, but *helps* execute other tasks while
//!   waiting, which is how HPX suspends a task without idling the worker.
//!
//! Futures are single-ownership (like `hpx::future`); dropping a promise
//! without setting a value is reported to waiters as a broken promise.

use crate::scheduler::Scheduler;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

enum State<T> {
    /// Not ready; optional continuation to schedule on completion.
    Pending(Option<(Arc<Scheduler>, Box<dyn FnOnce(T) + Send>)>),
    /// Value available, not yet consumed.
    Ready(Option<T>),
    /// The promise was dropped without producing a value.
    Broken,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

/// The write end of an asynchronous value.
pub struct Promise<T> {
    inner: Arc<Inner<T>>,
    /// Whether a value was delivered (to detect broken promises on drop).
    fulfilled: bool,
}

/// The read end of an asynchronous value.
pub struct Future<T> {
    inner: Arc<Inner<T>>,
}

impl<T: Send + 'static> Promise<T> {
    /// Create a connected promise/future pair.
    pub fn new() -> (Promise<T>, Future<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State::Pending(None)),
            cond: Condvar::new(),
        });
        (Promise { inner: Arc::clone(&inner), fulfilled: false }, Future { inner })
    }

    /// Make the future ready. If a continuation is attached it is spawned
    /// as a task on the scheduler it was registered with.
    ///
    /// # Panics
    /// If the value was already set.
    pub fn set_value(mut self, value: T) {
        self.fulfilled = true;
        let mut state = self.inner.state.lock();
        match std::mem::replace(&mut *state, State::Broken) {
            State::Pending(None) => {
                *state = State::Ready(Some(value));
                drop(state);
                self.inner.cond.notify_all();
            }
            State::Pending(Some((sched, cont))) => {
                // The value belongs to the continuation; the state stays
                // Broken, which is unobservable because `then` consumed
                // the only Future handle.
                drop(state);
                sched.spawn(move || cont(value));
            }
            old @ State::Ready(_) => {
                *state = old;
                panic!("promise value set twice");
            }
            State::Broken => unreachable!("promise still alive, state cannot be Broken"),
        }
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if !self.fulfilled {
            let mut state = self.inner.state.lock();
            if matches!(*state, State::Pending(_)) {
                *state = State::Broken;
                drop(state);
                self.inner.cond.notify_all();
            }
        }
    }
}

impl<T: Send + 'static> Future<T> {
    /// Whether the value is available right now.
    pub fn is_ready(&self) -> bool {
        matches!(*self.inner.state.lock(), State::Ready(_))
    }

    /// Attach a continuation; returns a future for the continuation's
    /// result. The continuation runs as a scheduler task as soon as the
    /// value arrives (immediately if it is already ready).
    pub fn then<U: Send + 'static>(
        self,
        sched: &Arc<Scheduler>,
        f: impl FnOnce(T) -> U + Send + 'static,
    ) -> Future<U> {
        let (promise, fut) = Promise::new();
        let mut state = self.inner.state.lock();
        match &mut *state {
            State::Pending(slot) => {
                assert!(slot.is_none(), "future already has a continuation");
                *slot = Some((
                    Arc::clone(sched),
                    Box::new(move |v| promise.set_value(f(v))),
                ));
            }
            State::Ready(opt) => {
                let v = opt.take().expect("future value already consumed");
                *state = State::Broken;
                drop(state);
                sched.spawn(move || promise.set_value(f(v)));
            }
            State::Broken => panic!("continuation attached to a broken future"),
        }
        fut
    }

    /// Block until ready, parking the calling thread. Use
    /// [`Future::get_help`] from worker threads.
    pub fn get(self) -> T {
        let mut state = self.inner.state.lock();
        loop {
            match &mut *state {
                State::Ready(opt) => return opt.take().expect("future value already consumed"),
                State::Broken => panic!("broken promise: writer dropped without a value"),
                State::Pending(_) => self.inner.cond.wait(&mut state),
            }
        }
    }

    /// Block until ready, executing other scheduler tasks while waiting.
    pub fn get_help(self, sched: &Arc<Scheduler>) -> T {
        let inner = Arc::clone(&self.inner);
        sched.help_until(|| !matches!(*inner.state.lock(), State::Pending(_)));
        let mut state = self.inner.state.lock();
        match &mut *state {
            State::Ready(opt) => opt.take().expect("future value already consumed"),
            State::Broken => panic!("broken promise: writer dropped without a value"),
            State::Pending(_) => unreachable!("help_until returned before readiness"),
        }
    }

    /// Non-blocking attempt to take the value.
    pub fn try_take(&self) -> Option<T> {
        let mut state = self.inner.state.lock();
        match &mut *state {
            State::Ready(opt) => opt.take(),
            _ => None,
        }
    }
}

/// A future that is ready immediately — HPX `make_ready_future`.
pub fn make_ready_future<T: Send + 'static>(value: T) -> Future<T> {
    let inner = Arc::new(Inner {
        state: Mutex::new(State::Ready(Some(value))),
        cond: Condvar::new(),
    });
    Future { inner }
}

/// Join a set of futures into a future of all their values, in order —
/// HPX `when_all`. An empty input yields an immediately ready empty vec.
pub fn when_all<T: Send + 'static>(
    sched: &Arc<Scheduler>,
    futures: Vec<Future<T>>,
) -> Future<Vec<T>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = futures.len();
    if n == 0 {
        return make_ready_future(Vec::new());
    }
    let (promise, fut) = Promise::new();
    let slots: Arc<Mutex<Vec<Option<T>>>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let remaining = Arc::new(AtomicUsize::new(n));
    let promise = Arc::new(Mutex::new(Some(promise)));
    for (i, f) in futures.into_iter().enumerate() {
        let slots = Arc::clone(&slots);
        let remaining = Arc::clone(&remaining);
        let promise = Arc::clone(&promise);
        // The continuation result is (), discarded; we keep the returned
        // future alive inside the closure chain implicitly.
        let _ = f.then(sched, move |v| {
            slots.lock()[i] = Some(v);
            if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                let vals: Vec<T> = slots
                    .lock()
                    .iter_mut()
                    .map(|s| s.take().expect("slot must be filled"))
                    .collect();
                if let Some(p) = promise.lock().take() {
                    p.set_value(vals);
                }
            }
        });
    }
    fut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn sched(n: usize) -> Arc<Scheduler> {
        Scheduler::new(n, Arc::new(CounterRegistry::new()))
    }

    #[test]
    fn set_then_get() {
        let (p, f) = Promise::new();
        p.set_value(7);
        assert!(f.is_ready());
        assert_eq!(f.get(), 7);
    }

    #[test]
    fn get_blocks_until_set() {
        let (p, f) = Promise::new();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p.set_value("hello".to_string());
        });
        assert_eq!(f.get(), "hello");
        h.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "broken promise")]
    fn broken_promise_panics_waiter() {
        let (p, f) = Promise::<u32>::new();
        drop(p);
        let _ = f.get();
    }

    #[test]
    fn then_runs_after_value() {
        let s = sched(2);
        let (p, f) = Promise::new();
        let g = f.then(&s, |v: i32| v * 2);
        p.set_value(21);
        assert_eq!(g.get_help(&s), 42);
    }

    #[test]
    fn then_on_ready_future_runs() {
        let s = sched(2);
        let f = make_ready_future(10).then(&s, |v| v + 5);
        assert_eq!(f.get_help(&s), 15);
    }

    #[test]
    fn chained_continuations() {
        let s = sched(2);
        let (p, f) = Promise::new();
        let f = f
            .then(&s, |v: u64| v + 1)
            .then(&s, |v| v * 10)
            .then(&s, |v| format!("{v}"));
        p.set_value(4);
        assert_eq!(f.get_help(&s), "50");
    }

    #[test]
    fn when_all_collects_in_order() {
        let s = sched(4);
        let mut promises = Vec::new();
        let mut futures = Vec::new();
        for _ in 0..16 {
            let (p, f) = Promise::new();
            promises.push(p);
            futures.push(f);
        }
        let joined = when_all(&s, futures);
        // Resolve in reverse order to check ordering is by index.
        for (i, p) in promises.into_iter().enumerate().rev() {
            p.set_value(i);
        }
        let vals = joined.get_help(&s);
        assert_eq!(vals, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn when_all_empty_is_ready() {
        let s = sched(1);
        let joined: Future<Vec<u8>> = when_all(&s, Vec::new());
        assert!(joined.is_ready());
        assert_eq!(joined.get(), Vec::<u8>::new());
    }

    #[test]
    fn try_take_semantics() {
        let (p, f) = Promise::new();
        assert!(f.try_take().is_none());
        p.set_value(3);
        assert_eq!(f.try_take(), Some(3));
        assert_eq!(f.try_take(), None);
    }

    #[test]
    fn continuations_do_not_recurse_on_stack() {
        // A chain of 100k continuations would overflow the stack if run
        // recursively inside set_value; they are scheduled as tasks.
        let s = sched(2);
        let (p, mut f) = Promise::new();
        for _ in 0..100_000 {
            f = f.then(&s, |v: u64| v + 1);
        }
        p.set_value(0);
        assert_eq!(f.get_help(&s), 100_000);
    }

    #[test]
    fn get_help_makes_progress_on_single_worker() {
        // With a single worker busy on the spawning task, get_help from
        // the main thread must execute the continuation itself.
        let s = sched(1);
        let (p, f) = Promise::new();
        let g = f.then(&s, |v: i32| v + 1);
        let s2 = Arc::clone(&s);
        s.spawn(move || {
            // Simulate some work before fulfilling.
            std::thread::sleep(Duration::from_millis(5));
            p.set_value(1);
            let _ = s2; // keep scheduler alive inside task
        });
        assert_eq!(g.get_help(&s), 2);
    }

    #[test]
    fn massive_when_all_fanin() {
        let s = sched(4);
        let count = Arc::new(AtomicUsize::new(0));
        let futures: Vec<Future<usize>> = (0..1000)
            .map(|i| {
                let (p, f) = Promise::new();
                let c = Arc::clone(&count);
                s.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                    p.set_value(i);
                });
                f
            })
            .collect();
        let all = when_all(&s, futures).get_help(&s);
        assert_eq!(all.len(), 1000);
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert!(all.iter().enumerate().all(|(i, &v)| i == v));
    }
}
