//! The namespaced metrics facade over [`CounterRegistry`].
//!
//! HPX exposes every performance counter under one hierarchical
//! namespace (`/threads{locality#0/total}/count/cumulative`, ...); our
//! counters were historically scattered — the FMM solver wrote ad-hoc
//! `fmm/*` strings into its runtime's registry, each transport kept a
//! private registry, and bench bins reached into each through bespoke
//! accessors. [`Metrics`] unifies them: it owns (or wraps) one registry
//! for locally produced counters and *mounts* other registries under a
//! path prefix, so a cluster-level snapshot shows
//! `parcelport/libfabric/parcels/sent` and `locality/0/tasks/executed`
//! side by side in one sorted map.
//!
//! Resolution is longest-prefix: `metrics.counter("parcelport/mpi/x")`
//! writes the `x` counter of whatever registry is mounted at
//! `parcelport/mpi`, and plain names go to the facade's own registry.
//!
//! # Example
//!
//! ```
//! use amt::{CounterRegistry, Metrics};
//! use std::sync::Arc;
//!
//! let metrics = Metrics::new();
//! let transport = Arc::new(CounterRegistry::new());
//! metrics.mount("parcelport/mpi", Arc::clone(&transport));
//!
//! metrics.counter("parcelport/mpi/bytes_tx").add(128); // → transport's "bytes_tx"
//! metrics.increment("driver/steps");                   // → own registry
//!
//! assert_eq!(transport.get("bytes_tx"), 128);
//! let snapshot = metrics.snapshot();
//! assert_eq!(snapshot["parcelport/mpi/bytes_tx"], 128);
//! assert_eq!(snapshot["driver/steps"], 1);
//! ```

use crate::counters::CounterRegistry;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cheap, clonable handle to one counter. Hot paths should cache one
/// instead of re-resolving the name.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Add `amount`.
    pub fn add(&self, amount: u64) {
        self.0.fetch_add(amount, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn store(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A namespaced view over one owned registry plus any number of mounted
/// registries.
pub struct Metrics {
    own: Arc<CounterRegistry>,
    mounts: RwLock<Vec<(String, Arc<CounterRegistry>)>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// A facade with a fresh private registry and no mounts.
    pub fn new() -> Metrics {
        Metrics::over(Arc::new(CounterRegistry::new()))
    }

    /// A facade whose un-prefixed names resolve into `registry`. Used by
    /// [`crate::Runtime`] so `metrics().counter("fmm/x")` and the legacy
    /// `counters().get("fmm/x")` observe the same atomic.
    pub fn over(registry: Arc<CounterRegistry>) -> Metrics {
        Metrics { own: registry, mounts: RwLock::new(Vec::new()) }
    }

    /// The registry backing un-prefixed names.
    pub fn registry(&self) -> &Arc<CounterRegistry> {
        &self.own
    }

    /// Mount `registry` under `prefix`, so `"<prefix>/<name>"` resolves
    /// to `registry`'s `<name>` counter and `snapshot` lists its entries
    /// with the prefix attached. Longer prefixes win on overlap.
    pub fn mount(&self, prefix: &str, registry: Arc<CounterRegistry>) {
        let prefix = prefix.trim_end_matches('/').to_string();
        assert!(!prefix.is_empty(), "mount prefix must be non-empty");
        let mut mounts = self.mounts.write();
        mounts.retain(|(p, _)| *p != prefix);
        mounts.push((prefix, registry));
        // Longest prefix first, so resolution can take the first match.
        mounts.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then(a.0.cmp(&b.0)));
    }

    /// Map a namespaced name onto (registry, local name).
    fn resolve(&self, name: &str) -> (Arc<CounterRegistry>, String) {
        for (prefix, reg) in self.mounts.read().iter() {
            if let Some(rest) = name.strip_prefix(prefix.as_str()) {
                if let Some(local) = rest.strip_prefix('/') {
                    if !local.is_empty() {
                        return (Arc::clone(reg), local.to_string());
                    }
                }
            }
        }
        (Arc::clone(&self.own), name.to_string())
    }

    /// Get (or create) the counter handle for a namespaced name.
    pub fn counter(&self, name: &str) -> Counter {
        let (reg, local) = self.resolve(name);
        Counter(reg.handle(&local))
    }

    /// Add 1 to `name`.
    pub fn increment(&self, name: &str) {
        self.counter(name).increment();
    }

    /// Add `amount` to `name`.
    pub fn add(&self, name: &str, amount: u64) {
        self.counter(name).add(amount);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        let (reg, local) = self.resolve(name);
        reg.get(&local)
    }

    /// One sorted snapshot of every counter: the facade's own entries
    /// under their plain names, each mount's entries under its prefix.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (name, value) in self.own.snapshot() {
            out.insert(name, value);
        }
        for (prefix, reg) in self.mounts.read().iter() {
            for (name, value) in reg.snapshot() {
                out.insert(format!("{prefix}/{name}"), value);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_names_hit_own_registry() {
        let m = Metrics::new();
        m.counter("fmm/kernels/gpu").add(3);
        m.increment("fmm/kernels/gpu");
        assert_eq!(m.get("fmm/kernels/gpu"), 4);
        assert_eq!(m.registry().get("fmm/kernels/gpu"), 4);
    }

    #[test]
    fn over_shares_the_registry() {
        let reg = Arc::new(CounterRegistry::new());
        let m = Metrics::over(Arc::clone(&reg));
        reg.add("tasks/executed", 7);
        assert_eq!(m.get("tasks/executed"), 7);
        m.add("tasks/executed", 1);
        assert_eq!(reg.get("tasks/executed"), 8);
    }

    #[test]
    fn mounted_registry_resolves_and_snapshots_with_prefix() {
        let m = Metrics::new();
        let transport = Arc::new(CounterRegistry::new());
        m.mount("parcelport/libfabric", Arc::clone(&transport));
        m.counter("parcelport/libfabric/bytes_tx").add(128);
        assert_eq!(transport.get("bytes_tx"), 128);
        assert_eq!(m.get("parcelport/libfabric/bytes_tx"), 128);
        m.add("driver/steps", 2);
        let snap = m.snapshot();
        assert_eq!(snap.get("parcelport/libfabric/bytes_tx"), Some(&128));
        assert_eq!(snap.get("driver/steps"), Some(&2));
    }

    #[test]
    fn longest_prefix_wins() {
        let m = Metrics::new();
        let outer = Arc::new(CounterRegistry::new());
        let inner = Arc::new(CounterRegistry::new());
        m.mount("a", Arc::clone(&outer));
        m.mount("a/b", Arc::clone(&inner));
        m.increment("a/b/c");
        m.increment("a/x");
        assert_eq!(inner.get("c"), 1);
        assert_eq!(outer.get("x"), 1);
        assert_eq!(outer.get("b/c"), 0);
    }

    #[test]
    fn remounting_a_prefix_replaces_it() {
        let m = Metrics::new();
        let first = Arc::new(CounterRegistry::new());
        let second = Arc::new(CounterRegistry::new());
        m.mount("t", Arc::clone(&first));
        m.mount("t", Arc::clone(&second));
        m.increment("t/n");
        assert_eq!(first.get("n"), 0);
        assert_eq!(second.get("n"), 1);
    }

    #[test]
    fn name_equal_to_prefix_goes_to_own() {
        let m = Metrics::new();
        let sub = Arc::new(CounterRegistry::new());
        m.mount("p", sub);
        m.increment("p");
        assert_eq!(m.registry().get("p"), 1);
    }
}
