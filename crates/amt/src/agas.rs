//! Active Global Address Space (AGAS).
//!
//! HPX's AGAS (paper §4.1) "supports load balancing via object migration
//! and enables exposing a uniform API for local and remote execution":
//! every component (e.g. each octree node in Octo-Tiger) gets a global id
//! that stays valid when the object moves between localities. "Even when
//! a grid cell is migrated from one node to another during operation, the
//! runtime manages the updated destination address transparently" (§5.2).
//!
//! This module provides that resolution layer for the simulated cluster:
//! a [`GlobalId`] encodes the locality that *allocated* it; the registry
//! maps ids to (current locality, local object). Migration re-points the
//! mapping; stale sends are forwarded by the parcelport using
//! [`Agas::resolve`].

use parking_lot::RwLock;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A 64-bit global identifier: high 16 bits = allocating locality,
/// low 48 bits = sequence number on that locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u64);

impl GlobalId {
    const LOCALITY_SHIFT: u32 = 48;

    /// The locality that allocated this id (its *home*, not necessarily
    /// where the object currently lives).
    pub fn home_locality(self) -> u32 {
        (self.0 >> Self::LOCALITY_SHIFT) as u32
    }

    /// The per-locality sequence number.
    pub fn sequence(self) -> u64 {
        self.0 & ((1 << Self::LOCALITY_SHIFT) - 1)
    }

    fn compose(locality: u32, seq: u64) -> GlobalId {
        assert!(locality < (1 << 16), "locality id out of range");
        assert!(seq < (1 << Self::LOCALITY_SHIFT), "sequence exhausted");
        GlobalId(((locality as u64) << Self::LOCALITY_SHIFT) | seq)
    }
}

/// A type-erased component stored in the address space.
pub type Component = Arc<dyn Any + Send + Sync>;

struct Entry {
    /// Locality where the object currently lives.
    locality: u32,
    /// The object itself, present only on the owning locality.
    object: Option<Component>,
}

/// Per-locality AGAS instance. In the simulated cluster every locality
/// holds its own registry; remote entries are cached `locality`-only
/// mappings updated on migration.
pub struct Agas {
    locality: u32,
    next_seq: AtomicU64,
    entries: RwLock<HashMap<GlobalId, Entry>>,
}

impl Agas {
    /// An empty registry for `locality` (sequence numbers start at 1).
    pub fn new(locality: u32) -> Agas {
        Agas {
            locality,
            next_seq: AtomicU64::new(1),
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// The locality this registry belongs to.
    pub fn locality(&self) -> u32 {
        self.locality
    }

    /// Register a new local component and return its global id.
    pub fn register<T: Any + Send + Sync>(&self, object: Arc<T>) -> GlobalId {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let id = GlobalId::compose(self.locality, seq);
        self.entries.write().insert(
            id,
            Entry { locality: self.locality, object: Some(object as Component) },
        );
        id
    }

    /// Register a component under an id allocated elsewhere (used when an
    /// object migrates *in*).
    pub fn adopt<T: Any + Send + Sync>(&self, id: GlobalId, object: Arc<T>) {
        self.entries
            .write()
            .insert(id, Entry { locality: self.locality, object: Some(object as Component) });
    }

    /// Record that `id` now lives on `locality` (without holding the
    /// object). Used to keep forwarding pointers after a migration.
    pub fn record_remote(&self, id: GlobalId, locality: u32) {
        self.entries.write().insert(id, Entry { locality, object: None });
    }

    /// Where does `id` live, as far as this locality knows? Falls back to
    /// the id's home locality when no entry exists (the home always knows
    /// the latest location, so a parcel routed there gets forwarded).
    pub fn resolve(&self, id: GlobalId) -> u32 {
        self.entries
            .read()
            .get(&id)
            .map(|e| e.locality)
            .unwrap_or_else(|| id.home_locality())
    }

    /// Fetch a local component, downcast to its concrete type. `None` if
    /// the object is not resident here or has a different type.
    pub fn get<T: Any + Send + Sync>(&self, id: GlobalId) -> Option<Arc<T>> {
        let entries = self.entries.read();
        let obj = entries.get(&id)?.object.clone()?;
        obj.downcast::<T>().ok()
    }

    /// Whether the object is resident on this locality.
    pub fn is_local(&self, id: GlobalId) -> bool {
        self.entries
            .read()
            .get(&id)
            .map(|e| e.object.is_some())
            .unwrap_or(false)
    }

    /// If `id` has an explicit entry here whose object has moved away,
    /// return the locality it was forwarded to. `None` when the object is
    /// resident or simply unknown (unknown ids are *not* forwarded; the
    /// caller should fall back to [`Agas::resolve`] semantics only for
    /// ids it knows were allocated).
    pub fn forwarding_target(&self, id: GlobalId) -> Option<u32> {
        let entries = self.entries.read();
        let e = entries.get(&id)?;
        if e.object.is_none() && e.locality != self.locality {
            Some(e.locality)
        } else {
            None
        }
    }

    /// Remove a local object for migration, returning it. The entry keeps
    /// a forwarding pointer to `dest`.
    pub fn begin_migration(&self, id: GlobalId, dest: u32) -> Option<Component> {
        let mut entries = self.entries.write();
        let entry = entries.get_mut(&id)?;
        let obj = entry.object.take();
        entry.locality = dest;
        obj
    }

    /// Remove an entry entirely (object destruction).
    pub fn unregister(&self, id: GlobalId) -> bool {
        self.entries.write().remove(&id).is_some()
    }

    /// Number of ids known to this locality.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no ids are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of objects resident on this locality.
    pub fn resident_count(&self) -> usize {
        self.entries.read().values().filter(|e| e.object.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_encoding() {
        let id = GlobalId::compose(3, 42);
        assert_eq!(id.home_locality(), 3);
        assert_eq!(id.sequence(), 42);
    }

    #[test]
    fn register_and_get() {
        let agas = Agas::new(0);
        let id = agas.register(Arc::new(123u64));
        assert!(agas.is_local(id));
        assert_eq!(*agas.get::<u64>(id).unwrap(), 123);
        assert_eq!(agas.resolve(id), 0);
        assert_eq!(agas.resident_count(), 1);
    }

    #[test]
    fn wrong_type_downcast_is_none() {
        let agas = Agas::new(0);
        let id = agas.register(Arc::new(1.5f64));
        assert!(agas.get::<u64>(id).is_none());
        assert!(agas.get::<f64>(id).is_some());
    }

    #[test]
    fn unknown_id_resolves_to_home() {
        let agas = Agas::new(0);
        let foreign = GlobalId::compose(7, 99);
        assert_eq!(agas.resolve(foreign), 7);
        assert!(!agas.is_local(foreign));
        assert!(agas.get::<u64>(foreign).is_none());
    }

    #[test]
    fn migration_moves_object_and_leaves_forwarding_pointer() {
        let src = Agas::new(0);
        let dst = Agas::new(1);
        let id = src.register(Arc::new("payload".to_string()));

        let obj = src.begin_migration(id, 1).expect("object must exist");
        assert!(!src.is_local(id));
        assert_eq!(src.resolve(id), 1, "forwarding pointer must point at dest");

        let obj = obj.downcast::<String>().unwrap();
        dst.adopt(id, obj);
        assert!(dst.is_local(id));
        assert_eq!(*dst.get::<String>(id).unwrap(), "payload");
    }

    #[test]
    fn record_remote_updates_resolution() {
        let agas = Agas::new(0);
        let id = GlobalId::compose(2, 5);
        agas.record_remote(id, 4);
        assert_eq!(agas.resolve(id), 4);
    }

    #[test]
    fn unregister_removes() {
        let agas = Agas::new(0);
        let id = agas.register(Arc::new(0u8));
        assert!(agas.unregister(id));
        assert!(!agas.unregister(id));
        assert_eq!(agas.len(), 0);
        assert!(agas.is_empty());
    }

    #[test]
    fn ids_are_unique_across_many_registrations() {
        let agas = Agas::new(5);
        let mut ids: Vec<GlobalId> = (0..1000).map(|i| agas.register(Arc::new(i as u32))).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 1000);
        assert!(ids.iter().all(|id| id.home_locality() == 5));
    }

    #[test]
    #[should_panic(expected = "locality id out of range")]
    fn locality_range_checked() {
        let _ = GlobalId::compose(1 << 16, 0);
    }
}
