//! APEX-style task tracing: per-worker span timelines.
//!
//! The paper's scaling analysis (§7, Figs. 2–3, Table 2) was produced
//! with HPX performance counters and APEX task instrumentation: idle
//! rates, parcel counts, and per-task timelines that show *when* work
//! ran on which worker, not just how much of it there was. The
//! [`crate::metrics`] registry covers the scalar half; this module adds
//! the timeline half.
//!
//! # Span model
//!
//! A *span* is one timed interval on one thread: a static
//! [`TraceCategory`] (e.g. `fmm/m2m`), an optional dynamic label (a
//! Morton key, a byte count), a monotonic start timestamp, and a
//! duration. Spans are recorded with RAII guards:
//!
//! ```
//! let _session = amt::trace::TraceSession::begin();
//! {
//!     let _span = amt::trace::span(amt::trace::TraceCategory::Custom);
//!     // ... timed work ...
//! } // guard drop records the span
//! let trace = _session.end();
//! assert_eq!(trace.events.len(), 1);
//! ```
//!
//! # Overhead budget
//!
//! Tracing is off by default and every instrumentation site first checks
//! one relaxed atomic load ([`enabled`]), so the disabled cost is a few
//! cycles per site and **zero** allocations, counters, or syscalls.
//! When enabled, a span costs two `Instant::now` reads plus one push
//! into a *thread-local ring buffer* (an uncontended mutex: only the
//! draining session ever takes it from another thread). Ring capacity
//! is fixed per session ([`TraceSession::with_capacity`]); overflow
//! overwrites the oldest events and is reported via [`Trace::dropped`]
//! rather than ever blocking or reallocating on the hot path. Dynamic
//! labels are built lazily ([`span_labeled`] takes a closure) so the
//! `format!` only runs when tracing is on.
//!
//! # Sessions
//!
//! Recording is process-global (all schedulers and localities of the
//! in-process cluster write into the same registry of thread buffers),
//! so only one [`TraceSession`] can be active at a time; `begin` blocks
//! until the previous session ends. Timestamps are nanoseconds on a
//! process-wide monotonic epoch, so events from different localities
//! share one time axis — exactly what the chrome://tracing view needs.
//!
//! [`Trace::export_chrome_json`] writes the collected events in the
//! Chrome trace-event format (loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)): one "process" per scheduler
//! (locality), one "thread" row per worker. [`Trace::publish`] derives
//! scalar counters (`trace/idle_rate`, per-category duration
//! histograms) into a [`crate::Metrics`] facade, mirroring how APEX
//! feeds HPX's counter namespace.

use crate::metrics::Metrics;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity (events) for [`TraceSession::begin`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Static classification of a span. The category is the unit of
/// aggregation for summaries, histograms, and the idle-rate derivation;
/// the free-form per-span label is only carried into the exported
/// timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u32)]
pub enum TraceCategory {
    /// A scheduler task body running on a worker (APEX "task" event).
    TaskRun,
    /// A task was pushed to a deque or the injector (instant).
    TaskSpawn,
    /// A worker stole a task from a sibling's deque (instant).
    TaskSteal,
    /// A worker found no runnable task (parked or polling background).
    Idle,
    /// FMM upward pass: leaf multipole computation (P2M).
    FmmP2M,
    /// FMM upward pass: child-to-parent moment reduction (M2M).
    FmmM2M,
    /// FMM same-level pass: halo gather building one node's extended
    /// SoA moment grid.
    FmmGather,
    /// FMM same-level pass: multipole-to-local for one target-cell
    /// chunk of a node.
    FmmSameLevel,
    /// FMM near-field pass: leaf-only P2P for one target-cell chunk
    /// (split out of `fmm/same-level` so the breakdown attributes P2P
    /// work correctly).
    FmmNearField,
    /// FMM downward pass: parent-to-child local expansion shift (L2L).
    FmmL2L,
    /// FMM leaf assembly: folding local expansions into accelerations.
    FmmLeafAssembly,
    /// A kernel launch routed to the simulated GPU (§5.1 policy).
    GpuLaunch,
    /// An aggregation-region flush: a batch of same-kind kernel work
    /// items fused into one launch (or degraded per-item to the CPU).
    AggFlush,
    /// Per-leaf hydro right-hand-side evaluation.
    HydroRhs,
    /// A TVD-RK2 stage state update on one leaf.
    HydroApply,
    /// One full driver time step.
    Step,
    /// Intra-locality halo fill (driver ghost-cell exchange).
    HaloFill,
    /// Inter-locality halo interior exchange (parcels).
    HaloExchange,
    /// Inter-locality FMM leaf-multipole broadcast.
    MomentExchange,
    /// The gravity solve phase of a driver step.
    GravitySolve,
    /// The timestep min-reduction (local tree + cluster allreduce).
    DtReduce,
    /// End-of-step quiescence barrier across localities.
    Barrier,
    /// A parcel handed to a transport for sending.
    ParcelSend,
    /// A parcel delivered by a transport to its destination locality.
    ParcelRecv,
    /// The reliable-delivery layer retransmitted an unacknowledged
    /// parcel (backoff expired before the ack arrived).
    ParcelRetry,
    /// Anything not covered above (tests, ad-hoc probes).
    Custom,
}

serde::impl_codec_enum_unit!(TraceCategory {
    TaskRun,
    TaskSpawn,
    TaskSteal,
    Idle,
    FmmP2M,
    FmmM2M,
    FmmGather,
    FmmSameLevel,
    FmmNearField,
    FmmL2L,
    FmmLeafAssembly,
    GpuLaunch,
    AggFlush,
    HydroRhs,
    HydroApply,
    Step,
    HaloFill,
    HaloExchange,
    MomentExchange,
    GravitySolve,
    DtReduce,
    Barrier,
    ParcelSend,
    ParcelRecv,
    ParcelRetry,
    Custom,
});

impl TraceCategory {
    /// Every category, in declaration order.
    pub const ALL: &'static [TraceCategory] = &[
        TraceCategory::TaskRun,
        TraceCategory::TaskSpawn,
        TraceCategory::TaskSteal,
        TraceCategory::Idle,
        TraceCategory::FmmP2M,
        TraceCategory::FmmM2M,
        TraceCategory::FmmGather,
        TraceCategory::FmmSameLevel,
        TraceCategory::FmmNearField,
        TraceCategory::FmmL2L,
        TraceCategory::FmmLeafAssembly,
        TraceCategory::GpuLaunch,
        TraceCategory::AggFlush,
        TraceCategory::HydroRhs,
        TraceCategory::HydroApply,
        TraceCategory::Step,
        TraceCategory::HaloFill,
        TraceCategory::HaloExchange,
        TraceCategory::MomentExchange,
        TraceCategory::GravitySolve,
        TraceCategory::DtReduce,
        TraceCategory::Barrier,
        TraceCategory::ParcelSend,
        TraceCategory::ParcelRecv,
        TraceCategory::ParcelRetry,
        TraceCategory::Custom,
    ];

    /// The stable, slash-namespaced name used in exports and counter
    /// paths (`trace/cat/<name>/...` with `/` mapped to `_`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCategory::TaskRun => "sched/task",
            TraceCategory::TaskSpawn => "sched/spawn",
            TraceCategory::TaskSteal => "sched/steal",
            TraceCategory::Idle => "sched/idle",
            TraceCategory::FmmP2M => "fmm/p2m",
            TraceCategory::FmmM2M => "fmm/m2m",
            TraceCategory::FmmGather => "fmm/gather",
            TraceCategory::FmmSameLevel => "fmm/same-level",
            TraceCategory::FmmNearField => "fmm/near-field",
            TraceCategory::FmmL2L => "fmm/l2l",
            TraceCategory::FmmLeafAssembly => "fmm/leaf-assembly",
            TraceCategory::GpuLaunch => "fmm/gpu-launch",
            TraceCategory::AggFlush => "fmm/agg-flush",
            TraceCategory::HydroRhs => "hydro/rhs",
            TraceCategory::HydroApply => "hydro/apply",
            TraceCategory::Step => "driver/step",
            TraceCategory::HaloFill => "driver/halo-fill",
            TraceCategory::HaloExchange => "driver/halo-exchange",
            TraceCategory::MomentExchange => "driver/moment-exchange",
            TraceCategory::GravitySolve => "driver/gravity",
            TraceCategory::DtReduce => "driver/dt-reduce",
            TraceCategory::Barrier => "driver/barrier",
            TraceCategory::ParcelSend => "parcel/send",
            TraceCategory::ParcelRecv => "parcel/recv",
            TraceCategory::ParcelRetry => "parcel/retry",
            TraceCategory::Custom => "custom",
        }
    }

    /// Categories recorded as zero-duration instants rather than spans.
    pub fn is_instant(self) -> bool {
        matches!(self, TraceCategory::TaskSpawn | TraceCategory::TaskSteal)
    }
}

// ------------------------------------------------------------- global state

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_BUSY: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Nanoseconds since the process-wide monotonic trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Whether a [`TraceSession`] is currently recording. One relaxed load:
/// this is the only cost every instrumentation site pays when tracing
/// is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct RawEvent {
    cat: TraceCategory,
    label: Option<Box<str>>,
    t0_ns: u64,
    dur_ns: u64,
}

struct Ring {
    events: Vec<RawEvent>,
    next: usize,
    cap: usize,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring { events: Vec::new(), next: 0, cap }
    }

    fn push(&mut self, e: RawEvent, dropped: &AtomicU64) {
        if self.cap == 0 {
            dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if self.events.len() < self.cap {
            self.events.push(e);
        } else {
            self.events[self.next] = e;
            self.next = (self.next + 1) % self.cap;
            dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn reset(&mut self, cap: usize) {
        self.events.clear();
        self.events.shrink_to(cap);
        self.next = 0;
        self.cap = cap;
    }
}

struct ThreadBuf {
    tid: u32,
    pid: AtomicU32,
    name: Mutex<String>,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn with_thread_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    CURRENT.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                pid: AtomicU32::new(0),
                name: Mutex::new(name),
                ring: Mutex::new(Ring::new(RING_CAPACITY.load(Ordering::Relaxed))),
                dropped: AtomicU64::new(0),
            });
            registry().lock().push(Arc::clone(&buf));
            *slot = Some(buf);
        }
        f(slot.as_ref().unwrap())
    })
}

/// Name the calling thread's timeline and assign it to a process group.
///
/// Scheduler workers call this on startup with their scheduler id as
/// `pid` so the chrome-trace view groups one locality's workers
/// together. Returns the thread's stable trace id (also available via
/// [`current_tid`]). Idempotent: re-registering renames in place.
pub fn register_thread(pid: u32, name: &str) -> u32 {
    with_thread_buf(|buf| {
        buf.pid.store(pid, Ordering::Relaxed);
        *buf.name.lock() = name.to_string();
        buf.tid
    })
}

/// The calling thread's stable trace id (registering it with defaults —
/// pid 0, the OS thread name — on first use).
pub fn current_tid() -> u32 {
    with_thread_buf(|buf| buf.tid)
}

/// Record a completed span directly (used where RAII scoping is
/// awkward, e.g. the scheduler's coalesced idle accounting). No-op when
/// tracing is off.
pub fn record_raw(cat: TraceCategory, label: Option<String>, t0_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    with_thread_buf(|buf| {
        buf.ring.lock().push(
            RawEvent { cat, label: label.map(String::into_boxed_str), t0_ns, dur_ns },
            &buf.dropped,
        );
    });
}

/// Record a zero-duration instant event (spawns, steals). No-op when
/// tracing is off.
pub fn instant(cat: TraceCategory) {
    if enabled() {
        record_raw(cat, None, now_ns(), 0);
    }
}

/// RAII span recorder: construction stamps the start, drop records the
/// completed span into the thread-local ring. Created disarmed (free)
/// when tracing is off.
pub struct TraceGuard {
    cat: TraceCategory,
    label: Option<String>,
    t0_ns: u64,
    armed: bool,
}

impl TraceGuard {
    /// A guard that records nothing on drop.
    fn disarmed(cat: TraceCategory) -> TraceGuard {
        TraceGuard { cat, label: None, t0_ns: 0, armed: false }
    }

    /// Disarm the guard: nothing is recorded when it drops. For sites
    /// that only learn after the fact whether the interval is worth a
    /// span (e.g. a kernel launch that fell back to the CPU).
    pub fn cancel(&mut self) {
        self.armed = false;
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.armed {
            record_raw(self.cat, self.label.take(), self.t0_ns, now_ns() - self.t0_ns);
        }
    }
}

/// Open a span of `cat` on the calling thread, closed when the returned
/// guard drops.
#[inline]
pub fn span(cat: TraceCategory) -> TraceGuard {
    if !enabled() {
        return TraceGuard::disarmed(cat);
    }
    TraceGuard { cat, label: None, t0_ns: now_ns(), armed: true }
}

/// Like [`span`], with a dynamic label. The closure only runs (and the
/// label string is only allocated) when tracing is on.
#[inline]
pub fn span_labeled(cat: TraceCategory, label: impl FnOnce() -> String) -> TraceGuard {
    if !enabled() {
        return TraceGuard::disarmed(cat);
    }
    TraceGuard { cat, label: Some(label()), t0_ns: now_ns(), armed: true }
}

// ---------------------------------------------------------------- sessions

/// An exclusive recording window. `begin` enables the global recorder;
/// [`TraceSession::end`] (or drop) disables it and drains every
/// thread's ring buffer into a [`Trace`].
pub struct TraceSession {
    start_ns: u64,
}

impl TraceSession {
    /// Start recording with [`DEFAULT_RING_CAPACITY`] events per thread.
    /// Blocks until any previous session has ended.
    pub fn begin() -> TraceSession {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// Start recording with an explicit per-thread ring capacity.
    /// Blocks until any previous session has ended.
    pub fn with_capacity(ring_capacity: usize) -> TraceSession {
        while SESSION_BUSY
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        RING_CAPACITY.store(ring_capacity, Ordering::SeqCst);
        for buf in registry().lock().iter() {
            buf.ring.lock().reset(ring_capacity);
            buf.dropped.store(0, Ordering::Relaxed);
        }
        let start_ns = now_ns();
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession { start_ns }
    }

    /// Collect everything recorded so far without stopping the session.
    pub fn snapshot(&self) -> Trace {
        collect(self.start_ns)
    }

    /// Export the events recorded so far as chrome-trace JSON (see
    /// [`Trace::export_chrome_json`]).
    pub fn export_chrome_json(&self) -> String {
        self.snapshot().export_chrome_json()
    }

    /// Stop recording and drain all thread buffers.
    pub fn end(self) -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        collect(self.start_ns)
        // Drop releases the session slot.
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        SESSION_BUSY.store(false, Ordering::SeqCst);
    }
}

fn collect(start_ns: u64) -> Trace {
    let end_ns = now_ns();
    let mut threads = Vec::new();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for buf in registry().lock().iter() {
        let ring = buf.ring.lock();
        if ring.events.is_empty() {
            continue;
        }
        threads.push(ThreadInfo {
            tid: buf.tid,
            pid: buf.pid.load(Ordering::Relaxed),
            name: buf.name.lock().clone(),
        });
        // If the ring wrapped, slots [next..] are older than [..next].
        let (older, newer) = ring.events.split_at(ring.next);
        for e in newer.iter().chain(older.iter()) {
            events.push(TraceEvent {
                tid: buf.tid,
                cat: e.cat,
                label: e.label.as_deref().map(str::to_owned),
                t0_ns: e.t0_ns,
                dur_ns: e.dur_ns,
            });
        }
        dropped += buf.dropped.load(Ordering::Relaxed);
    }
    events.sort_by_key(|e| (e.t0_ns, std::cmp::Reverse(e.dur_ns)));
    threads.sort_by_key(|t| (t.pid, t.tid));
    Trace { start_ns, end_ns, dropped, threads, events }
}

// ------------------------------------------------------------------ traces

/// One thread's identity in a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Stable per-thread trace id (the chrome-trace `tid`).
    pub tid: u32,
    /// Process group (scheduler id for workers; the chrome-trace `pid`).
    pub pid: u32,
    /// Human-readable timeline name.
    pub name: String,
}

serde::impl_codec_struct!(ThreadInfo { tid, pid, name });

/// One recorded span or instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The recording thread's trace id.
    pub tid: u32,
    /// Static category.
    pub cat: TraceCategory,
    /// Optional dynamic label (Morton key, byte count, ...).
    pub label: Option<String>,
    /// Start, in nanoseconds on the process trace epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
}

serde::impl_codec_struct!(TraceEvent { tid, cat, label, t0_ns, dur_ns });

impl TraceEvent {
    /// End timestamp (`t0_ns + dur_ns`).
    pub fn end_ns(&self) -> u64 {
        self.t0_ns + self.dur_ns
    }
}

/// Aggregate statistics for one category across a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategorySummary {
    /// The category summarized.
    pub cat: TraceCategory,
    /// Number of events.
    pub count: u64,
    /// Sum of durations in nanoseconds.
    pub total_ns: u64,
    /// Longest single event in nanoseconds.
    pub max_ns: u64,
}

/// A drained recording: the events of every thread that recorded
/// anything during the session, on one shared monotonic time axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Session start (trace-epoch nanoseconds).
    pub start_ns: u64,
    /// Drain time (trace-epoch nanoseconds).
    pub end_ns: u64,
    /// Events overwritten by ring wrap-around (0 means the trace is
    /// complete).
    pub dropped: u64,
    /// Identities of the threads that recorded events.
    pub threads: Vec<ThreadInfo>,
    /// All events, sorted by start time.
    pub events: Vec<TraceEvent>,
}

serde::impl_codec_struct!(Trace { start_ns, end_ns, dropped, threads, events });

/// Histogram bucket upper bounds (ns) used by [`Trace::publish`], one
/// `le_*` counter per bucket plus `le_inf`.
pub const HIST_BUCKETS_NS: &[(u64, &str)] = &[
    (10_000, "le_10us"),
    (100_000, "le_100us"),
    (1_000_000, "le_1ms"),
    (10_000_000, "le_10ms"),
];

impl Trace {
    /// Wall-clock length of the session in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Per-category aggregates, in [`TraceCategory::ALL`] order,
    /// omitting categories with no events.
    pub fn summary(&self) -> Vec<CategorySummary> {
        let mut by_cat: Vec<CategorySummary> = TraceCategory::ALL
            .iter()
            .map(|&cat| CategorySummary { cat, count: 0, total_ns: 0, max_ns: 0 })
            .collect();
        for e in &self.events {
            let s = &mut by_cat[e.cat as usize];
            s.count += 1;
            s.total_ns += e.dur_ns;
            s.max_ns = s.max_ns.max(e.dur_ns);
        }
        by_cat.retain(|s| s.count > 0);
        by_cat
    }

    /// Worker idle fraction in permille: `idle / (idle + busy)` where
    /// busy is the total [`TraceCategory::TaskRun`] time. 0 when no
    /// worker events were recorded.
    pub fn idle_rate_permille(&self) -> u64 {
        let mut idle = 0u64;
        let mut busy = 0u64;
        for e in &self.events {
            match e.cat {
                TraceCategory::Idle => idle += e.dur_ns,
                TraceCategory::TaskRun => busy += e.dur_ns,
                _ => {}
            }
        }
        if idle + busy == 0 {
            return 0;
        }
        idle * 1000 / (idle + busy)
    }

    /// Derive scalar counters into `metrics`, the bridge between the
    /// timeline view and the HPX-counter-style registry:
    ///
    /// * `trace/events`, `trace/dropped`, `trace/wall_ns`
    /// * `trace/idle_rate` — worker idle permille (see
    ///   [`Trace::idle_rate_permille`])
    /// * per category `<c>` (with `/` mapped to `_`, e.g. `fmm_m2m`):
    ///   `trace/cat/<c>/count`, `/total_ns`, `/max_ns`, and a duration
    ///   histogram `/hist/le_10us` ... `/hist/le_inf`
    ///   ([`HIST_BUCKETS_NS`]).
    ///
    /// Nothing is registered unless this is called, so a run without an
    /// active session leaves the `trace/` namespace empty.
    pub fn publish(&self, metrics: &Metrics) {
        metrics.counter("trace/events").store(self.events.len() as u64);
        metrics.counter("trace/dropped").store(self.dropped);
        metrics.counter("trace/wall_ns").store(self.wall_ns());
        metrics.counter("trace/idle_rate").store(self.idle_rate_permille());
        for s in self.summary() {
            let c = s.cat.as_str().replace('/', "_");
            metrics.counter(&format!("trace/cat/{c}/count")).store(s.count);
            metrics.counter(&format!("trace/cat/{c}/total_ns")).store(s.total_ns);
            metrics.counter(&format!("trace/cat/{c}/max_ns")).store(s.max_ns);
            let mut buckets = vec![0u64; HIST_BUCKETS_NS.len() + 1];
            for e in self.events.iter().filter(|e| e.cat == s.cat) {
                let idx = HIST_BUCKETS_NS
                    .iter()
                    .position(|&(ub, _)| e.dur_ns <= ub)
                    .unwrap_or(HIST_BUCKETS_NS.len());
                buckets[idx] += 1;
            }
            for (i, &(_, label)) in HIST_BUCKETS_NS.iter().enumerate() {
                metrics.counter(&format!("trace/cat/{c}/hist/{label}")).store(buckets[i]);
            }
            metrics
                .counter(&format!("trace/cat/{c}/hist/le_inf"))
                .store(buckets[HIST_BUCKETS_NS.len()]);
        }
    }

    /// Serialize to the Chrome trace-event JSON format, loadable in
    /// `chrome://tracing` and Perfetto. Spans become complete (`"X"`)
    /// events, instants become `"i"` events; timestamps are
    /// microseconds relative to the session start; workers appear as
    /// named threads grouped under their scheduler's process.
    pub fn export_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut pids: Vec<u32> = self.threads.iter().map(|t| t.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        for pid in pids {
            push_event_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"sched-{pid}\"}}}}"
            ));
        }
        for t in &self.threads {
            push_event_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                t.pid,
                t.tid,
                escape_json(&t.name)
            ));
        }
        let pid_of: std::collections::HashMap<u32, u32> =
            self.threads.iter().map(|t| (t.tid, t.pid)).collect();
        for e in &self.events {
            push_event_sep(&mut out, &mut first);
            let pid = pid_of.get(&e.tid).copied().unwrap_or(0);
            let name = e.label.as_deref().unwrap_or_else(|| e.cat.as_str());
            let ts = e.t0_ns.saturating_sub(self.start_ns);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{}",
                escape_json(name),
                e.cat.as_str(),
                e.tid
            ));
            if e.dur_ns == 0 && e.cat.is_instant() {
                out.push_str(&format!(",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}}}", micros(ts)));
            } else {
                out.push_str(&format!(
                    ",\"ph\":\"X\",\"ts\":{},\"dur\":{}}}",
                    micros(ts),
                    micros(e.dur_ns)
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

// ------------------------------------------------------------- histograms

/// An empirical distribution of span durations (or any non-negative
/// integer quantity, e.g. parcel payload bytes) in logarithmic base-2
/// buckets, exported from a [`Trace`] for consumers that need to *sample*
/// measured behaviour rather than read scalar aggregates — the
/// `perfmodel` scale-out co-simulation draws per-category kernel costs
/// from these.
///
/// Bucket `i` covers values in `[2^i, 2^(i+1))` (value 0 lands in bucket
/// 0), fine enough to preserve the multi-decade shape of task-duration
/// distributions while staying a fixed 64-slot table. Exact `min`,
/// `max`, `count` and `total` are kept alongside so means are exact and
/// sampled values can be clamped into the observed range.
///
/// ```
/// use amt::trace::DurationHistogram;
///
/// let h = DurationHistogram::from_values([100u64, 200, 400, 800].into_iter());
/// assert_eq!(h.count(), 4);
/// assert!((h.mean() - 375.0).abs() < 1e-9);
/// // Quantiles interpolate the empirical CDF, clamped to [min, max].
/// assert!(h.quantile(0.0) >= 100.0 && h.quantile(1.0) <= 800.0);
/// // Sampling via inverse CDF: any u64 random word maps to a duration.
/// let v = h.sample(0x9E3779B97F4A7C15);
/// assert!((100.0..=800.0).contains(&v));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DurationHistogram {
    count: u64,
    total: u64,
    min: u64,
    max: u64,
    /// `buckets[i]` counts values with `floor(log2(max(v,1))) == i`.
    buckets: Vec<u64>,
}

impl Default for DurationHistogram {
    fn default() -> DurationHistogram {
        DurationHistogram::empty()
    }
}

impl DurationHistogram {
    /// Number of log2 buckets (covers the whole `u64` range).
    pub const BUCKETS: usize = 64;

    /// An empty histogram (count 0; [`DurationHistogram::mean`] is 0).
    pub fn empty() -> DurationHistogram {
        DurationHistogram { count: 0, total: 0, min: u64::MAX, max: 0, buckets: vec![0; Self::BUCKETS] }
    }

    /// Build from raw values.
    pub fn from_values(values: impl Iterator<Item = u64>) -> DurationHistogram {
        let mut h = DurationHistogram::empty();
        for v in values {
            h.record(v);
        }
        h
    }

    /// Add one observation.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.total += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[63 - v.max(1).leading_zeros() as usize] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        self.count += other.count;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 { 0 } else { self.min }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Inverse empirical CDF: the value at quantile `q` ∈ [0, 1],
    /// linearly interpolated inside the containing log2 bucket and
    /// clamped to the observed `[min, max]`. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n as f64;
            if target <= next {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 { self.max as f64 } else { (1u64 << (i + 1)) as f64 };
                let frac = (target - cum) / n as f64;
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min as f64, self.max as f64);
            }
            cum = next;
        }
        self.max as f64
    }

    /// Draw one value using `word` as the uniform random source (any
    /// 64-bit word, e.g. from a seeded splitmix64 stream): maps `word`
    /// to a quantile and inverts the CDF. Deterministic in `word`.
    pub fn sample(&self, word: u64) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        self.quantile((word >> 11) as f64 / (1u64 << 53) as f64)
    }

    /// Draw the sum of `n` values, using `next_word` as the random
    /// stream. Exact sampling up to 64 draws; beyond that the sum is
    /// approximated by its normal limit (mean `n·µ`, variance from the
    /// bucket spread) so cost stays bounded for large work volumes —
    /// still fully deterministic in the consumed words.
    pub fn sample_sum(&self, n: u64, mut next_word: impl FnMut() -> u64) -> f64 {
        if self.count == 0 || n == 0 {
            return 0.0;
        }
        if n <= 64 {
            return (0..n).map(|_| self.sample(next_word())).sum();
        }
        // Bucket-level variance estimate around the exact mean.
        let mean = self.mean();
        let mut var = 0.0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mid = if i == 0 { 1.0 } else { 1.5 * (1u64 << i) as f64 };
            var += c as f64 * (mid - mean) * (mid - mean);
        }
        var /= self.count as f64;
        // Box-Muller from two words; clamp at zero (durations are
        // non-negative).
        let u1 = ((next_word() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
        let u2 = (next_word() >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (n as f64 * mean + (n as f64 * var).sqrt() * z).max(0.0)
    }
}

impl Trace {
    /// The duration distribution of one category as a log2-bucket
    /// histogram — the sampler export used to calibrate the scale-out
    /// co-simulation (see `perfmodel::calibrate`).
    pub fn histogram(&self, cat: TraceCategory) -> DurationHistogram {
        DurationHistogram::from_values(
            self.events.iter().filter(|e| e.cat == cat).map(|e| e.dur_ns),
        )
    }
}

fn push_event_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

/// Format nanoseconds as a decimal microsecond literal with full
/// nanosecond precision (chrome-trace `ts`/`dur` are float µs).
fn micros(ns: u64) -> String {
    if ns % 1000 == 0 {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_records_nothing() {
        {
            let _g = span(TraceCategory::Custom);
        }
        instant(TraceCategory::TaskSpawn);
        // No session: nothing to observe, but the calls must be free of
        // side effects — begin a session and confirm it starts empty on
        // this thread.
        let session = TraceSession::begin();
        let trace = session.end();
        let tid = current_tid();
        assert!(trace.events.iter().all(|e| e.tid != tid));
    }

    #[test]
    fn session_records_spans_and_instants() {
        let session = TraceSession::begin();
        let tid = current_tid();
        {
            let _g = span_labeled(TraceCategory::Custom, || "outer".into());
            let _inner = span(TraceCategory::TaskRun);
        }
        instant(TraceCategory::TaskSteal);
        let trace = session.end();
        let mine: Vec<_> = trace.events.iter().filter(|e| e.tid == tid).collect();
        assert_eq!(mine.len(), 3);
        assert!(mine.iter().any(|e| e.label.as_deref() == Some("outer")));
        assert!(mine
            .iter()
            .any(|e| e.cat == TraceCategory::TaskSteal && e.dur_ns == 0));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let session = TraceSession::with_capacity(4);
        let tid = current_tid();
        for i in 0..10u32 {
            record_raw(TraceCategory::Custom, Some(format!("e{i}")), now_ns(), 1);
        }
        let trace = session.end();
        let mine: Vec<_> = trace.events.iter().filter(|e| e.tid == tid).collect();
        assert_eq!(mine.len(), 4);
        assert!(trace.dropped >= 6);
        // The survivors are the newest four, in order.
        let labels: Vec<_> = mine.iter().map(|e| e.label.clone().unwrap()).collect();
        assert_eq!(labels, vec!["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn summary_and_idle_rate() {
        let t0 = 1000u64;
        let trace = Trace {
            start_ns: 0,
            end_ns: 10_000,
            dropped: 0,
            threads: vec![ThreadInfo { tid: 1, pid: 0, name: "w".into() }],
            events: vec![
                TraceEvent {
                    tid: 1,
                    cat: TraceCategory::TaskRun,
                    label: None,
                    t0_ns: t0,
                    dur_ns: 3000,
                },
                TraceEvent {
                    tid: 1,
                    cat: TraceCategory::Idle,
                    label: None,
                    t0_ns: t0 + 3000,
                    dur_ns: 1000,
                },
            ],
        };
        assert_eq!(trace.idle_rate_permille(), 250);
        let summary = trace.summary();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].cat, TraceCategory::TaskRun);
        assert_eq!(summary[0].total_ns, 3000);
    }

    #[test]
    fn publish_writes_trace_namespace() {
        let trace = Trace {
            start_ns: 0,
            end_ns: 5000,
            dropped: 1,
            threads: vec![],
            events: vec![TraceEvent {
                tid: 1,
                cat: TraceCategory::FmmM2M,
                label: None,
                t0_ns: 0,
                dur_ns: 50_000,
            }],
        };
        let m = Metrics::new();
        trace.publish(&m);
        let snap = m.snapshot();
        assert_eq!(snap.get("trace/events"), Some(&1));
        assert_eq!(snap.get("trace/dropped"), Some(&1));
        assert_eq!(snap.get("trace/cat/fmm_m2m/count"), Some(&1));
        assert_eq!(snap.get("trace/cat/fmm_m2m/total_ns"), Some(&50_000));
        assert_eq!(snap.get("trace/cat/fmm_m2m/hist/le_100us"), Some(&1));
        assert_eq!(snap.get("trace/cat/fmm_m2m/hist/le_10us"), Some(&0));
    }

    #[test]
    fn chrome_json_shape() {
        let trace = Trace {
            start_ns: 1000,
            end_ns: 9000,
            dropped: 0,
            threads: vec![ThreadInfo { tid: 2, pid: 7, name: "worker-\"0\"".into() }],
            events: vec![
                TraceEvent {
                    tid: 2,
                    cat: TraceCategory::TaskRun,
                    label: Some("k7".into()),
                    t0_ns: 2500,
                    dur_ns: 1500,
                },
                TraceEvent {
                    tid: 2,
                    cat: TraceCategory::TaskSteal,
                    label: None,
                    t0_ns: 2000,
                    dur_ns: 0,
                },
            ],
        };
        let json = trace.export_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("worker-\\\"0\\\""));
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.500,\"dur\":1.500"));
        assert!(json.contains("\"ph\":\"i\",\"s\":\"t\",\"ts\":1}"));
        // Balanced braces: a cheap well-formedness check without a JSON
        // parser in the dependency set.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn histogram_quantiles_bracket_the_sample() {
        let values = [120u64, 480, 950, 2100, 2100, 9000];
        let h = DurationHistogram::from_values(values.iter().copied());
        assert_eq!(h.count(), 6);
        assert_eq!(h.total(), values.iter().sum::<u64>());
        assert_eq!(h.min(), 120);
        assert_eq!(h.max(), 9000);
        assert!((h.mean() - h.total() as f64 / 6.0).abs() < 1e-9);
        // Quantiles are monotone and clamped to the observed range.
        let mut last = 0.0;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0);
            assert!(q >= last, "quantiles must be monotone");
            assert!((120.0..=9000.0).contains(&q), "q={q}");
            last = q;
        }
        // Sampling never escapes [min, max] either.
        let mut word = 0x1234_5678_9abc_def0u64;
        for _ in 0..100 {
            word = word.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
            let v = h.sample(word);
            assert!((120.0..=9000.0).contains(&v), "sample {v}");
        }
    }

    #[test]
    fn histogram_sum_sampling_tracks_the_mean() {
        let h = DurationHistogram::from_values((0..200u64).map(|i| 1000 + i * 7));
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(0x14057B7EF767814F);
            state
        };
        // Exact path (n <= 64) and normal-limit path (n > 64) must both
        // land near n * mean.
        for n in [16u64, 1000] {
            let sum = h.sample_sum(n, &mut next);
            let expect = n as f64 * h.mean();
            assert!(
                (sum - expect).abs() < 0.25 * expect,
                "n={n}: sum {sum} vs expected {expect}"
            );
        }
        // Deterministic: the same word stream reproduces the same sums.
        let mut s1 = 7u64;
        let mut a = move || {
            s1 = s1.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s1
        };
        let mut s2 = 7u64;
        let mut b = move || {
            s2 = s2.wrapping_add(0x9E37_79B9_7F4A_7C15);
            s2
        };
        assert_eq!(h.sample_sum(1000, &mut a).to_bits(), h.sample_sum(1000, &mut b).to_bits());
        // Merge is additive.
        let mut m = DurationHistogram::empty();
        m.merge(&h);
        m.merge(&h);
        assert_eq!(m.count(), 2 * h.count());
        assert_eq!(m.total(), 2 * h.total());
    }

    #[test]
    fn trace_histogram_extracts_one_category() {
        let trace = Trace {
            start_ns: 0,
            end_ns: 1000,
            dropped: 0,
            threads: vec![],
            events: vec![
                TraceEvent { tid: 1, cat: TraceCategory::FmmM2M, label: None, t0_ns: 0, dur_ns: 500 },
                TraceEvent { tid: 1, cat: TraceCategory::FmmM2M, label: None, t0_ns: 10, dur_ns: 700 },
                TraceEvent { tid: 1, cat: TraceCategory::Idle, label: None, t0_ns: 20, dur_ns: 9 },
            ],
        };
        let h = trace.histogram(TraceCategory::FmmM2M);
        assert_eq!(h.count(), 2);
        assert_eq!(h.total(), 1200);
        assert_eq!(trace.histogram(TraceCategory::HydroRhs).count(), 0);
    }

    #[test]
    fn codec_roundtrip_preserves_chrome_json() {
        let trace = Trace {
            start_ns: 10,
            end_ns: 500,
            dropped: 3,
            threads: vec![ThreadInfo { tid: 1, pid: 2, name: "w0".into() }],
            events: vec![TraceEvent {
                tid: 1,
                cat: TraceCategory::ParcelSend,
                label: Some("mpi:128B".into()),
                t0_ns: 20,
                dur_ns: 7,
            }],
        };
        let mut w = serde::Writer::new();
        serde::Serialize::serialize(&trace, &mut w);
        let bytes = w.into_vec();
        let mut r = serde::Reader::new(&bytes);
        let back: Trace = serde::Deserialize::deserialize(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(back, trace);
        assert_eq!(back.export_chrome_json(), trace.export_chrome_json());
    }
}
