//! An asynchronous many-task (AMT) runtime — the HPX stand-in.
//!
//! The paper builds Octo-Tiger on HPX (§4.1), whose essential components
//! are:
//!
//! * futures and other primitives for wait-free asynchronous programming
//!   ("futurization"),
//! * a work-stealing lightweight task scheduler,
//! * an Active Global Address Space (AGAS) supporting components and
//!   migration,
//! * channels layered over the send/receive abstraction, and
//! * APEX-style performance counters.
//!
//! This crate implements each of those from scratch:
//!
//! * [`future`] — explicit-continuation futures ([`Future`], [`Promise`],
//!   [`when_all`]) whose continuations are scheduled as tasks when their
//!   dependencies are satisfied, exactly HPX's dataflow model. A blocked
//!   `get` *helps* run other tasks instead of idling, mirroring HPX task
//!   suspension.
//! * [`scheduler`] — a work-stealing pool over `crossbeam_deque` with
//!   per-worker LIFO deques, a global injector, and parking.
//! * [`channel`] — HPX-style channels: the receiving side fetches futures
//!   for values (any number of steps ahead), the sending side pushes data
//!   as it is generated (§5.2).
//! * [`agas`] — a global id → component registry with migration support.
//! * [`counters`] — named atomic counters, queried like HPX performance
//!   counters.
//! * [`trace`] — APEX-style span tracing: per-worker timelines recorded
//!   into thread-local ring buffers, exported as chrome://tracing JSON
//!   (see DESIGN.md §4 "Observability").
//!
//! The whole distributed layer (`parcelport` crate) and the GPU layer
//! (`gpusim` crate) are built on these primitives, as in the paper.

#![warn(missing_docs)]

pub mod agas;
pub mod channel;
pub mod counters;
pub mod future;
pub mod metrics;
pub mod scheduler;
pub mod trace;

pub use agas::{Agas, GlobalId};
pub use channel::Channel;
pub use counters::CounterRegistry;
pub use future::{make_ready_future, when_all, Future, Promise};
pub use metrics::{Counter, Metrics};
pub use scheduler::Scheduler;
pub use trace::{DurationHistogram, Trace, TraceCategory, TraceGuard, TraceSession};

use std::sync::Arc;

/// The composed runtime: scheduler + AGAS + counters.
///
/// One `Runtime` corresponds to one HPX *locality*. The `parcelport` crate
/// wires several of these together into a simulated cluster.
pub struct Runtime {
    sched: Arc<Scheduler>,
    agas: Agas,
    counters: Arc<CounterRegistry>,
    metrics: Metrics,
    locality: u32,
}

impl Runtime {
    /// Create a runtime with `n_threads` worker threads for locality 0.
    pub fn new(n_threads: usize) -> Arc<Runtime> {
        Self::with_locality(n_threads, 0)
    }

    /// Create a runtime for a given locality id (used by the cluster sim).
    pub fn with_locality(n_threads: usize, locality: u32) -> Arc<Runtime> {
        let counters = Arc::new(CounterRegistry::new());
        Arc::new(Runtime {
            sched: Scheduler::new(n_threads, Arc::clone(&counters)),
            agas: Agas::new(locality),
            metrics: Metrics::over(Arc::clone(&counters)),
            counters,
            locality,
        })
    }

    /// The locality id of this runtime.
    pub fn locality(&self) -> u32 {
        self.locality
    }

    /// The task scheduler.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// The global address space of this locality.
    pub fn agas(&self) -> &Agas {
        &self.agas
    }

    /// The performance counter registry.
    pub fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// The namespaced metrics facade over this locality's counters.
    /// `metrics().counter("fmm/x")` and `counters().get("fmm/x")`
    /// observe the same atomic; the facade adds mounts and snapshots.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Spawn a fire-and-forget task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.sched.spawn(f);
    }

    /// Spawn a task and get a future for its result — HPX `async`.
    pub fn async_call<R: Send + 'static>(
        &self,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> Future<R> {
        let (promise, fut) = Promise::new();
        self.sched.spawn(move || promise.set_value(f()));
        fut
    }

    /// Block until `fut` is ready, helping to run other tasks meanwhile.
    pub fn get<T: Send + 'static>(&self, fut: Future<T>) -> T {
        fut.get_help(&self.sched)
    }

    /// Run tasks until the scheduler is quiescent (no task in flight).
    pub fn wait_quiescent(&self) {
        self.sched.wait_quiescent();
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.sched.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn async_call_roundtrip() {
        let rt = Runtime::new(2);
        let f = rt.async_call(|| 21 * 2);
        assert_eq!(rt.get(f), 42);
    }

    #[test]
    fn spawn_many_and_quiesce() {
        let rt = Runtime::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            rt.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_quiescent();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawns_complete() {
        let rt = Runtime::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            let sched = Arc::clone(rt.scheduler());
            rt.spawn(move || {
                for _ in 0..10 {
                    let c2 = Arc::clone(&c);
                    sched.spawn(move || {
                        c2.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        rt.wait_quiescent();
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn futurization_tree() {
        // A binary dependency tree of continuations, exercising the
        // dataflow style the paper uses for the FMM.
        let rt = Runtime::new(4);
        fn sum_tree(rt: &Arc<Runtime>, depth: usize) -> Future<u64> {
            if depth == 0 {
                return make_ready_future(1);
            }
            let l = sum_tree(rt, depth - 1);
            let r = sum_tree(rt, depth - 1);
            let sched = Arc::clone(rt.scheduler());
            when_all(&sched, vec![l, r]).then(&sched, |vals| vals.iter().sum::<u64>())
        }
        let f = sum_tree(&rt, 10);
        assert_eq!(rt.get(f), 1024);
    }
}
