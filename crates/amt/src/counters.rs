//! APEX-style performance counters.
//!
//! "HPX provides a performance counter and adaptive tuning framework that
//! allows users to access performance data, such as core utilization,
//! task overheads, and network throughput; these diagnostic tools were
//! instrumental in scaling Octo-Tiger to the full machine" (paper §4.1).
//!
//! [`CounterRegistry`] is a concurrent map of hierarchical counter names
//! (e.g. `"tasks/executed"`, `"parcels/sent"`, `"fmm/kernels/gpu"`) to
//! atomic values. All runtime subsystems report into it and the benchmark
//! harnesses read it to compute the quantities the paper reports (kernel
//! launch fractions, sub-grids per second, ...).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concurrent registry of named `u64` counters.
#[derive(Default)]
pub struct CounterRegistry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (or create) the counter handle for `name`. Handles are cheap
    /// to clone and lock-free to update — hot paths should cache one.
    pub fn handle(&self, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write();
        Arc::clone(
            w.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Add 1 to `name`.
    pub fn increment(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `amount` to `name`.
    pub fn add(&self, name: &str, amount: u64) {
        self.handle(name).fetch_add(amount, Ordering::Relaxed);
    }

    /// Current value of `name` (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Reset `name` to zero, returning the previous value.
    pub fn reset(&self, name: &str) -> u64 {
        self.counters
            .read()
            .get(name)
            .map(|c| c.swap(0, Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
            .collect();
        v.sort();
        v
    }

    /// Snapshot of counters whose name starts with `prefix`.
    pub fn snapshot_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.snapshot()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_increment() {
        let reg = CounterRegistry::new();
        assert_eq!(reg.get("a/b"), 0);
        reg.increment("a/b");
        reg.add("a/b", 4);
        assert_eq!(reg.get("a/b"), 5);
    }

    #[test]
    fn handles_are_shared() {
        let reg = CounterRegistry::new();
        let h1 = reg.handle("x");
        let h2 = reg.handle("x");
        h1.fetch_add(3, Ordering::Relaxed);
        assert_eq!(h2.load(Ordering::Relaxed), 3);
        assert_eq!(reg.get("x"), 3);
    }

    #[test]
    fn reset_returns_previous() {
        let reg = CounterRegistry::new();
        reg.add("r", 10);
        assert_eq!(reg.reset("r"), 10);
        assert_eq!(reg.get("r"), 0);
        assert_eq!(reg.reset("never"), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_filtered() {
        let reg = CounterRegistry::new();
        reg.add("tasks/executed", 2);
        reg.add("parcels/sent", 7);
        reg.add("tasks/stolen", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["parcels/sent", "tasks/executed", "tasks/stolen"]);
        let tasks = reg.snapshot_prefix("tasks/");
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = Arc::new(CounterRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let h = reg.handle("hot");
                    for _ in 0..10_000 {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.get("hot"), 80_000);
    }
}
