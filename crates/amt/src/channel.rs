//! HPX-style channels (paper §5.2).
//!
//! "The asynchronous send/receive abstraction in HPX has been extended
//! with the concept of a channel that the receiving end may fetch futures
//! from (for N timesteps ahead if desired) and the sending end may push
//! data into as it is generated."
//!
//! [`Channel`] reproduces exactly this: `recv` returns a [`Future`]
//! immediately — even before the matching `send` happens — and pairs
//! values with futures in FIFO order. Octo-Tiger's halo exchange uses one
//! channel per (neighbor, direction); the receiver attaches the dependent
//! computation as a continuation, so "the user does not have to perform
//! any test for readiness of the received data".

use crate::future::{Future, Promise};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct ChannelInner<T> {
    /// Values sent but not yet matched with a `recv`.
    values: VecDeque<T>,
    /// Promises from `recv` calls not yet matched with a `send`.
    waiters: VecDeque<Promise<T>>,
    closed: bool,
}

/// A multi-producer multi-consumer FIFO channel whose receive side hands
/// out futures. Cloning shares the same queue.
pub struct Channel<T> {
    inner: Arc<Mutex<ChannelInner<T>>>,
}

impl<T> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel { inner: Arc::clone(&self.inner) }
    }
}

impl<T: Send + 'static> Default for Channel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> Channel<T> {
    /// An empty open channel.
    pub fn new() -> Self {
        Channel {
            inner: Arc::new(Mutex::new(ChannelInner {
                values: VecDeque::new(),
                waiters: VecDeque::new(),
                closed: false,
            })),
        }
    }

    /// Push a value. If a receiver is already waiting, its future becomes
    /// ready immediately (scheduling its continuation, if any).
    ///
    /// # Panics
    /// If the channel was closed.
    pub fn send(&self, value: T) {
        let mut inner = self.inner.lock();
        assert!(!inner.closed, "send on closed channel");
        if let Some(promise) = inner.waiters.pop_front() {
            drop(inner);
            promise.set_value(value);
        } else {
            inner.values.push_back(value);
        }
    }

    /// Fetch a future for the next value in FIFO order. May be called any
    /// number of steps ahead of the matching sends.
    pub fn recv(&self) -> Future<T> {
        let mut inner = self.inner.lock();
        if let Some(v) = inner.values.pop_front() {
            crate::future::make_ready_future(v)
        } else {
            assert!(!inner.closed, "recv on closed, drained channel");
            let (p, f) = Promise::new();
            inner.waiters.push_back(p);
            f
        }
    }

    /// Number of values queued and not yet received.
    pub fn len(&self) -> usize {
        self.inner.lock().values.len()
    }

    /// Whether no values are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of receivers waiting for values.
    pub fn waiting_receivers(&self) -> usize {
        self.inner.lock().waiters.len()
    }

    /// Close the channel. Outstanding receive futures become broken
    /// promises; further sends panic. Queued values can still be received.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        inner.waiters.clear(); // dropping promises breaks them
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterRegistry;
    use crate::scheduler::Scheduler;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sched(n: usize) -> Arc<Scheduler> {
        Scheduler::new(n, Arc::new(CounterRegistry::new()))
    }

    #[test]
    fn send_then_recv() {
        let ch = Channel::new();
        ch.send(1);
        ch.send(2);
        assert_eq!(ch.len(), 2);
        assert_eq!(ch.recv().get(), 1);
        assert_eq!(ch.recv().get(), 2);
        assert!(ch.is_empty());
    }

    #[test]
    fn recv_before_send() {
        let ch = Channel::new();
        let f1 = ch.recv();
        let f2 = ch.recv();
        assert_eq!(ch.waiting_receivers(), 2);
        assert!(!f1.is_ready());
        ch.send("a");
        ch.send("b");
        assert_eq!(f1.get(), "a");
        assert_eq!(f2.get(), "b");
    }

    #[test]
    fn fetch_futures_n_steps_ahead() {
        // The §5.2 use case: the receiver pre-fetches futures for N
        // timesteps and attaches continuations; the sender pushes as
        // data is generated.
        let s = sched(2);
        let ch = Channel::new();
        let seen = Arc::new(AtomicUsize::new(0));
        let mut outs = Vec::new();
        for step in 0..10usize {
            let seen = Arc::clone(&seen);
            outs.push(ch.recv().then(&s, move |v: usize| {
                assert_eq!(v, step);
                seen.fetch_add(1, Ordering::SeqCst);
                v
            }));
        }
        for step in 0..10usize {
            ch.send(step);
        }
        for (i, f) in outs.into_iter().enumerate() {
            assert_eq!(f.get_help(&s), i);
        }
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn channel_is_mpmc_across_threads() {
        let ch = Channel::new();
        let n = 200;
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ch = ch.clone();
                std::thread::spawn(move || {
                    for i in 0..n / 4 {
                        ch.send(t * 1000 + i);
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        for _ in 0..n {
            got.push(ch.recv().get());
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), n as usize);
    }

    #[test]
    #[should_panic(expected = "send on closed channel")]
    fn send_after_close_panics() {
        let ch = Channel::new();
        ch.close();
        ch.send(1);
    }

    #[test]
    fn close_breaks_waiting_receivers() {
        let ch = Channel::<u8>::new();
        let f = ch.recv();
        ch.close();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.get()));
        assert!(res.is_err(), "waiting receiver should see a broken promise");
    }

    #[test]
    fn queued_values_survive_close() {
        let ch = Channel::new();
        ch.send(9);
        ch.close();
        assert_eq!(ch.recv().get(), 9);
    }
}
