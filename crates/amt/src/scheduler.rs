//! Work-stealing lightweight task scheduler.
//!
//! HPX's scheduler (paper §4.1) gives each OS worker thread a local task
//! deque and lets idle workers steal from busy ones, which "enables
//! finer-grained parallelization and synchronization and automatic load
//! balancing across all local compute resources". We reproduce that
//! structure with `crossbeam_deque`:
//!
//! * each worker owns a LIFO [`crossbeam_deque::Worker`] deque,
//! * a global injector queue accepts tasks spawned from non-worker
//!   threads (and overflow),
//! * idle workers steal: local pop → injector → other workers,
//! * fully idle workers park on a condvar and are woken by new work.
//!
//! Two HPX behaviours matter for the paper's results and are reproduced
//! faithfully:
//!
//! 1. **Help-first blocking**: a task that waits on a future executes
//!    other tasks while waiting ([`Scheduler::help_until`]), so blocked
//!    CPU threads never idle — this is what keeps GPUs fed in §5.1.
//! 2. **Background polling hooks**: the scheduler loop invokes registered
//!    pollers between tasks (see [`Scheduler::register_poller`]); the
//!    libfabric parcelport integrates network-completion polling into the
//!    scheduling loop exactly this way (§6.3).
//!
//! When a [`crate::trace::TraceSession`] is active, workers additionally
//! record APEX-style span events: one `sched/task` span per executed
//! task, `sched/spawn`/`sched/steal` instants, and coalesced
//! `sched/idle` spans covering park/poll stretches — the raw material
//! for the per-worker timelines and idle-rate counters of DESIGN.md §4.
//!
//! # Example
//!
//! ```
//! use amt::{CounterRegistry, Scheduler};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let sched = Scheduler::new(2, Arc::new(CounterRegistry::new()));
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..8 {
//!     let hits = Arc::clone(&hits);
//!     sched.spawn(move || { hits.fetch_add(1, Ordering::Relaxed); });
//! }
//! sched.wait_quiescent();
//! assert_eq!(hits.load(Ordering::Relaxed), 8);
//! ```

use crate::counters::CounterRegistry;
use crate::trace::{self, TraceCategory};
use crossbeam_deque::{Injector, Stealer, Worker as WorkerDeque};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// A network-progress hook run by idle workers (returns `true` if it made
/// progress, i.e. completed at least one event).
pub type Poller = Box<dyn Fn() -> bool + Send + Sync + 'static>;

struct Shared {
    injector: Injector<Task>,
    stealers: Vec<Stealer<Task>>,
    sleep_lock: Mutex<()>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    pollers: Mutex<Vec<Arc<Poller>>>,
    poller_snapshot: AtomicU64,
    counters: Arc<CounterRegistry>,
    sched_id: u64,
    worker_trace_ids: Mutex<Vec<u32>>,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

struct LocalCtx {
    sched_id: u64,
    worker_index: usize,
    deque: WorkerDeque<Task>,
}

static NEXT_SCHED_ID: AtomicU64 = AtomicU64::new(1);

/// The work-stealing scheduler. One per locality.
pub struct Scheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    n_threads: usize,
}

impl Scheduler {
    /// Spawn `n_threads` worker threads (at least one).
    pub fn new(n_threads: usize, counters: Arc<CounterRegistry>) -> Arc<Scheduler> {
        let n_threads = n_threads.max(1);
        let sched_id = NEXT_SCHED_ID.fetch_add(1, Ordering::Relaxed);
        // Pre-register the scheduler's counters so they appear (as 0)
        // in snapshots taken before any task runs — consumers mounting
        // this registry under a namespace rely on the names existing.
        for name in ["tasks/spawned", "tasks/executed", "tasks/stolen", "workers/parks"] {
            counters.handle(name);
        }
        let deques: Vec<WorkerDeque<Task>> = (0..n_threads).map(|_| WorkerDeque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new(()),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            pollers: Mutex::new(Vec::new()),
            poller_snapshot: AtomicU64::new(0),
            counters,
            sched_id,
            worker_trace_ids: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(n_threads);
        for (index, deque) in deques.into_iter().enumerate() {
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("amt-worker-{index}"))
                    .spawn(move || worker_main(sh, index, deque))
                    .expect("failed to spawn worker thread"),
            );
        }
        Arc::new(Scheduler { shared, handles: Mutex::new(handles), n_threads })
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Index of the current worker thread within this scheduler, if the
    /// calling thread is one of its workers.
    pub fn current_worker(&self) -> Option<usize> {
        LOCAL.with(|l| {
            l.borrow()
                .as_ref()
                .filter(|ctx| ctx.sched_id == self.shared.sched_id)
                .map(|ctx| ctx.worker_index)
        })
    }

    /// Spawn a task. From a worker thread of this scheduler the task goes
    /// to the local deque (LIFO, cache-friendly); otherwise it is injected
    /// globally.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.spawn_boxed(Box::new(f));
    }

    /// Spawn an already boxed task.
    pub fn spawn_boxed(&self, task: Task) {
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let pushed_local = LOCAL.with(|l| {
            let borrow = l.borrow();
            if let Some(ctx) = borrow.as_ref() {
                if ctx.sched_id == self.shared.sched_id {
                    ctx.deque.push(task);
                    return None;
                }
            }
            Some(task)
        });
        if let Some(task) = pushed_local {
            self.shared.injector.push(task);
        }
        trace::instant(TraceCategory::TaskSpawn);
        self.shared.counters.increment("tasks/spawned");
        // Wake one parked worker; cheap if none are parked.
        self.shared.wakeup.notify_one();
    }

    /// Register a background poller invoked by idle workers (network
    /// progress, GPU completion queues, ...). Returns its registration id.
    pub fn register_poller(&self, p: impl Fn() -> bool + Send + Sync + 'static) -> usize {
        let mut ps = self.shared.pollers.lock();
        ps.push(Arc::new(Box::new(p)));
        self.shared.poller_snapshot.fetch_add(1, Ordering::SeqCst);
        ps.len() - 1
    }

    /// Run one pending task if available. Returns `true` if a task ran.
    /// Usable from any thread; non-workers pull from the injector and
    /// stealers only.
    pub fn try_run_one(&self) -> bool {
        if let Some(task) = self.find_task() {
            self.run_task(task);
            true
        } else {
            false
        }
    }

    /// Help run tasks until `done()` returns true. This is the HPX
    /// "suspend the blocked task, run others" behaviour: callers never
    /// spin idle while work exists.
    pub fn help_until(&self, done: impl Fn() -> bool) {
        let mut idle_spins = 0u32;
        while !done() {
            if self.try_run_one() {
                idle_spins = 0;
                continue;
            }
            if self.poll_background() {
                idle_spins = 0;
                continue;
            }
            idle_spins += 1;
            if idle_spins < 64 {
                std::hint::spin_loop();
            } else {
                // Nothing to do: sleep briefly, re-check the predicate.
                let mut guard = self.shared.sleep_lock.lock();
                if done() {
                    return;
                }
                self.shared
                    .wakeup
                    .wait_for(&mut guard, Duration::from_micros(200));
            }
        }
    }

    /// Wait until no task is in flight (spawned but not finished),
    /// helping to run tasks meanwhile.
    pub fn wait_quiescent(&self) {
        self.help_until(|| self.shared.in_flight.load(Ordering::SeqCst) == 0);
    }

    /// Number of tasks spawned but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::SeqCst)
    }

    /// Trace ids ([`crate::trace::current_tid`]) of this scheduler's
    /// worker threads, in no particular order. A worker registers its
    /// id when its thread starts, so ids may still be missing in the
    /// first instants after [`Scheduler::new`]; after any task has run
    /// on every worker the list is complete. Used by trace consumers to
    /// attribute per-worker events to a specific scheduler.
    pub fn worker_trace_ids(&self) -> Vec<u32> {
        self.shared.worker_trace_ids.lock().clone()
    }

    /// Signal shutdown and join all worker threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
        let mut handles = self.handles.lock();
        for h in handles.drain(..) {
            let _ = h.join();
        }
    }

    fn find_task(&self) -> Option<Task> {
        find_task_impl(&self.shared, None)
    }

    fn run_task(&self, task: Task) {
        run_task_impl(&self.shared, task);
    }

    fn poll_background(&self) -> bool {
        poll_background_impl(&self.shared)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run_task_impl(shared: &Shared, task: Task) {
    // Decrement in-flight even if the task panics (a leaked increment
    // would wedge every quiescence waiter forever).
    struct InFlightGuard<'a>(&'a Shared);
    impl Drop for InFlightGuard<'_> {
        fn drop(&mut self) {
            self.0.counters.increment("tasks/executed");
            self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
            // A quiescence waiter may be sleeping on the condvar.
            self.0.wakeup.notify_all();
        }
    }
    let _guard = InFlightGuard(shared);
    let _span = trace::span(TraceCategory::TaskRun);
    task();
}

fn poll_background_impl(shared: &Shared) -> bool {
    // Snapshot the poller list without holding the lock during calls.
    let pollers: Vec<Arc<Poller>> = shared.pollers.lock().clone();
    let mut progressed = false;
    for p in &pollers {
        if p() {
            progressed = true;
        }
    }
    progressed
}

fn find_task_impl(shared: &Shared, local: Option<&WorkerDeque<Task>>) -> Option<Task> {
    // 1. Local deque (only for workers).
    if let Some(deque) = local {
        if let Some(t) = deque.pop() {
            return Some(t);
        }
    }
    // 2. Global injector (batch into the local deque when we have one).
    loop {
        let steal = match local {
            Some(deque) => shared.injector.steal_batch_and_pop(deque),
            None => shared.injector.steal(),
        };
        match steal {
            crossbeam_deque::Steal::Success(t) => return Some(t),
            crossbeam_deque::Steal::Empty => break,
            crossbeam_deque::Steal::Retry => continue,
        }
    }
    // 3. Steal from sibling workers.
    for stealer in &shared.stealers {
        loop {
            match stealer.steal() {
                crossbeam_deque::Steal::Success(t) => {
                    trace::instant(TraceCategory::TaskSteal);
                    shared.counters.increment("tasks/stolen");
                    return Some(t);
                }
                crossbeam_deque::Steal::Empty => break,
                crossbeam_deque::Steal::Retry => continue,
            }
        }
    }
    None
}

/// Longest single `sched/idle` span recorded before it is closed and a
/// fresh one opened: bounds how much idle time a still-open span can
/// hide from a session that ends mid-idle.
const IDLE_SPAN_FLUSH_NS: u64 = 25_000_000;

fn worker_main(shared: Arc<Shared>, index: usize, deque: WorkerDeque<Task>) {
    LOCAL.with(|l| {
        *l.borrow_mut() = Some(LocalCtx { sched_id: shared.sched_id, worker_index: index, deque });
    });
    let trace_tid =
        trace::register_thread(shared.sched_id as u32, &format!("worker-{index}"));
    shared.worker_trace_ids.lock().push(trace_tid);
    // Start of the current idle stretch (no runnable task found), if
    // tracing is on. Closed into one coalesced `sched/idle` span when
    // the next task arrives, so park/poll churn does not flood the ring.
    let mut idle_since: Option<u64> = None;
    loop {
        let task = LOCAL.with(|l| {
            let borrow = l.borrow();
            let ctx = borrow.as_ref().expect("worker context missing");
            find_task_impl(&shared, Some(&ctx.deque))
        });
        match task {
            Some(t) => {
                if let Some(t0) = idle_since.take() {
                    trace::record_raw(TraceCategory::Idle, None, t0, trace::now_ns() - t0);
                }
                run_task_impl(&shared, t)
            }
            None => {
                match idle_since {
                    None if trace::enabled() => idle_since = Some(trace::now_ns()),
                    Some(t0) if trace::now_ns() - t0 > IDLE_SPAN_FLUSH_NS => {
                        let now = trace::now_ns();
                        trace::record_raw(TraceCategory::Idle, None, t0, now - t0);
                        idle_since = if trace::enabled() { Some(now) } else { None };
                    }
                    _ => {}
                }
                if poll_background_impl(&shared) {
                    continue;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                shared.counters.increment("workers/parks");
                let mut guard = shared.sleep_lock.lock();
                // Re-check for work before sleeping to avoid a lost wakeup.
                if !shared.injector.is_empty() || shared.shutdown.load(Ordering::SeqCst) {
                    continue;
                }
                shared.wakeup.wait_for(&mut guard, Duration::from_millis(1));
            }
        }
    }
    LOCAL.with(|l| {
        *l.borrow_mut() = None;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn new_sched(n: usize) -> Arc<Scheduler> {
        Scheduler::new(n, Arc::new(CounterRegistry::new()))
    }

    #[test]
    fn runs_spawned_tasks() {
        let s = new_sched(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.wait_quiescent();
        assert_eq!(c.load(Ordering::Relaxed), 100);
        s.shutdown();
    }

    #[test]
    fn single_thread_scheduler_works() {
        let s = new_sched(1);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.wait_quiescent();
        assert_eq!(c.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let s = new_sched(0);
        assert_eq!(s.n_threads(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        s.spawn(move || {
            d.store(1, Ordering::SeqCst);
        });
        s.wait_quiescent();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn current_worker_identity() {
        let s = new_sched(2);
        assert_eq!(s.current_worker(), None);
        let s2 = Arc::clone(&s);
        let (tx, rx) = std::sync::mpsc::channel();
        s.spawn(move || {
            tx.send(s2.current_worker()).unwrap();
        });
        let idx = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(idx.is_some());
        assert!(idx.unwrap() < 2);
    }

    #[test]
    fn distinct_schedulers_do_not_share_locals() {
        let s1 = new_sched(1);
        let s2 = new_sched(1);
        let c = Arc::new(AtomicUsize::new(0));
        let (c1, c2) = (Arc::clone(&c), Arc::clone(&c));
        // A task on s1 spawning onto s2 must inject, not push local.
        let s2c = Arc::clone(&s2);
        s1.spawn(move || {
            s2c.spawn(move || {
                c1.fetch_add(1, Ordering::Relaxed);
            });
            c2.fetch_add(1, Ordering::Relaxed);
        });
        s1.wait_quiescent();
        s2.wait_quiescent();
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pollers_run_when_idle() {
        let s = new_sched(2);
        let polled = Arc::new(AtomicUsize::new(0));
        let p = Arc::clone(&polled);
        s.register_poller(move || {
            p.fetch_add(1, Ordering::Relaxed);
            false
        });
        // Give idle workers a moment to call the poller.
        std::thread::sleep(Duration::from_millis(20));
        assert!(polled.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn help_until_runs_tasks_from_non_worker() {
        // A single-worker scheduler with a batch of tasks: help_until on
        // this (non-worker) thread must participate in draining them and
        // return once the predicate holds. (An earlier version of this
        // test parked the worker behind a spin-gate task; help_until on
        // the main thread could steal the gate task itself and deadlock
        // — the very reason blocking tasks must never spin on state only
        // another help-eligible thread can set.)
        let s = new_sched(1);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        let cc = Arc::clone(&c);
        s.help_until(move || cc.load(Ordering::Relaxed) == 64);
        s.wait_quiescent();
        assert_eq!(c.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let s = new_sched(2);
        s.shutdown();
        s.shutdown();
    }

    #[test]
    fn heavy_fanout_load_balances() {
        let s = new_sched(4);
        let c = Arc::new(AtomicUsize::new(0));
        let n = 10_000;
        for _ in 0..n {
            let c = Arc::clone(&c);
            s.spawn(move || {
                // Tiny task; stresses queues rather than compute.
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        s.wait_quiescent();
        assert_eq!(c.load(Ordering::Relaxed), n);
    }
}
