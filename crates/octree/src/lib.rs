//! The AMR octree substrate of Octo-Tiger (paper §4.2).
//!
//! "Octo-Tiger's main datastructure is a rotating Cartesian grid with
//! adaptive mesh refinement (AMR). It is based on an adaptive octree
//! structure. Each node is an N³ sub-grid (with N = 8 for all runs in
//! this paper) containing the evolved variables, and can be further
//! refined into eight child nodes. ... These octree nodes are distributed
//! onto the compute nodes using a space filling curve."
//!
//! * [`subgrid`] — the 8³ sub-grid of evolved variables (struct-of-arrays
//!   storage, ghost layers, face extraction for halo exchange).
//! * [`geometry`] — the cubic domain, per-level cell sizes, cell centres.
//! * [`tree`] — the octree itself: proper nesting, 2:1 balance,
//!   refinement/coarsening with conservative prolongation/restriction,
//!   neighbor lookup.
//! * [`prolong`] — conservative interpolation between levels ("the
//!   restart file for level 13 was read and refined to higher levels of
//!   resolution through conservative interpolation of the evolved
//!   variables", §6.2).
//! * [`halo`] — ghost-layer filling from same-level, finer, and coarser
//!   neighbors, plus physical boundary conditions.
//! * [`sfc`] — space-filling-curve partitioning of leaves over localities
//!   and the halo-message census consumed by the scaling model.
//! * [`refine`] — the refinement criteria, including the V1309 rule of
//!   §6 (stars to L−2, accretor core to L−1, donor core to L), used to
//!   regenerate Table 4.

pub mod geometry;
pub mod halo;
pub mod prolong;
pub mod refine;
pub mod sfc;
pub mod shard;
pub mod subgrid;
pub mod tree;

pub use geometry::Domain;
pub use shard::ShardMap;
pub use subgrid::{Field, SubGrid, FIELD_COUNT, N_SUB};
pub use tree::{Octree, TreeNode};

pub use util::morton::MortonKey;
