//! Shard-aware owner maps for distributing sub-grids over localities.
//!
//! Octo-Tiger assigns octree nodes to localities along the space filling
//! curve (paper §4.2); [`ShardMap`] wraps [`crate::sfc::partition`] into
//! the owner/owned view the distributed driver needs, plus the static
//! communication plan for halo traffic:
//!
//! * [`ShardMap::owner`] — which locality owns a leaf,
//! * [`ShardMap::owned`] — a locality's leaves in SFC order (the order
//!   every deterministic fold/write uses),
//! * [`ShardMap::halo_sources`] — the leaves whose *interiors* a leaf's
//!   ghost fill may read (its 26-direction neighbor closure), and
//! * [`ShardMap::halo_push_plan`] — per source locality, which of its
//!   leaves must be pushed to which destination before that
//!   destination can fill ghosts.
//!
//! Why the 26-direction closure suffices: every ghost cell of a leaf
//! lies, per axis, either in the leaf's own span or in the adjacent
//! span one cell-block over (after the boundary clamp/reflect it can
//! only move back *towards* the leaf), so the cell sampled by
//! `halo::sample_cell` — directly, via coarse injection, or via the
//! one-level fine average that 2:1 balance permits — always belongs to
//! the leaf itself or one of its same-level/coarser/finer neighbors in
//! the 26 directions.

use crate::sfc;
use crate::tree::{Neighbor, Octree, DIRECTIONS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use util::error::{Error, Result};
use util::morton::MortonKey;

/// The static assignment of leaves to shards (localities).
#[derive(Debug, Clone)]
pub struct ShardMap {
    owner: HashMap<MortonKey, u32>,
    owned: Vec<Vec<MortonKey>>,
}

impl ShardMap {
    /// Partition the tree's leaves into `n_shards` contiguous,
    /// balanced chunks along the space filling curve.
    pub fn partition(tree: &Octree, n_shards: usize) -> Result<ShardMap> {
        if n_shards == 0 {
            return Err(Error::Octree("cannot partition over zero shards".into()));
        }
        let leaves = tree.leaves();
        if leaves.is_empty() {
            return Err(Error::Octree("tree has no leaves to partition".into()));
        }
        let assignment = sfc::partition(&leaves, n_shards);
        let mut owner = HashMap::with_capacity(leaves.len());
        let mut owned = vec![Vec::new(); n_shards];
        // Iterating `leaves` (SFC-sorted) keeps each owned list in SFC
        // order — the deterministic iteration order for all shard work.
        for &leaf in &leaves {
            let part = assignment[&leaf] as u32;
            owner.insert(leaf, part);
            owned[part as usize].push(leaf);
        }
        Ok(ShardMap { owner, owned })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.owned.len()
    }

    /// Total number of leaves across all shards.
    pub fn n_leaves(&self) -> usize {
        self.owner.len()
    }

    /// The locality owning leaf `key`.
    pub fn owner(&self, key: MortonKey) -> Result<u32> {
        self.owner
            .get(&key)
            .copied()
            .ok_or_else(|| Error::Octree(format!("{key:?} is not a leaf in the shard map")))
    }

    /// The leaves owned by `shard`, in SFC order.
    pub fn owned(&self, shard: u32) -> &[MortonKey] {
        &self.owned[shard as usize]
    }

    /// The leaves whose interiors the ghost fill of `key` may sample
    /// (excluding `key` itself), sorted by key for determinism.
    pub fn halo_sources(tree: &Octree, key: MortonKey) -> Vec<MortonKey> {
        let mut set = BTreeSet::new();
        for dir in DIRECTIONS {
            match tree.neighbor(key, dir) {
                Neighbor::SameLevel(k) | Neighbor::Coarser(k) => {
                    set.insert(k);
                }
                Neighbor::Finer(children) => {
                    set.extend(children);
                }
                Neighbor::Boundary => {}
            }
        }
        set.remove(&key);
        set.into_iter().collect()
    }

    /// The static send schedule: `plan[src][dst]` is the sorted list of
    /// leaves owned by shard `src` whose interiors shard `dst` needs
    /// before it can fill the ghosts of its own leaves.
    pub fn halo_push_plan(&self, tree: &Octree) -> Vec<BTreeMap<u32, Vec<MortonKey>>> {
        let mut plan: Vec<BTreeMap<u32, BTreeSet<MortonKey>>> =
            vec![BTreeMap::new(); self.n_shards()];
        for (dst, targets) in self.owned.iter().enumerate() {
            let dst = dst as u32;
            for &target in targets {
                for source in Self::halo_sources(tree, target) {
                    let src = self.owner[&source];
                    if src != dst {
                        plan[src as usize].entry(dst).or_default().insert(source);
                    }
                }
            }
        }
        plan.into_iter()
            .map(|by_dst| {
                by_dst
                    .into_iter()
                    .map(|(dst, keys)| (dst, keys.into_iter().collect()))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Domain;

    fn amr_tree() -> Octree {
        let mut t = Octree::new(Domain::new(16.0));
        t.refine_where(2, |d, k| d.node_origin(k).x < 0.0);
        t.check_invariants();
        t
    }

    #[test]
    fn partition_covers_every_leaf_exactly_once() {
        let t = amr_tree();
        let map = ShardMap::partition(&t, 4).unwrap();
        let mut seen = BTreeSet::new();
        for shard in 0..4u32 {
            for &leaf in map.owned(shard) {
                assert_eq!(map.owner(leaf).unwrap(), shard);
                assert!(seen.insert(leaf), "{leaf:?} owned twice");
            }
        }
        assert_eq!(seen.len(), t.leaves().len());
        assert_eq!(map.n_leaves(), t.leaves().len());
    }

    #[test]
    fn partition_is_balanced() {
        let t = amr_tree();
        let map = ShardMap::partition(&t, 3).unwrap();
        let counts: Vec<usize> = (0..3).map(|s| map.owned(s).len()).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced: {counts:?}");
    }

    #[test]
    fn zero_shards_and_unknown_leaf_error() {
        let t = amr_tree();
        assert!(ShardMap::partition(&t, 0).is_err());
        let map = ShardMap::partition(&t, 2).unwrap();
        // The root is refined, hence not a leaf.
        assert!(map.owner(MortonKey::root()).is_err());
    }

    #[test]
    fn halo_sources_match_neighbor_closure() {
        let t = amr_tree();
        for leaf in t.leaves() {
            let sources = ShardMap::halo_sources(&t, leaf);
            assert!(!sources.contains(&leaf));
            // Sorted and unique.
            for pair in sources.windows(2) {
                assert!(pair[0] < pair[1]);
            }
            // Every source is itself a leaf.
            for s in &sources {
                assert!(t.leaves().contains(s), "{s:?} is not a leaf");
            }
        }
    }

    #[test]
    fn push_plan_covers_every_cross_shard_source() {
        let t = amr_tree();
        let map = ShardMap::partition(&t, 4).unwrap();
        let plan = map.halo_push_plan(&t);
        // For every leaf, every cross-shard halo source appears in the
        // plan of the source's owner, addressed to the leaf's owner.
        for leaf in t.leaves() {
            let dst = map.owner(leaf).unwrap();
            for source in ShardMap::halo_sources(&t, leaf) {
                let src = map.owner(source).unwrap();
                if src != dst {
                    let scheduled = plan[src as usize]
                        .get(&dst)
                        .map(|keys| keys.contains(&source))
                        .unwrap_or(false);
                    assert!(scheduled, "{source:?} (shard {src}) missing for {leaf:?} (shard {dst})");
                }
            }
        }
        // And the plan never ships a leaf to its own shard.
        for (src, by_dst) in plan.iter().enumerate() {
            for (&dst, keys) in by_dst {
                assert_ne!(src as u32, dst);
                for key in keys {
                    assert_eq!(map.owner(*key).unwrap(), src as u32);
                }
            }
        }
    }

    #[test]
    fn single_shard_plan_is_empty() {
        let t = amr_tree();
        let map = ShardMap::partition(&t, 1).unwrap();
        let plan = map.halo_push_plan(&t);
        assert!(plan[0].is_empty());
    }
}
