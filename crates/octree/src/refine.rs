//! Refinement criteria, including the V1309 rule of §6 / Table 4.
//!
//! "For the level 14 run, both stars are refined down to 12 levels, with
//! the core of the accretor and donor refined to 13 and 14 levels
//! respectively. The 15, 16, and 17 level runs are successively refined
//! one more level in each refinement regime."
//!
//! [`BinaryRefine`] encodes that rule geometrically for a run targeting
//! level `L`: regions containing stellar material refine to `L-2`, the
//! accretor core to `L-1`, and the donor core to `L`; the common
//! envelope/atmosphere coarsens away from the stars with a per-level
//! radius growth factor, giving the multi-level halo of sub-grids around
//! the binary that Table 4 counts.

use crate::geometry::Domain;
use util::morton::MortonKey;
use util::vec3::Vec3;

/// Distance from point `p` to the axis-aligned box `[lo, hi]` (zero if
/// inside).
pub fn box_distance(p: Vec3, lo: Vec3, hi: Vec3) -> f64 {
    let dx = (lo.x - p.x).max(0.0).max(p.x - hi.x);
    let dy = (lo.y - p.y).max(0.0).max(p.y - hi.y);
    let dz = (lo.z - p.z).max(0.0).max(p.z - hi.z);
    (dx * dx + dy * dy + dz * dz).sqrt()
}

/// Geometric description of the binary used for refinement decisions.
#[derive(Debug, Clone, Copy)]
pub struct BinaryRefine {
    /// Accretor (primary) centre, code units.
    pub primary: Vec3,
    /// Donor (secondary) centre.
    pub secondary: Vec3,
    /// Radius of the primary's stellar material.
    pub r_primary: f64,
    /// Radius of the secondary's stellar material.
    pub r_secondary: f64,
    /// Radius of the accretor core.
    pub r_accretor_core: f64,
    /// Radius of the donor core.
    pub r_donor_core: f64,
    /// Radius growth per level of coarsening for the envelope halo
    /// (1 < f < 2: the envelope is resolved progressively coarser).
    pub envelope_growth: f64,
    /// Deepest level of the run ("level of refinement" in Table 4).
    pub target_level: u8,
}

impl BinaryRefine {
    /// The V1309 model of §6: M₁ = 1.54, M₂ = 0.17 M⊙, a = 6.37 R⊙,
    /// centre of mass at the origin. The radii here are *refinement*
    /// radii: the paper's density criterion refines only the denser
    /// stellar material, a region somewhat inside the full photospheric
    /// Roche lobes — calibrated so the Table 4 sub-grid counts land in
    /// the paper's range (≈1.5e6 nodes at level 17).
    pub fn v1309(target_level: u8) -> BinaryRefine {
        use util::units::v1309::{M_PRIMARY, M_SECONDARY, SEPARATION};
        let m_total = M_PRIMARY + M_SECONDARY;
        let x1 = -SEPARATION * M_SECONDARY / m_total;
        let x2 = SEPARATION * M_PRIMARY / m_total;
        // The density threshold of the paper's criterion tightens with
        // the run's target level, so the refined "stellar material"
        // region shrinks slightly for deeper runs: radius x 0.9 per
        // level beyond 14 (calibrated against Table 4's growth ratios
        // 2.0 / 3.9 / 5.2 / 6.7).
        let shrink = 0.9f64.powi(target_level.saturating_sub(14) as i32);
        BinaryRefine {
            primary: Vec3::new(x1, 0.0, 0.0),
            secondary: Vec3::new(x2, 0.0, 0.0),
            r_primary: 1.8 * shrink,
            r_secondary: 0.86 * shrink,
            r_accretor_core: 0.27 * shrink,
            r_donor_core: 0.16 * shrink,
            envelope_growth: 1.35,
            target_level,
        }
    }

    /// The deepest level this node's region must reach.
    fn required_level(&self, domain: &Domain, key: MortonKey) -> u8 {
        let lo = domain.node_origin(key);
        let hi = lo + Vec3::splat(domain.node_extent(key.level));
        let d1 = box_distance(self.primary, lo, hi);
        let d2 = box_distance(self.secondary, lo, hi);
        let star_level = self.target_level.saturating_sub(2);
        if d2 <= self.r_donor_core {
            return self.target_level;
        }
        if d1 <= self.r_accretor_core {
            return self.target_level.saturating_sub(1);
        }
        if d1 <= self.r_primary || d2 <= self.r_secondary {
            return star_level;
        }
        // Envelope halo: a node at level l (< star_level) still refines
        // if it is within the grown radius for depth star_level - l.
        for depth in 1..=star_level {
            let level = star_level - depth;
            let f = self.envelope_growth.powi(depth as i32);
            if d1 <= self.r_primary * f || d2 <= self.r_secondary * f {
                // Region must reach at least `level + 1`... i.e. nodes at
                // `level` refine; deeper nodes inside this radius refined
                // already by the tighter radii above.
                return level + 1;
            }
        }
        0
    }

    /// The criterion closure for [`crate::tree::Octree::refine_where`].
    pub fn should_refine(&self, domain: &Domain, key: MortonKey) -> bool {
        key.level < self.required_level(domain, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Octree;

    #[test]
    fn box_distance_cases() {
        let lo = Vec3::new(0.0, 0.0, 0.0);
        let hi = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(box_distance(Vec3::new(0.5, 0.5, 0.5), lo, hi), 0.0);
        assert_eq!(box_distance(Vec3::new(2.0, 0.5, 0.5), lo, hi), 1.0);
        let d = box_distance(Vec3::new(2.0, 2.0, 0.5), lo, hi);
        assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn v1309_positions_have_com_at_origin() {
        let r = BinaryRefine::v1309(8);
        use util::units::v1309::{M_PRIMARY, M_SECONDARY};
        let com = r.primary * M_PRIMARY + r.secondary * M_SECONDARY;
        assert!(com.norm() < 1e-12);
        let sep = (r.primary - r.secondary).norm();
        assert!((sep - 6.37).abs() < 1e-12);
    }

    #[test]
    fn refinement_reaches_target_level_at_donor_core() {
        let target = 8;
        let rule = BinaryRefine::v1309(target);
        let mut t = Octree::structure_only(Domain::v1309());
        t.refine_where(target, |d, k| rule.should_refine(d, k));
        t.check_invariants();
        assert_eq!(t.max_level(), target);
        // The deepest leaves must be near the donor core.
        let domain = t.domain();
        for k in t.leaves() {
            if k.level == target {
                let c = domain.node_center(k);
                let d = (c - rule.secondary).norm();
                assert!(
                    d < rule.r_donor_core + 2.0 * domain.node_extent(target - 1),
                    "level-{target} leaf at distance {d} from donor"
                );
            }
        }
    }

    #[test]
    fn subgrid_counts_grow_with_target_level() {
        let mut counts = Vec::new();
        for target in 6..=9u8 {
            let rule = BinaryRefine::v1309(target);
            let mut t = Octree::structure_only(Domain::v1309());
            t.refine_where(target, |d, k| rule.should_refine(d, k));
            counts.push(t.len());
        }
        for w in counts.windows(2) {
            assert!(w[1] > w[0], "counts must grow: {counts:?}");
        }
        // Growth ratio increases toward the volume-dominated regime,
        // mirroring Table 4's 2.0 -> 3.9 -> 5.2 -> 6.7 progression.
        let r_lo = counts[1] as f64 / counts[0] as f64;
        let r_hi = counts[3] as f64 / counts[2] as f64;
        assert!(r_hi > r_lo, "ratios should increase: {counts:?}");
    }

    #[test]
    fn envelope_refines_coarser_than_stars() {
        // Needs a target deep enough that the stars span multiple
        // sub-grids (node extent at the star level < star radius).
        let target = 11;
        let rule = BinaryRefine::v1309(target);
        let mut t = Octree::structure_only(Domain::v1309());
        t.refine_where(target, |d, k| rule.should_refine(d, k));
        let domain = t.domain();
        // A point in the outer envelope (outside both stars, within the
        // grown halo) must not be refined deeper than the star level.
        let p = Vec3::new(rule.secondary.x + rule.r_secondary * 3.0, 0.0, 0.0);
        let leaf = t
            .leaves()
            .into_iter()
            .find(|k| {
                let lo = domain.node_origin(*k);
                let hi = lo + Vec3::splat(domain.node_extent(k.level));
                box_distance(p, lo, hi) == 0.0
            })
            .expect("point must be covered");
        assert!(leaf.level <= target - 2, "envelope leaf at level {}", leaf.level);
        // And a point inside the donor core is at the full target level.
        let core = t
            .leaves()
            .into_iter()
            .find(|k| {
                let lo = domain.node_origin(*k);
                let hi = lo + Vec3::splat(domain.node_extent(k.level));
                box_distance(rule.secondary, lo, hi) == 0.0
            })
            .expect("core must be covered");
        assert_eq!(core.level, target);
    }
}
