//! Domain geometry: the cubic simulation box and per-level metrics.
//!
//! "The simulation domain is a cubic grid with edges 1.02 × 10³ R⊙ long"
//! (§6), centred on the origin of the rotating frame. An octree node at
//! level `l` covers `edge / 2^l` per side and contains `N_SUB³` cells of
//! size `edge / (N_SUB · 2^l)`.

use crate::subgrid::N_SUB;
use util::morton::MortonKey;
use util::vec3::Vec3;

/// The cubic simulation domain, centred at the origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Edge length of the cube (code units).
    pub edge: f64,
}

serde::impl_codec_struct!(Domain { edge });

impl Domain {
    pub fn new(edge: f64) -> Domain {
        assert!(edge > 0.0 && edge.is_finite(), "edge must be positive");
        Domain { edge }
    }

    /// The V1309 domain of §6: 1.02e3 R⊙.
    pub fn v1309() -> Domain {
        Domain::new(util::units::v1309::DOMAIN_EDGE)
    }

    /// Extent of one octree node at `level` (one side).
    #[inline]
    pub fn node_extent(&self, level: u8) -> f64 {
        self.edge / (1u64 << level) as f64
    }

    /// Cell size at `level`.
    #[inline]
    pub fn cell_dx(&self, level: u8) -> f64 {
        self.node_extent(level) / N_SUB as f64
    }

    /// Cell volume at `level`.
    #[inline]
    pub fn cell_volume(&self, level: u8) -> f64 {
        let dx = self.cell_dx(level);
        dx * dx * dx
    }

    /// Lower corner of the node identified by `key`.
    pub fn node_origin(&self, key: MortonKey) -> Vec3 {
        let (x, y, z) = key.coords();
        let ext = self.node_extent(key.level);
        let half = self.edge / 2.0;
        Vec3::new(
            x as f64 * ext - half,
            y as f64 * ext - half,
            z as f64 * ext - half,
        )
    }

    /// Geometric centre of the node identified by `key`.
    pub fn node_center(&self, key: MortonKey) -> Vec3 {
        let ext = self.node_extent(key.level);
        self.node_origin(key) + Vec3::splat(ext / 2.0)
    }

    /// Centre of cell `(i, j, k)` (interior-relative; ghost coordinates
    /// work too) within node `key`.
    pub fn cell_center(&self, key: MortonKey, i: isize, j: isize, k: isize) -> Vec3 {
        let dx = self.cell_dx(key.level);
        let o = self.node_origin(key);
        Vec3::new(
            o.x + (i as f64 + 0.5) * dx,
            o.y + (j as f64 + 0.5) * dx,
            o.z + (k as f64 + 0.5) * dx,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1309_cell_sizes_match_paper() {
        let d = Domain::v1309();
        // §6: 7.80e-3 R⊙ at level 14, 9.75e-4 R⊙ at level 17.
        let dx14 = d.cell_dx(14);
        assert!((dx14 - 7.80e-3).abs() / 7.80e-3 < 0.01, "dx14 = {dx14}");
        let dx17 = d.cell_dx(17);
        assert!((dx17 - 9.750e-4).abs() / 9.750e-4 < 0.01, "dx17 = {dx17}");
    }

    #[test]
    fn root_node_covers_domain() {
        let d = Domain::new(16.0);
        let root = MortonKey::root();
        assert_eq!(d.node_extent(0), 16.0);
        assert_eq!(d.node_origin(root), Vec3::new(-8.0, -8.0, -8.0));
        assert_eq!(d.node_center(root), Vec3::ZERO);
    }

    #[test]
    fn children_tile_the_parent() {
        let d = Domain::new(8.0);
        let parent = MortonKey::new(2, 1, 2, 3);
        let pc = d.node_center(parent);
        let ext = d.node_extent(3);
        let mut centers: Vec<Vec3> = (0..8).map(|o| d.node_center(parent.child(o))).collect();
        // Children centres are parent centre ± ext/2 in each axis.
        for c in &centers {
            assert!((c.x - pc.x).abs() - ext / 2.0 < 1e-12);
            assert!((c.y - pc.y).abs() - ext / 2.0 < 1e-12);
            assert!((c.z - pc.z).abs() - ext / 2.0 < 1e-12);
        }
        centers.dedup_by(|a, b| (*a - *b).norm() < 1e-12);
        assert_eq!(centers.len(), 8);
    }

    #[test]
    fn cell_centers_are_inside_node() {
        let d = Domain::new(4.0);
        let key = MortonKey::new(1, 0, 1, 0);
        let o = d.node_origin(key);
        let ext = d.node_extent(1);
        for i in 0..N_SUB as isize {
            let c = d.cell_center(key, i, 0, 0);
            assert!(c.x > o.x && c.x < o.x + ext);
        }
        // First and last cell centres are half a cell from the walls.
        let dx = d.cell_dx(1);
        assert!((d.cell_center(key, 0, 0, 0).x - (o.x + dx / 2.0)).abs() < 1e-12);
        let last = d.cell_center(key, (N_SUB - 1) as isize, 0, 0);
        assert!((last.x - (o.x + ext - dx / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn cell_volume_shrinks_8x_per_level() {
        let d = Domain::new(100.0);
        assert!((d.cell_volume(5) / d.cell_volume(6) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "edge must be positive")]
    fn invalid_domain_rejected() {
        let _ = Domain::new(-1.0);
    }
}
