//! The adaptive octree.
//!
//! Invariants maintained by every mutation (checked by
//! [`Octree::check_invariants`], exercised by property tests):
//!
//! * **Proper nesting** — every non-root node's parent exists and is
//!   marked refined; a refined node has exactly eight children.
//! * **2:1 balance** — the leaves containing any two adjacent regions
//!   differ by at most one level (across faces, edges and corners), so
//!   halo exchange only ever deals with one level of difference, as in
//!   Octo-Tiger.
//!
//! Interior (refined) nodes keep a sub-grid too: the FMM operates on
//! every level of the tree (§4.3), with interior grids filled by
//! conservative restriction from their children
//! ([`Octree::restrict_all`]).

use crate::geometry::Domain;
use crate::prolong::{prolong_octant, restrict_into_octant};
use crate::subgrid::SubGrid;
use std::collections::HashMap;
use util::morton::MortonKey;

/// One octree node.
#[derive(Debug, Clone)]
pub struct TreeNode {
    pub key: MortonKey,
    /// Whether this node has eight children.
    pub refined: bool,
    /// Evolved variables; `None` in structure-only trees (used for
    /// large-scale counting experiments like Table 4).
    pub grid: Option<SubGrid>,
}

/// What lies on the other side of a leaf's face/edge/corner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Neighbor {
    /// A leaf at the same level.
    SameLevel(MortonKey),
    /// A coarser leaf (one level up, by 2:1 balance).
    Coarser(MortonKey),
    /// A refined node; the listed children are the leaves adjacent to
    /// the shared face (one level down, by 2:1 balance).
    Finer(Vec<MortonKey>),
    /// Outside the simulation domain.
    Boundary,
}

/// The adaptive octree of sub-grids.
///
/// `Clone` deep-copies every node's sub-grid — the distributed driver
/// uses this to give each simulated locality its own mirror of the tree.
#[derive(Clone)]
pub struct Octree {
    domain: Domain,
    nodes: HashMap<MortonKey, TreeNode>,
    with_grids: bool,
}

/// The 26 direction offsets (faces, edges, corners).
pub const DIRECTIONS: [(i32, i32, i32); 26] = build_directions();

const fn build_directions() -> [(i32, i32, i32); 26] {
    let mut out = [(0, 0, 0); 26];
    let mut n = 0;
    let mut i = -1;
    while i <= 1 {
        let mut j = -1;
        while j <= 1 {
            let mut k = -1;
            while k <= 1 {
                if !(i == 0 && j == 0 && k == 0) {
                    out[n] = (i, j, k);
                    n += 1;
                }
                k += 1;
            }
            j += 1;
        }
        i += 1;
    }
    out
}

/// The 6 face directions only.
pub const FACES: [(i32, i32, i32); 6] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
];

impl Octree {
    /// A tree holding data: a single root leaf with a zeroed sub-grid.
    pub fn new(domain: Domain) -> Octree {
        let mut nodes = HashMap::new();
        nodes.insert(
            MortonKey::root(),
            TreeNode { key: MortonKey::root(), refined: false, grid: Some(SubGrid::new()) },
        );
        Octree { domain, nodes, with_grids: true }
    }

    /// A structure-only tree (no sub-grid allocation), for large
    /// refinement-counting experiments (Table 4 goes to 1.5M nodes).
    pub fn structure_only(domain: Domain) -> Octree {
        let mut nodes = HashMap::new();
        nodes.insert(
            MortonKey::root(),
            TreeNode { key: MortonKey::root(), refined: false, grid: None },
        );
        Octree { domain, nodes, with_grids: false }
    }

    /// The simulation domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Whether nodes carry sub-grid data.
    pub fn has_grids(&self) -> bool {
        self.with_grids
    }

    /// Total number of nodes (all levels).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a default-constructed tree with its root removed
    /// (cannot happen through the public API).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `key` exists in the tree.
    pub fn contains(&self, key: MortonKey) -> bool {
        self.nodes.contains_key(&key)
    }

    /// Borrow a node.
    pub fn node(&self, key: MortonKey) -> Option<&TreeNode> {
        self.nodes.get(&key)
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, key: MortonKey) -> Option<&mut TreeNode> {
        self.nodes.get_mut(&key)
    }

    /// Whether `key` is a leaf.
    pub fn is_leaf(&self, key: MortonKey) -> bool {
        self.nodes.get(&key).map(|n| !n.refined).unwrap_or(false)
    }

    /// All leaf keys, sorted in space-filling-curve order.
    pub fn leaves(&self) -> Vec<MortonKey> {
        let mut keys: Vec<MortonKey> = self
            .nodes
            .values()
            .filter(|n| !n.refined)
            .map(|n| n.key)
            .collect();
        keys.sort_by(|a, b| crate::sfc::curve_cmp(*a, *b));
        keys
    }

    /// Number of leaves (= "sub-grids" in the paper's Table 4 counting).
    pub fn leaf_count(&self) -> usize {
        self.nodes.values().filter(|n| !n.refined).count()
    }

    /// All node keys at `level`, unsorted.
    pub fn level_keys(&self, level: u8) -> Vec<MortonKey> {
        self.nodes
            .keys()
            .filter(|k| k.level == level)
            .copied()
            .collect()
    }

    /// Deepest refinement level present.
    pub fn max_level(&self) -> u8 {
        self.nodes.keys().map(|k| k.level).max().unwrap_or(0)
    }

    /// Refine a leaf into eight children (conservatively prolonging its
    /// sub-grid), recursively refining coarser neighbors first to keep
    /// the 2:1 balance.
    ///
    /// # Panics
    /// If `key` is not a leaf of this tree.
    pub fn refine(&mut self, key: MortonKey) {
        assert!(self.is_leaf(key), "refine target {key:?} is not a leaf");
        // 2:1 balance: every neighboring region at this node's level must
        // be covered by a leaf at level >= key.level - 1 *after* we
        // split, i.e. at level >= key.level before the split is usable
        // ... precisely: after splitting, children are at key.level + 1;
        // their neighbors must be leaves at >= key.level. So any
        // neighboring leaf coarser than key.level must be refined first.
        for dir in DIRECTIONS {
            if let Some(nk) = key.neighbor(dir.0, dir.1, dir.2) {
                if let Some(containing) = self.containing_leaf(nk) {
                    if containing.level + 1 < key.level + 1 && containing != key {
                        // containing.level < key.level: balance violation
                        // after split; refine the coarse neighbor first.
                        self.refine(containing);
                    }
                }
            }
        }
        let parent_grid = {
            let node = self.nodes.get_mut(&key).expect("leaf exists");
            node.refined = true;
            node.grid.clone()
        };
        for octant in 0..8u8 {
            let child_key = key.child(octant);
            let grid = match (&parent_grid, self.with_grids) {
                (Some(pg), true) => Some(prolong_octant(pg, octant)),
                _ => None,
            };
            self.nodes
                .insert(child_key, TreeNode { key: child_key, refined: false, grid });
        }
    }

    /// Coarsen: remove the eight (leaf) children of `key`, restricting
    /// their data into it.
    ///
    /// # Panics
    /// If `key` is not refined or any child is itself refined.
    pub fn coarsen(&mut self, key: MortonKey) {
        let node = self.nodes.get(&key).expect("node must exist");
        assert!(node.refined, "coarsen target must be refined");
        for octant in 0..8u8 {
            assert!(
                self.is_leaf(key.child(octant)),
                "cannot coarsen {key:?}: child {octant} is refined"
            );
        }
        // 2:1 balance: no neighboring leaf may be finer than the new
        // leaf's children would allow, i.e. all neighboring regions must
        // be covered by leaves at level <= key.level + 1.
        for dir in DIRECTIONS {
            if let Some(nk) = key.neighbor(dir.0, dir.1, dir.2) {
                if let Some(n) = self.nodes.get(&nk) {
                    if n.refined {
                        for octant in 0..8u8 {
                            let gc = nk.child(octant);
                            assert!(
                                self.is_leaf(gc),
                                "coarsening {key:?} would break 2:1 balance with {gc:?}"
                            );
                        }
                    }
                }
            }
        }
        let mut parent_grid = if self.with_grids { Some(SubGrid::new()) } else { None };
        for octant in 0..8u8 {
            let child = self.nodes.remove(&key.child(octant)).expect("child exists");
            if let (Some(pg), Some(cg)) = (parent_grid.as_mut(), child.grid.as_ref()) {
                restrict_into_octant(cg, pg, octant);
            }
        }
        let node = self.nodes.get_mut(&key).expect("node must exist");
        node.refined = false;
        if self.with_grids {
            node.grid = parent_grid;
        }
    }

    /// The leaf whose region contains the region of `key` (which need
    /// not exist in the tree). `None` only if the tree somehow lacks a
    /// root.
    pub fn containing_leaf(&self, key: MortonKey) -> Option<MortonKey> {
        let mut cur = key;
        loop {
            if let Some(node) = self.nodes.get(&cur) {
                if !node.refined {
                    return Some(cur);
                }
                // `cur` exists and is refined: the original key's region
                // is covered by finer leaves; descend is impossible
                // (key's own level was too coarse). This happens when
                // `key` itself exists and is refined: its region has no
                // single containing leaf. Return None.
                return None;
            }
            cur = cur.parent()?;
        }
    }

    /// Classify what lies in direction `dir` of leaf `key`.
    pub fn neighbor(&self, key: MortonKey, dir: (i32, i32, i32)) -> Neighbor {
        let Some(nk) = key.neighbor(dir.0, dir.1, dir.2) else {
            return Neighbor::Boundary;
        };
        if let Some(node) = self.nodes.get(&nk) {
            if !node.refined {
                return Neighbor::SameLevel(nk);
            }
            // Finer: collect the children of nk adjacent to `key`
            // (those on the face/edge/corner towards -dir).
            let mut adjacent = Vec::new();
            for octant in 0..8u8 {
                let ox = (octant & 1) as i32;
                let oy = ((octant >> 1) & 1) as i32;
                let oz = ((octant >> 2) & 1) as i32;
                let near_x = dir.0 == 0 || (dir.0 == 1 && ox == 0) || (dir.0 == -1 && ox == 1);
                let near_y = dir.1 == 0 || (dir.1 == 1 && oy == 0) || (dir.1 == -1 && oy == 1);
                let near_z = dir.2 == 0 || (dir.2 == 1 && oz == 0) || (dir.2 == -1 && oz == 1);
                if near_x && near_y && near_z {
                    adjacent.push(nk.child(octant));
                }
            }
            return Neighbor::Finer(adjacent);
        }
        match self.containing_leaf(nk) {
            Some(c) if c.level < key.level => Neighbor::Coarser(c),
            Some(c) => Neighbor::SameLevel(c),
            None => Neighbor::Boundary,
        }
    }

    /// Refine every leaf for which `criterion` holds, up to `max_level`,
    /// sweeping until a fixed point (new children may satisfy the
    /// criterion too).
    pub fn refine_where(&mut self, max_level: u8, criterion: impl Fn(&Domain, MortonKey) -> bool) {
        loop {
            let to_refine: Vec<MortonKey> = self
                .leaves()
                .into_iter()
                .filter(|k| k.level < max_level && criterion(&self.domain, *k))
                .collect();
            if to_refine.is_empty() {
                return;
            }
            for key in to_refine {
                // Balance enforcement may have already refined it.
                if self.is_leaf(key) {
                    self.refine(key);
                }
            }
        }
    }

    /// Fill every refined node's grid by conservative restriction from
    /// its children, deepest levels first (so data propagates to the
    /// root). Leaves are untouched.
    pub fn restrict_all(&mut self) {
        assert!(self.with_grids, "restrict_all needs grid data");
        let mut levels: Vec<u8> = self.nodes.keys().map(|k| k.level).collect();
        levels.sort_unstable();
        levels.dedup();
        for &level in levels.iter().rev() {
            let refined_keys: Vec<MortonKey> = self
                .nodes
                .values()
                .filter(|n| n.key.level == level && n.refined)
                .map(|n| n.key)
                .collect();
            for key in refined_keys {
                let mut acc = SubGrid::new();
                for octant in 0..8u8 {
                    let child = self
                        .nodes
                        .get(&key.child(octant))
                        .expect("proper nesting: child exists");
                    let cg = child.grid.as_ref().expect("grids present");
                    restrict_into_octant(cg, &mut acc, octant);
                }
                self.nodes.get_mut(&key).expect("node exists").grid = Some(acc);
            }
        }
    }

    /// Verify proper nesting, child completeness, and 2:1 balance.
    ///
    /// # Panics
    /// With a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert!(
            self.nodes.contains_key(&MortonKey::root()),
            "tree must contain the root"
        );
        for node in self.nodes.values() {
            if let Some(parent) = node.key.parent() {
                let p = self
                    .nodes
                    .get(&parent)
                    .unwrap_or_else(|| panic!("orphan node {:?}", node.key));
                assert!(p.refined, "parent of {:?} is not refined", node.key);
            }
            if node.refined {
                for octant in 0..8u8 {
                    assert!(
                        self.nodes.contains_key(&node.key.child(octant)),
                        "refined node {:?} missing child {octant}",
                        node.key
                    );
                }
            }
            if self.with_grids && !node.refined {
                assert!(node.grid.is_some(), "leaf {:?} missing grid", node.key);
            }
        }
        // 2:1 balance over all 26 directions.
        for node in self.nodes.values() {
            if node.refined {
                continue;
            }
            let key = node.key;
            for dir in DIRECTIONS {
                if let Some(nk) = key.neighbor(dir.0, dir.1, dir.2) {
                    if let Some(c) = self.containing_leaf(nk) {
                        assert!(
                            (c.level as i16 - key.level as i16).abs() <= 1,
                            "2:1 balance violated between {key:?} and {c:?}"
                        );
                    }
                    // containing_leaf = None means the neighbor region is
                    // refined finer than nk — check its children are not
                    // more than one level deeper via the Finer lookup.
                    if let Neighbor::Finer(children) = self.neighbor(key, dir) {
                        for ck in children {
                            assert!(
                                self.contains(ck),
                                "finer neighbor {ck:?} of {key:?} missing"
                            );
                            assert!(
                                self.is_leaf(ck),
                                "2:1 balance violated: {ck:?} (neighbor of {key:?}) is refined"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Count of leaves per level, for Table 4 style reporting.
    pub fn leaves_per_level(&self) -> Vec<(u8, usize)> {
        let mut counts: HashMap<u8, usize> = HashMap::new();
        for n in self.nodes.values() {
            if !n.refined {
                *counts.entry(n.key.level).or_insert(0) += 1;
            }
        }
        let mut v: Vec<(u8, usize)> = counts.into_iter().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgrid::Field;

    fn small_domain() -> Domain {
        Domain::new(16.0)
    }

    #[test]
    fn fresh_tree_is_single_root_leaf() {
        let t = Octree::new(small_domain());
        assert_eq!(t.len(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert!(t.is_leaf(MortonKey::root()));
        t.check_invariants();
    }

    #[test]
    fn refine_creates_eight_children() {
        let mut t = Octree::new(small_domain());
        t.refine(MortonKey::root());
        assert_eq!(t.len(), 9);
        assert_eq!(t.leaf_count(), 8);
        assert!(!t.is_leaf(MortonKey::root()));
        t.check_invariants();
    }

    #[test]
    fn refinement_conserves_field_totals() {
        let mut t = Octree::new(small_domain());
        {
            let g = t.node_mut(MortonKey::root()).unwrap().grid.as_mut().unwrap();
            for (idx, (i, j, k)) in g.indexer().interior().enumerate() {
                g.set(Field::Rho, i, j, k, 1.0 + (idx % 17) as f64 * 0.25);
            }
        }
        let mass_before = t
            .node(MortonKey::root())
            .unwrap()
            .grid
            .as_ref()
            .unwrap()
            .interior_sum(Field::Rho)
            * t.domain().cell_volume(0);
        t.refine(MortonKey::root());
        let mass_after: f64 = t
            .leaves()
            .iter()
            .map(|k| {
                t.node(*k).unwrap().grid.as_ref().unwrap().interior_sum(Field::Rho)
                    * t.domain().cell_volume(k.level)
            })
            .sum();
        assert!(
            (mass_after - mass_before).abs() < 1e-12 * mass_before.abs(),
            "prolongation must conserve mass: {mass_before} -> {mass_after}"
        );
    }

    #[test]
    fn coarsen_restores_leaf_and_conserves() {
        let mut t = Octree::new(small_domain());
        {
            let g = t.node_mut(MortonKey::root()).unwrap().grid.as_mut().unwrap();
            for (idx, (i, j, k)) in g.indexer().interior().enumerate() {
                g.set(Field::Egas, i, j, k, (idx % 5) as f64 + 0.5);
            }
        }
        let before = t
            .node(MortonKey::root())
            .unwrap()
            .grid
            .as_ref()
            .unwrap()
            .interior_sum(Field::Egas);
        t.refine(MortonKey::root());
        t.coarsen(MortonKey::root());
        assert_eq!(t.len(), 1);
        let after = t
            .node(MortonKey::root())
            .unwrap()
            .grid
            .as_ref()
            .unwrap()
            .interior_sum(Field::Egas);
        assert!((after - before).abs() < 1e-12 * before.abs());
        t.check_invariants();
    }

    #[test]
    fn corner_path_needs_no_balance_refinement() {
        // A strict corner path stays inside one sibling subtree at every
        // level, so 2:1 balance never triggers: exactly 1 + 4*8 nodes.
        let mut t = Octree::new(small_domain());
        let mut key = MortonKey::root();
        for _ in 0..4 {
            t.refine(key);
            key = key.child(0);
        }
        t.check_invariants();
        assert_eq!(t.len(), 33);
    }

    #[test]
    fn deep_refinement_keeps_two_to_one_balance() {
        // Refine a path hugging the domain centre: its neighbors fall in
        // other subtrees, so balance must force extra refinement.
        let mut t = Octree::new(small_domain());
        t.refine(MortonKey::root());
        let mut key = MortonKey::root().child(7); // upper corner at centre
        for _ in 0..3 {
            t.refine(key);
            key = key.child(0); // low corner: stays at the domain centre
        }
        t.check_invariants();
        // The naked path would be 1 + 8 + 3*8 = 33 nodes; balance with
        // the other seven level-1 subtrees forces many more.
        assert!(t.len() > 40, "balance must refine neighbors, len = {}", t.len());
    }

    #[test]
    fn neighbor_classification() {
        let mut t = Octree::new(small_domain());
        t.refine(MortonKey::root());
        let k0 = MortonKey::new(1, 0, 0, 0);
        // +x neighbor is the sibling at same level.
        assert_eq!(
            t.neighbor(k0, (1, 0, 0)),
            Neighbor::SameLevel(MortonKey::new(1, 1, 0, 0))
        );
        // -x is the domain boundary.
        assert_eq!(t.neighbor(k0, (-1, 0, 0)), Neighbor::Boundary);
        // Refine the +x sibling: now it is finer, with 4 adjacent children.
        t.refine(MortonKey::new(1, 1, 0, 0));
        match t.neighbor(k0, (1, 0, 0)) {
            Neighbor::Finer(children) => {
                assert_eq!(children.len(), 4);
                // All adjacent children have x-coordinate at the low face
                // of the refined node (x = 2 at level 2).
                for c in children {
                    assert_eq!(c.coords().0, 2);
                }
            }
            other => panic!("expected Finer, got {other:?}"),
        }
        // From a child of the refined node, looking back -x: coarser.
        let fine = MortonKey::new(2, 2, 0, 0);
        assert_eq!(t.neighbor(fine, (-1, 0, 0)), Neighbor::Coarser(k0));
        t.check_invariants();
    }

    #[test]
    fn refine_where_reaches_fixed_point() {
        // Refine every node whose box touches a ball around the centre.
        let ball = 3.0;
        let touches = |d: &Domain, k: MortonKey| {
            let c = d.node_center(k);
            let half = d.node_extent(k.level) / 2.0;
            // Box touches ball if centre distance < ball + half-diagonal.
            c.norm() < ball + half * 3f64.sqrt()
        };
        let mut t = Octree::new(small_domain());
        t.refine_where(3, touches);
        t.check_invariants();
        assert_eq!(t.max_level(), 3);
        // Every leaf at max level is near the centre.
        for k in t.leaves() {
            if k.level == 3 {
                assert!(t.domain().node_center(k).norm() < ball + 2.0 * t.domain().node_extent(2));
            }
        }
    }

    #[test]
    fn structure_only_tree_counts_without_allocating() {
        let mut t = Octree::structure_only(small_domain());
        t.refine_where(5, |d, k| {
            let c = d.node_center(k);
            let half = d.node_extent(k.level) / 2.0;
            c.norm() < 2.0 + half * 3f64.sqrt()
        });
        t.check_invariants();
        assert!(t.leaf_count() > 64);
        assert!(t.node(MortonKey::root()).unwrap().grid.is_none());
    }

    #[test]
    fn restrict_all_propagates_to_root() {
        let mut t = Octree::new(small_domain());
        t.refine(MortonKey::root());
        t.refine(MortonKey::new(1, 0, 0, 0));
        // Paint all leaves with constant density 2.0.
        for k in t.leaves() {
            let g = t.node_mut(k).unwrap().grid.as_mut().unwrap();
            g.field_mut(Field::Rho).fill(2.0);
        }
        t.restrict_all();
        let root = t.node(MortonKey::root()).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in root.indexer().interior() {
            assert!((root.at(Field::Rho, i, j, k) - 2.0).abs() < 1e-14);
        }
    }

    #[test]
    fn leaves_per_level_sums_to_leaf_count() {
        let mut t = Octree::new(small_domain());
        t.refine_where(3, |d, k| d.node_center(k).x < 0.0);
        let per: usize = t.leaves_per_level().iter().map(|(_, c)| c).sum();
        assert_eq!(per, t.leaf_count());
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn refining_refined_node_panics() {
        let mut t = Octree::new(small_domain());
        t.refine(MortonKey::root());
        t.refine(MortonKey::root());
    }
}
