//! Space-filling-curve distribution and the halo-communication census.
//!
//! "These octree nodes are distributed onto the compute nodes using a
//! space filling curve" (§4.2). Leaves sorted along the Morton curve are
//! split into contiguous, load-balanced chunks, one per locality.
//! [`halo_census`] then counts, for a given assignment, the halo
//! messages and bytes each locality exchanges per timestep — the
//! workload description that drives the Figure 2/3 scaling model
//! (communication grows with the partition surface, computation with
//! its volume).

use crate::subgrid::{SubGrid, FIELD_COUNT};
use crate::tree::{Neighbor, Octree, DIRECTIONS};
use std::cmp::Ordering;
use std::collections::HashMap;
use util::morton::MortonKey;

/// Compare two keys (of possibly different levels) along the space
/// filling curve: codes are aligned to a common depth; ancestors sort
/// before their descendants.
pub fn curve_cmp(a: MortonKey, b: MortonKey) -> Ordering {
    let depth = a.level.max(b.level);
    let ca = (a.code as u128) << (3 * (depth - a.level) as u32);
    let cb = (b.code as u128) << (3 * (depth - b.level) as u32);
    ca.cmp(&cb).then(a.level.cmp(&b.level))
}

/// Assign `leaves` (must be in curve order) to `n_parts` contiguous,
/// count-balanced chunks. Returns the partition index per leaf.
pub fn partition(leaves: &[MortonKey], n_parts: usize) -> HashMap<MortonKey, usize> {
    assert!(n_parts > 0, "need at least one partition");
    let n = leaves.len();
    let mut out = HashMap::with_capacity(n);
    for (i, &key) in leaves.iter().enumerate() {
        // Balanced contiguous chunks: leaf i goes to floor(i*P/n).
        let part = if n == 0 { 0 } else { i * n_parts / n };
        out.insert(key, part.min(n_parts - 1));
    }
    out
}

/// Communication census for one timestep's halo exchange.
#[derive(Debug, Clone, Default)]
pub struct CommCensus {
    /// Messages whose sender and receiver are the same locality.
    pub local_msgs: u64,
    /// Messages crossing locality boundaries.
    pub remote_msgs: u64,
    /// Total bytes crossing locality boundaries.
    pub remote_bytes: u64,
    /// Per-locality (received remote messages, received remote bytes,
    /// resident sub-grids).
    pub per_locality: Vec<LocalityLoad>,
}

/// Load description of one locality.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalityLoad {
    pub subgrids: u64,
    pub recv_msgs: u64,
    pub recv_bytes: u64,
    pub send_msgs: u64,
    pub send_bytes: u64,
}

impl CommCensus {
    /// The busiest locality by received messages.
    pub fn max_recv_msgs(&self) -> u64 {
        self.per_locality.iter().map(|l| l.recv_msgs).max().unwrap_or(0)
    }

    /// The largest number of sub-grids on any locality.
    pub fn max_subgrids(&self) -> u64 {
        self.per_locality.iter().map(|l| l.subgrids).max().unwrap_or(0)
    }
}

/// Count the halo messages a timestep requires under `assignment`.
/// Every (leaf, direction) pair with an in-domain neighbor produces one
/// message per sending sub-grid (finer neighbors send one message per
/// adjacent child, as in Octo-Tiger's per-node channels).
pub fn halo_census(
    tree: &Octree,
    assignment: &HashMap<MortonKey, usize>,
    n_parts: usize,
) -> CommCensus {
    let mut census = CommCensus {
        per_locality: vec![LocalityLoad::default(); n_parts],
        ..Default::default()
    };
    for &part in assignment.values() {
        census.per_locality[part].subgrids += 1;
    }
    let halo_bytes = |dir: (i32, i32, i32)| -> u64 {
        (SubGrid::halo_len(dir) * FIELD_COUNT * std::mem::size_of::<f64>()) as u64
    };
    for leaf in tree.leaves() {
        let dst = *assignment.get(&leaf).expect("every leaf must be assigned");
        for dir in DIRECTIONS {
            let senders: Vec<MortonKey> = match tree.neighbor(leaf, dir) {
                Neighbor::Boundary => continue,
                Neighbor::SameLevel(k) | Neighbor::Coarser(k) => vec![k],
                Neighbor::Finer(children) => children,
            };
            for sender in senders {
                let src = *assignment.get(&sender).expect("sender must be assigned");
                let bytes = halo_bytes(dir);
                if src == dst {
                    census.local_msgs += 1;
                } else {
                    census.remote_msgs += 1;
                    census.remote_bytes += bytes;
                    census.per_locality[dst].recv_msgs += 1;
                    census.per_locality[dst].recv_bytes += bytes;
                    census.per_locality[src].send_msgs += 1;
                    census.per_locality[src].send_bytes += bytes;
                }
            }
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Domain;

    fn refined_tree(levels: u8) -> Octree {
        let mut t = Octree::structure_only(Domain::new(16.0));
        t.refine_where(levels, |d, k| d.node_center(k).norm() < 6.0);
        t
    }

    #[test]
    fn curve_cmp_orders_siblings() {
        let p = MortonKey::new(2, 1, 1, 1);
        for o in 0..7u8 {
            assert_eq!(curve_cmp(p.child(o), p.child(o + 1)), Ordering::Less);
        }
    }

    #[test]
    fn curve_cmp_ancestor_before_descendant() {
        let p = MortonKey::new(3, 2, 5, 1);
        assert_eq!(curve_cmp(p, p.child(0)), Ordering::Less);
        assert_eq!(curve_cmp(p.child(0), p), Ordering::Greater);
        assert_eq!(curve_cmp(p, p), Ordering::Equal);
    }

    #[test]
    fn curve_cmp_descendants_stay_within_parent_range() {
        // All descendants of parent's child 3 sort before child 4.
        let p = MortonKey::new(1, 0, 1, 0);
        let c3 = p.child(3);
        let c4 = p.child(4);
        for o in 0..8 {
            assert_eq!(curve_cmp(c3.child(o), c4), Ordering::Less);
            assert_eq!(curve_cmp(c4.child(o), c3), Ordering::Greater);
        }
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let t = refined_tree(3);
        let leaves = t.leaves();
        let n_parts = 7;
        let asg = partition(&leaves, n_parts);
        // Contiguity: partition indices are non-decreasing in curve order.
        let mut last = 0;
        for leaf in &leaves {
            let p = asg[leaf];
            assert!(p >= last, "partition must be monotone along the curve");
            last = p;
        }
        // Balance: counts differ by at most 1.
        let mut counts = vec![0usize; n_parts];
        for p in asg.values() {
            counts[*p] += 1;
        }
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(mx - mn <= 1, "counts {counts:?} not balanced");
    }

    #[test]
    fn single_partition_has_no_remote_traffic() {
        let t = refined_tree(2);
        let leaves = t.leaves();
        let asg = partition(&leaves, 1);
        let census = halo_census(&t, &asg, 1);
        assert_eq!(census.remote_msgs, 0);
        assert_eq!(census.remote_bytes, 0);
        assert!(census.local_msgs > 0);
        assert_eq!(census.per_locality[0].subgrids, leaves.len() as u64);
    }

    #[test]
    fn more_partitions_mean_more_remote_messages() {
        let t = refined_tree(3);
        let leaves = t.leaves();
        let total_msgs: u64;
        {
            let asg = partition(&leaves, 1);
            let c = halo_census(&t, &asg, 1);
            total_msgs = c.local_msgs;
        }
        let mut last_remote = 0;
        for n_parts in [2, 4, 8, 16] {
            let asg = partition(&leaves, n_parts);
            let c = halo_census(&t, &asg, n_parts);
            // Total message count is partition-invariant.
            assert_eq!(c.local_msgs + c.remote_msgs, total_msgs);
            assert!(
                c.remote_msgs >= last_remote,
                "remote messages should grow with partitions"
            );
            last_remote = c.remote_msgs;
        }
    }

    #[test]
    fn send_and_recv_totals_agree() {
        let t = refined_tree(3);
        let leaves = t.leaves();
        let n_parts = 5;
        let asg = partition(&leaves, n_parts);
        let c = halo_census(&t, &asg, n_parts);
        let sent: u64 = c.per_locality.iter().map(|l| l.send_msgs).sum();
        let recvd: u64 = c.per_locality.iter().map(|l| l.recv_msgs).sum();
        assert_eq!(sent, c.remote_msgs);
        assert_eq!(recvd, c.remote_msgs);
        let sent_b: u64 = c.per_locality.iter().map(|l| l.send_bytes).sum();
        assert_eq!(sent_b, c.remote_bytes);
        assert!(c.max_recv_msgs() > 0);
        assert!(c.max_subgrids() > 0);
    }
}
