//! The N³ sub-grid of evolved variables.
//!
//! Octo-Tiger evolves mass density, momentum, total gas energy, an
//! entropy tracer (for the dual-energy formalism of §4.2), three spin
//! angular momentum variables (the Després–Labourasse reconstruction
//! degree of freedom), and five passive scalars — "initialized to the
//! mass density of the accretor core, the accretor envelope, the donor
//! core, the donor envelope, and the common atmosphere".
//!
//! Storage is struct-of-arrays, the layout that made the stencil FMM
//! kernels 1.9–2.2× faster than array-of-structs (§4.3); every solver in
//! this workspace iterates field-major.

use util::indexing::GridIndexer;

/// Interior cells per dimension ("with N = 8 for all runs in this
/// paper").
pub const N_SUB: usize = 8;

/// Ghost cells per side. The flux sweep needs reconstructed states in
/// the first ghost cell, whose PPM stencil reaches two cells further —
/// three ghosts total, as in Octo-Tiger (`H_BW = 3`).
pub const N_GHOST: usize = 3;

/// The evolved variables of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Field {
    /// Mass density ρ.
    Rho = 0,
    /// Momentum density ρuₓ.
    Sx = 1,
    /// Momentum density ρu_y.
    Sy = 2,
    /// Momentum density ρu_z.
    Sz = 3,
    /// Total gas energy density E (kinetic + internal).
    Egas = 4,
    /// Entropy tracer τ = (ρε)^(1/γ) of the dual-energy formalism.
    Tau = 5,
    /// Spin angular momentum lₓ (angular-momentum-conserving PPM DOF).
    Lx = 6,
    /// Spin angular momentum l_y.
    Ly = 7,
    /// Spin angular momentum l_z.
    Lz = 8,
    /// Passive scalar: accretor core fraction.
    AccretorCore = 9,
    /// Passive scalar: accretor envelope fraction.
    AccretorEnv = 10,
    /// Passive scalar: donor core fraction.
    DonorCore = 11,
    /// Passive scalar: donor envelope fraction.
    DonorEnv = 12,
    /// Passive scalar: common atmosphere fraction.
    Atmosphere = 13,
}

/// Number of evolved fields.
pub const FIELD_COUNT: usize = 14;

/// All fields, in storage order.
pub const ALL_FIELDS: [Field; FIELD_COUNT] = [
    Field::Rho,
    Field::Sx,
    Field::Sy,
    Field::Sz,
    Field::Egas,
    Field::Tau,
    Field::Lx,
    Field::Ly,
    Field::Lz,
    Field::AccretorCore,
    Field::AccretorEnv,
    Field::DonorCore,
    Field::DonorEnv,
    Field::Atmosphere,
];

/// The five passive scalars, in order.
pub const PASSIVE_SCALARS: [Field; 5] = [
    Field::AccretorCore,
    Field::AccretorEnv,
    Field::DonorCore,
    Field::DonorEnv,
    Field::Atmosphere,
];

impl Field {
    /// Storage index of this field.
    #[inline]
    pub const fn idx(self) -> usize {
        self as usize
    }

    /// Whether this field is advected like a mass density (passive
    /// scalars use "the same continuity equation that describes the
    /// evolution of the mass density").
    pub fn is_density_like(self) -> bool {
        matches!(
            self,
            Field::Rho
                | Field::AccretorCore
                | Field::AccretorEnv
                | Field::DonorCore
                | Field::DonorEnv
                | Field::Atmosphere
        )
    }
}

/// One octree node's worth of evolved variables: `FIELD_COUNT` scalar
/// fields on an `N_SUB³` interior with `N_GHOST` ghost layers,
/// struct-of-arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct SubGrid {
    data: Vec<f64>,
    indexer: GridIndexer,
}

fn default_indexer() -> GridIndexer {
    GridIndexer::new(N_SUB, N_GHOST)
}

serde::impl_codec_enum_unit!(Field {
    Rho, Sx, Sy, Sz, Egas, Tau, Lx, Ly, Lz,
    AccretorCore, AccretorEnv, DonorCore, DonorEnv, Atmosphere,
});

// Only the cell data travels; the indexer is geometry every locality
// can rebuild (the old derive marked it `#[serde(skip)]`).
impl serde::Serialize for SubGrid {
    fn serialize(&self, w: &mut serde::Writer) {
        serde::Serialize::serialize(&self.data, w);
    }
}

impl<'de> serde::Deserialize<'de> for SubGrid {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::CodecError> {
        let data = <Vec<f64> as serde::Deserialize>::deserialize(r)?;
        let indexer = default_indexer();
        if data.len() != FIELD_COUNT * indexer.len() {
            return Err(serde::CodecError::Invalid(format!(
                "sub-grid payload has {} cells, expected {}",
                data.len(),
                FIELD_COUNT * indexer.len()
            )));
        }
        Ok(SubGrid { data, indexer })
    }
}

impl Default for SubGrid {
    fn default() -> Self {
        Self::new()
    }
}

impl SubGrid {
    /// A zero-filled sub-grid.
    pub fn new() -> SubGrid {
        let indexer = default_indexer();
        SubGrid { data: vec![0.0; FIELD_COUNT * indexer.len()], indexer }
    }

    /// The index helper (shared by solver kernels).
    #[inline]
    pub fn indexer(&self) -> GridIndexer {
        self.indexer
    }

    /// Immutable view of one field including ghosts.
    #[inline]
    pub fn field(&self, f: Field) -> &[f64] {
        let n = self.indexer.len();
        &self.data[f.idx() * n..(f.idx() + 1) * n]
    }

    /// Mutable view of one field including ghosts.
    #[inline]
    pub fn field_mut(&mut self, f: Field) -> &mut [f64] {
        let n = self.indexer.len();
        &mut self.data[f.idx() * n..(f.idx() + 1) * n]
    }

    /// Two distinct mutable field views (for flux updates that read one
    /// field while writing another).
    pub fn fields_mut2(&mut self, a: Field, b: Field) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "fields must differ");
        let n = self.indexer.len();
        let (lo, hi) = if a.idx() < b.idx() { (a, b) } else { (b, a) };
        let (first, rest) = self.data.split_at_mut(hi.idx() * n);
        let lo_slice = &mut first[lo.idx() * n..(lo.idx() + 1) * n];
        let hi_slice = &mut rest[..n];
        if a.idx() < b.idx() {
            (lo_slice, hi_slice)
        } else {
            (hi_slice, lo_slice)
        }
    }

    /// Value at interior-relative coordinates (ghosts addressable).
    #[inline]
    pub fn at(&self, f: Field, i: isize, j: isize, k: isize) -> f64 {
        self.field(f)[self.indexer.idx(i, j, k)]
    }

    /// Set the value at interior-relative coordinates.
    #[inline]
    pub fn set(&mut self, f: Field, i: isize, j: isize, k: isize, v: f64) {
        let idx = self.indexer.idx(i, j, k);
        self.field_mut(f)[idx] = v;
    }

    /// Add to the value at interior-relative coordinates.
    #[inline]
    pub fn add(&mut self, f: Field, i: isize, j: isize, k: isize, v: f64) {
        let idx = self.indexer.idx(i, j, k);
        self.field_mut(f)[idx] += v;
    }

    /// Sum of a field over the interior (× cell volume gives the
    /// conserved total).
    pub fn interior_sum(&self, f: Field) -> f64 {
        let data = self.field(f);
        self.indexer
            .interior()
            .map(|(i, j, k)| data[self.indexer.idx(i, j, k)])
            .sum()
    }

    /// Extract the boundary slab of interior cells that a neighbor in
    /// direction `dir` (each component in {-1, 0, 1}, not all zero)
    /// needs for its ghost layer: `N_GHOST` cells deep on each axis
    /// where `dir` is nonzero, the full interior extent where zero.
    /// Values are returned in row-major order of the slab box.
    pub fn extract_halo(&self, f: Field, dir: (i32, i32, i32)) -> Vec<f64> {
        let (rx, ry, rz) = (
            axis_range_src(dir.0),
            axis_range_src(dir.1),
            axis_range_src(dir.2),
        );
        let mut out =
            Vec::with_capacity(((rx.1 - rx.0) * (ry.1 - ry.0) * (rz.1 - rz.0)) as usize);
        let data = self.field(f);
        for i in rx.0..rx.1 {
            for j in ry.0..ry.1 {
                for k in rz.0..rz.1 {
                    out.push(data[self.indexer.idx(i, j, k)]);
                }
            }
        }
        out
    }

    /// Install a halo slab previously produced by [`SubGrid::extract_halo`]
    /// on the neighbor in direction `dir` (as seen from *this* grid: the
    /// data fills this grid's ghost cells on the `dir` side).
    pub fn apply_halo(&mut self, f: Field, dir: (i32, i32, i32), data: &[f64]) {
        let (rx, ry, rz) = (
            axis_range_dst(dir.0),
            axis_range_dst(dir.1),
            axis_range_dst(dir.2),
        );
        let expect = ((rx.1 - rx.0) * (ry.1 - ry.0) * (rz.1 - rz.0)) as usize;
        assert_eq!(data.len(), expect, "halo slab size mismatch for dir {dir:?}");
        let indexer = self.indexer;
        let field = self.field_mut(f);
        let mut src = data.iter();
        for i in rx.0..rx.1 {
            for j in ry.0..ry.1 {
                for k in rz.0..rz.1 {
                    field[indexer.idx(i, j, k)] = *src.next().expect("checked length");
                }
            }
        }
    }

    /// Number of f64 values a halo slab in direction `dir` carries.
    pub fn halo_len(dir: (i32, i32, i32)) -> usize {
        let ext = |d: i32| if d == 0 { N_SUB } else { N_GHOST };
        ext(dir.0) * ext(dir.1) * ext(dir.2)
    }

    /// All interior cells of every field, field-major then row-major —
    /// the payload of a distributed grid-sync message. The fixed
    /// iteration order makes the round trip through
    /// [`SubGrid::apply_interior`] bit-exact and deterministic.
    pub fn extract_interior(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(FIELD_COUNT * self.indexer.interior_len());
        for f in ALL_FIELDS {
            let data = self.field(f);
            for (i, j, k) in self.indexer.interior() {
                out.push(data[self.indexer.idx(i, j, k)]);
            }
        }
        out
    }

    /// Overwrite every interior cell from a payload produced by
    /// [`SubGrid::extract_interior`]. Ghost cells are untouched.
    pub fn apply_interior(&mut self, values: &[f64]) {
        assert_eq!(
            values.len(),
            FIELD_COUNT * self.indexer.interior_len(),
            "interior payload size mismatch"
        );
        let indexer = self.indexer;
        let mut src = values.iter();
        for f in ALL_FIELDS {
            let field = self.field_mut(f);
            for (i, j, k) in indexer.interior() {
                field[indexer.idx(i, j, k)] = *src.next().expect("checked length");
            }
        }
    }
}

/// Source range (in the *sender's* interior) for a halo in direction `d`.
fn axis_range_src(d: i32) -> (isize, isize) {
    let n = N_SUB as isize;
    let g = N_GHOST as isize;
    match d {
        // Neighbor is on our -d side: it needs our low cells... direction
        // semantics: `dir` is the direction *from the receiver towards
        // the sender*. The sender provides the cells adjacent to the
        // shared face.
        -1 => (n - g, n),
        0 => (0, n),
        1 => (0, g),
        _ => panic!("direction component must be -1, 0, or 1"),
    }
}

/// Destination range (in the *receiver's* ghost region) for direction `d`
/// (the direction from the receiver towards the sender).
fn axis_range_dst(d: i32) -> (isize, isize) {
    let n = N_SUB as isize;
    let g = N_GHOST as isize;
    match d {
        -1 => (-g, 0),
        0 => (0, n),
        1 => (n, n + g),
        _ => panic!("direction component must be -1, 0, or 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_views_are_disjoint_and_sized() {
        let mut g = SubGrid::new();
        let n = g.indexer().len();
        assert_eq!(n, 14 * 14 * 14);
        g.field_mut(Field::Rho).fill(1.0);
        g.field_mut(Field::Egas).fill(2.0);
        assert!(g.field(Field::Rho).iter().all(|&v| v == 1.0));
        assert!(g.field(Field::Egas).iter().all(|&v| v == 2.0));
        assert!(g.field(Field::Sx).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fields_mut2_both_orders() {
        let mut g = SubGrid::new();
        {
            let (rho, tau) = g.fields_mut2(Field::Rho, Field::Tau);
            rho[0] = 5.0;
            tau[0] = 7.0;
        }
        {
            let (tau, rho) = g.fields_mut2(Field::Tau, Field::Rho);
            assert_eq!(tau[0], 7.0);
            assert_eq!(rho[0], 5.0);
        }
    }

    #[test]
    #[should_panic(expected = "fields must differ")]
    fn fields_mut2_same_field_panics() {
        let mut g = SubGrid::new();
        let _ = g.fields_mut2(Field::Rho, Field::Rho);
    }

    #[test]
    fn at_set_roundtrip_including_ghosts() {
        let mut g = SubGrid::new();
        g.set(Field::Rho, -2, 0, 9, 3.5);
        assert_eq!(g.at(Field::Rho, -2, 0, 9), 3.5);
        g.add(Field::Rho, -2, 0, 9, 0.5);
        assert_eq!(g.at(Field::Rho, -2, 0, 9), 4.0);
    }

    #[test]
    fn interior_sum_ignores_ghosts() {
        let mut g = SubGrid::new();
        g.field_mut(Field::Rho).fill(1.0); // ghosts included
        assert_eq!(g.interior_sum(Field::Rho), 512.0);
    }

    #[test]
    fn halo_roundtrip_face() {
        // Two grids side by side along +x: B is at +x of A.
        let mut a = SubGrid::new();
        let mut b = SubGrid::new();
        for (i, j, k) in a.indexer().interior() {
            a.set(Field::Rho, i, j, k, (100 * i + 10 * j + k) as f64);
        }
        // B's ghost layer on its -x side comes from A's high-x cells.
        // dir from receiver (B) towards sender (A) is (-1, 0, 0).
        let slab = a.extract_halo(Field::Rho, (-1, 0, 0));
        assert_eq!(slab.len(), SubGrid::halo_len((-1, 0, 0)));
        assert_eq!(slab.len(), N_GHOST * N_SUB * N_SUB);
        b.apply_halo(Field::Rho, (-1, 0, 0), &slab);
        // B's ghost (-1, j, k) must equal A's interior (7, j, k), and
        // (-2, j, k) must equal A's (6, j, k).
        for j in 0..N_SUB as isize {
            for k in 0..N_SUB as isize {
                assert_eq!(b.at(Field::Rho, -1, j, k), a.at(Field::Rho, 7, j, k));
                assert_eq!(b.at(Field::Rho, -2, j, k), a.at(Field::Rho, 6, j, k));
            }
        }
    }

    #[test]
    fn halo_roundtrip_edge_and_corner() {
        let mut a = SubGrid::new();
        let mut b = SubGrid::new();
        for (i, j, k) in a.indexer().interior() {
            a.set(Field::Egas, i, j, k, (i * j * k + 1) as f64);
        }
        // Edge: sender towards +y,+z of receiver.
        let slab = a.extract_halo(Field::Egas, (0, 1, 1));
        assert_eq!(slab.len(), N_SUB * N_GHOST * N_GHOST);
        b.apply_halo(Field::Egas, (0, 1, 1), &slab);
        assert_eq!(b.at(Field::Egas, 3, 8, 8), a.at(Field::Egas, 3, 0, 0));
        assert_eq!(b.at(Field::Egas, 3, 9, 9), a.at(Field::Egas, 3, 1, 1));
        // Corner.
        let slab = a.extract_halo(Field::Egas, (-1, -1, -1));
        assert_eq!(slab.len(), N_GHOST * N_GHOST * N_GHOST);
        b.apply_halo(Field::Egas, (-1, -1, -1), &slab);
        assert_eq!(b.at(Field::Egas, -1, -1, -1), a.at(Field::Egas, 7, 7, 7));
        assert_eq!(b.at(Field::Egas, -2, -2, -2), a.at(Field::Egas, 6, 6, 6));
    }

    #[test]
    fn serde_roundtrip_preserves_values() {
        // Uses serde's derived impls via a JSON-free binary-ish check:
        // clone through serde_test style is unavailable, so just check
        // the skip-default indexer path by cloning.
        let mut g = SubGrid::new();
        g.set(Field::Tau, 0, 0, 0, 9.25);
        let g2 = g.clone();
        assert_eq!(g2.at(Field::Tau, 0, 0, 0), 9.25);
        assert_eq!(g2.indexer().n, N_SUB);
    }

    #[test]
    fn density_like_classification() {
        assert!(Field::Rho.is_density_like());
        assert!(Field::DonorCore.is_density_like());
        assert!(!Field::Egas.is_density_like());
        assert!(!Field::Sx.is_density_like());
        assert_eq!(ALL_FIELDS.len(), FIELD_COUNT);
        for (i, f) in ALL_FIELDS.iter().enumerate() {
            assert_eq!(f.idx(), i);
        }
    }
}
