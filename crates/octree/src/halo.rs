//! Ghost-layer (halo) filling.
//!
//! Each octree node's solvers need a halo of neighbor data: "their input
//! data are the current node's sub-grid as well as all sub-grids of all
//! neighboring nodes as a halo (ghost layer)" (§4.3). With 2:1 balance a
//! ghost cell is filled from exactly one of:
//!
//! * a **same-level** neighbor leaf — direct copy,
//! * a **coarser** neighbor leaf — piecewise-constant injection (the
//!   coarse cell containing the ghost cell),
//! * a **finer** neighbor region — conservative average of the 8 child
//!   cells tiling the ghost cell,
//! * the **physical boundary** — outflow (nearest interior cell).
//!
//! In the distributed runtime the same slabs travel as parcels (see
//! `SubGrid::extract_halo`); this module is the shared-memory reference
//! implementation the distributed path is tested against.

use crate::subgrid::{ALL_FIELDS, N_SUB};
use crate::tree::Octree;
use util::morton::MortonKey;

/// Physical boundary condition applied at the domain surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryCondition {
    /// Zero-gradient outflow: ghost cells copy the nearest interior cell.
    #[default]
    Outflow,
    /// Reflecting walls: ghost cells mirror the interior (used by some
    /// verification tests).
    Reflect,
}

/// Global integer cell coordinates of cell `(i, j, k)` of leaf `key`
/// (may be negative / beyond the domain for ghost cells).
fn global_cell(key: MortonKey, i: isize, j: isize, k: isize) -> (i64, i64, i64) {
    let (x, y, z) = key.coords();
    (
        x as i64 * N_SUB as i64 + i as i64,
        y as i64 * N_SUB as i64 + j as i64,
        z as i64 * N_SUB as i64 + k as i64,
    )
}

/// Look up the value of the cell with global coordinates `g` at `level`,
/// resolving across refinement levels. The cell must be inside the
/// domain and its region covered by the tree.
fn sample_cell(
    tree: &Octree,
    level: u8,
    g: (i64, i64, i64),
    f: crate::subgrid::Field,
) -> f64 {
    let n = N_SUB as i64;
    let owner = MortonKey::new(
        level,
        (g.0 / n) as u32,
        (g.1 / n) as u32,
        (g.2 / n) as u32,
    );
    match tree.containing_leaf(owner) {
        Some(leaf) if leaf.level == level => {
            let (lx, ly, lz) = leaf.coords();
            let grid = tree.node(leaf).expect("leaf exists").grid.as_ref().expect("grid");
            grid.at(
                f,
                (g.0 - lx as i64 * n) as isize,
                (g.1 - ly as i64 * n) as isize,
                (g.2 - lz as i64 * n) as isize,
            )
        }
        Some(leaf) => {
            // Coarser leaf (2:1 balance guarantees exactly one level).
            assert_eq!(
                leaf.level + 1,
                level,
                "2:1 balance violated between levels {} and {}",
                leaf.level,
                level
            );
            let (lx, ly, lz) = leaf.coords();
            let grid = tree.node(leaf).expect("leaf exists").grid.as_ref().expect("grid");
            grid.at(
                f,
                (g.0 / 2 - lx as i64 * n) as isize,
                (g.1 / 2 - ly as i64 * n) as isize,
                (g.2 / 2 - lz as i64 * n) as isize,
            )
        }
        None => {
            // Finer region: average the 8 level+1 cells tiling this cell.
            // All eight live in a single child sub-grid (pairs 2g, 2g+1
            // never straddle an 8-cell block boundary).
            let mut sum = 0.0;
            for di in 0..2 {
                for dj in 0..2 {
                    for dk in 0..2 {
                        sum += sample_cell(
                            tree,
                            level + 1,
                            (2 * g.0 + di, 2 * g.1 + dj, 2 * g.2 + dk),
                            f,
                        );
                    }
                }
            }
            sum / 8.0
        }
    }
}

/// Compute every ghost value of leaf `key`.
fn ghost_values(tree: &Octree, key: MortonKey, bc: BoundaryCondition) -> Vec<f64> {
    let grid = tree.node(key).expect("leaf exists").grid.as_ref().expect("grid");
    let indexer = grid.indexer();
    let n_cells = indexer.len();
    let max_global = (N_SUB as i64) << key.level;
    let mut out = Vec::with_capacity(ALL_FIELDS.len() * (n_cells - indexer.interior_len()));
    for f in ALL_FIELDS {
        for (i, j, k) in indexer.all() {
            if indexer.is_interior(i, j, k) {
                continue;
            }
            let (mut gx, mut gy, mut gz) = global_cell(key, i, j, k);
            let outside = gx < 0 || gy < 0 || gz < 0 || gx >= max_global || gy >= max_global || gz >= max_global;
            if outside {
                match bc {
                    BoundaryCondition::Outflow => {
                        gx = gx.clamp(0, max_global - 1);
                        gy = gy.clamp(0, max_global - 1);
                        gz = gz.clamp(0, max_global - 1);
                    }
                    BoundaryCondition::Reflect => {
                        let refl = |g: i64| -> i64 {
                            if g < 0 {
                                -g - 1
                            } else if g >= max_global {
                                2 * max_global - g - 1
                            } else {
                                g
                            }
                        };
                        gx = refl(gx);
                        gy = refl(gy);
                        gz = refl(gz);
                    }
                }
            }
            out.push(sample_cell(tree, key.level, (gx, gy, gz), f));
        }
    }
    out
}

/// Fill the ghost layers of every leaf in the tree.
pub fn fill_all_halos(tree: &mut Octree, bc: BoundaryCondition) {
    assert!(tree.has_grids(), "halo filling needs grid data");
    let leaves = tree.leaves();
    // Two-phase: read everything, then write, so sources are consistent.
    let ghosts: Vec<(MortonKey, Vec<f64>)> = leaves
        .iter()
        .map(|&k| (k, ghost_values(tree, k, bc)))
        .collect();
    for (key, values) in ghosts {
        let node = tree.node_mut(key).expect("leaf exists");
        let grid = node.grid.as_mut().expect("grid");
        let indexer = grid.indexer();
        let mut src = values.into_iter();
        for f in ALL_FIELDS {
            let field = grid.field_mut(f);
            for (i, j, k) in indexer.all() {
                if indexer.is_interior(i, j, k) {
                    continue;
                }
                field[indexer.idx(i, j, k)] = src.next().expect("ghost count mismatch");
            }
        }
    }
}

/// Fill the ghost layers of every leaf, with the read phase futurized:
/// one `amt` task per leaf computes its ghost values against the
/// immutable tree, then a serial write phase applies them in leaf order.
/// Bit-identical to [`fill_all_halos`] — the reads are pure and the
/// writes happen in the same deterministic order.
///
/// `tree` must be the only outstanding strong reference when the write
/// phase begins; the function waits for runtime quiescence after the
/// read barrier to guarantee task-held clones are gone.
pub fn fill_all_halos_parallel(
    tree: &mut std::sync::Arc<Octree>,
    bc: BoundaryCondition,
    rt: &std::sync::Arc<amt::Runtime>,
) {
    let leaves = tree.leaves();
    fill_halos_for_leaves(tree, &leaves, bc, rt);
}

/// Fill the ghost layers of a *subset* of leaves — the distributed
/// driver's per-shard ghost fill. Reads sample the interiors of
/// whatever leaves the subset's halos touch (which must be up to date);
/// writes touch only the ghost cells of `leaves`, in slice order.
/// Determinism discipline matches [`fill_all_halos_parallel`]: futurized
/// pure reads, `when_all` in input order, serial ordered writes.
pub fn fill_halos_for_leaves(
    tree: &mut std::sync::Arc<Octree>,
    leaves: &[MortonKey],
    bc: BoundaryCondition,
    rt: &std::sync::Arc<amt::Runtime>,
) {
    use std::sync::Arc;
    assert!(tree.has_grids(), "halo filling needs grid data");
    let leaves = leaves.to_vec();
    let mut futs = Vec::with_capacity(leaves.len());
    for &key in &leaves {
        let tree = Arc::clone(tree);
        futs.push(rt.async_call(move || ghost_values(&tree, key, bc)));
    }
    let sched = Arc::clone(rt.scheduler());
    // `when_all` yields results in input order = leaf order.
    let ghosts = amt::when_all(&sched, futs).get_help(&sched);
    rt.wait_quiescent();
    let tree = Arc::get_mut(tree).expect("no outstanding tree references after quiescence");
    for (key, values) in leaves.into_iter().zip(ghosts) {
        let node = tree.node_mut(key).expect("leaf exists");
        let grid = node.grid.as_mut().expect("grid");
        let indexer = grid.indexer();
        let mut src = values.into_iter();
        for f in ALL_FIELDS {
            let field = grid.field_mut(f);
            for (i, j, k) in indexer.all() {
                if indexer.is_interior(i, j, k) {
                    continue;
                }
                field[indexer.idx(i, j, k)] = src.next().expect("ghost count mismatch");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Domain;
    use crate::subgrid::Field;

    fn tree_with_profile(f: impl Fn(f64, f64, f64) -> f64, refine_levels: u8) -> Octree {
        let mut t = Octree::new(Domain::new(16.0));
        // Refine the left half of the domain (boxes whose origin is left
        // of centre), giving same-level and coarse/fine interfaces.
        t.refine_where(refine_levels, |d, k| d.node_origin(k).x < 0.0);
        let leaves = t.leaves();
        let domain = t.domain();
        for key in leaves {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, f(c.x, c.y, c.z));
            }
        }
        t
    }

    #[test]
    fn constant_field_fills_all_ghosts_constant() {
        let mut t = tree_with_profile(|_, _, _| 2.5, 3);
        fill_all_halos(&mut t, BoundaryCondition::Outflow);
        for key in t.leaves() {
            let grid = t.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().all() {
                assert!(
                    (grid.at(Field::Rho, i, j, k) - 2.5).abs() < 1e-14,
                    "ghost at {key:?} ({i},{j},{k}) broke constancy"
                );
            }
        }
    }

    #[test]
    fn same_level_ghosts_are_exact_copies() {
        let mut t = Octree::new(Domain::new(16.0));
        t.refine(MortonKey::root());
        let domain = t.domain();
        for key in t.leaves() {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, c.x + 10.0 * c.y + 100.0 * c.z);
            }
        }
        fill_all_halos(&mut t, BoundaryCondition::Outflow);
        // Interior (non-domain-boundary) ghosts of a same-level interface
        // must reproduce the linear profile exactly.
        let key = MortonKey::new(1, 0, 0, 0);
        let grid = t.node(key).unwrap().grid.as_ref().unwrap();
        let dx = domain.cell_dx(1);
        for j in 0..8 {
            for k in 0..8 {
                let c = domain.cell_center(key, 8, j, k);
                let expect = c.x + 10.0 * c.y + 100.0 * c.z;
                let got = grid.at(Field::Rho, 8, j, k);
                assert!((got - expect).abs() < 1e-10 * (1.0 + expect.abs()), "dx={dx}: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn outflow_ghosts_clamp_at_domain_boundary() {
        let mut t = tree_with_profile(|x, _, _| x, 0);
        fill_all_halos(&mut t, BoundaryCondition::Outflow);
        let key = MortonKey::root();
        let grid = t.node(key).unwrap().grid.as_ref().unwrap();
        // Ghost beyond -x boundary equals the first interior cell.
        assert_eq!(
            grid.at(Field::Rho, -1, 3, 3),
            grid.at(Field::Rho, 0, 3, 3)
        );
        assert_eq!(
            grid.at(Field::Rho, -2, 3, 3),
            grid.at(Field::Rho, 0, 3, 3)
        );
        assert_eq!(
            grid.at(Field::Rho, 9, 3, 3),
            grid.at(Field::Rho, 7, 3, 3)
        );
    }

    #[test]
    fn reflect_ghosts_mirror_interior() {
        let mut t = tree_with_profile(|x, _, _| x, 0);
        fill_all_halos(&mut t, BoundaryCondition::Reflect);
        let grid = t.node(MortonKey::root()).unwrap().grid.as_ref().unwrap();
        assert_eq!(grid.at(Field::Rho, -1, 3, 3), grid.at(Field::Rho, 0, 3, 3));
        assert_eq!(grid.at(Field::Rho, -2, 3, 3), grid.at(Field::Rho, 1, 3, 3));
        assert_eq!(grid.at(Field::Rho, 8, 3, 3), grid.at(Field::Rho, 7, 3, 3));
        assert_eq!(grid.at(Field::Rho, 9, 3, 3), grid.at(Field::Rho, 6, 3, 3));
    }

    #[test]
    fn coarse_fine_interface_preserves_constant_and_averages_fine() {
        // Left half refined one extra level: the coarse right-half leaf
        // adjacent to the interface receives fine-cell averages; the
        // fine leaves receive coarse injections.
        let mut t = tree_with_profile(|_, _, _| 7.0, 2);
        t.check_invariants();
        assert!(t.max_level() >= 2);
        fill_all_halos(&mut t, BoundaryCondition::Outflow);
        for key in t.leaves() {
            let grid = t.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().all() {
                assert!(
                    (grid.at(Field::Rho, i, j, k) - 7.0).abs() < 1e-13,
                    "AMR interface ghost at {key:?} broke constancy"
                );
            }
        }
    }

    #[test]
    fn parallel_halo_fill_is_bit_identical_to_serial() {
        use std::sync::Arc;
        let profile = |x: f64, y: f64, z: f64| (0.3 * x).sin() + 0.1 * y * z + 2.0;
        let mut serial = tree_with_profile(profile, 2);
        fill_all_halos(&mut serial, BoundaryCondition::Outflow);
        for threads in [1, 4] {
            let mut par = Arc::new(tree_with_profile(profile, 2));
            let rt = amt::Runtime::new(threads);
            fill_all_halos_parallel(&mut par, BoundaryCondition::Outflow, &rt);
            for key in serial.leaves() {
                let a = serial.node(key).unwrap().grid.as_ref().unwrap();
                let b = par.node(key).unwrap().grid.as_ref().unwrap();
                for f in ALL_FIELDS {
                    for (i, j, k) in a.indexer().all() {
                        assert_eq!(
                            a.at(f, i, j, k).to_bits(),
                            b.at(f, i, j, k).to_bits(),
                            "halo mismatch at {key:?} ({i},{j},{k}) with {threads} threads"
                        );
                    }
                }
            }
        }
    }
}
