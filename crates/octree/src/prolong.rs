//! Conservative interpolation between refinement levels.
//!
//! "For all levels the restart file for level 13 was read and refined to
//! higher levels of resolution through conservative interpolation of the
//! evolved variables" (§6.2). We use limited (minmod) trilinear
//! reconstruction: each parent cell's value is distributed to its eight
//! children with per-axis slopes whose contributions cancel pairwise, so
//! the total of every conserved variable is preserved to round-off —
//! verified by property tests and required for the machine-precision
//! conservation claims of the paper.
//!
//! Restriction (fine → coarse) is the exact 8-cell average, the adjoint
//! operation, also conservative.

use crate::subgrid::{SubGrid, ALL_FIELDS, N_SUB};

/// minmod slope limiter: zero at extrema, the smaller one-sided
/// difference otherwise. Guarantees no new extrema are created.
#[inline]
pub fn minmod(a: f64, b: f64) -> f64 {
    if a * b <= 0.0 {
        0.0
    } else if a.abs() < b.abs() {
        a
    } else {
        b
    }
}

/// Interior-only limited slope along one axis; zero at the sub-grid
/// boundary (one-sided data unavailable without a halo — zero slope is
/// conservative and robust).
#[inline]
fn slope(get: impl Fn(isize) -> f64, idx: isize) -> f64 {
    if idx == 0 || idx == N_SUB as isize - 1 {
        return 0.0;
    }
    minmod(get(idx + 1) - get(idx), get(idx) - get(idx - 1)) * 0.5
}

/// Produce the sub-grid of child `octant` of a parent grid by
/// conservative prolongation. Child interior cells only; ghosts zero.
pub fn prolong_octant(parent: &SubGrid, octant: u8) -> SubGrid {
    assert!(octant < 8, "octant must be in 0..8");
    let mut child = SubGrid::new();
    let half = N_SUB as isize / 2;
    let ox = (octant & 1) as isize * half;
    let oy = ((octant >> 1) & 1) as isize * half;
    let oz = ((octant >> 2) & 1) as isize * half;
    for f in ALL_FIELDS {
        for ci in 0..N_SUB as isize {
            for cj in 0..N_SUB as isize {
                for ck in 0..N_SUB as isize {
                    let (pi, pj, pk) = (ox + ci / 2, oy + cj / 2, oz + ck / 2);
                    let v = parent.at(f, pi, pj, pk);
                    let sx = slope(|i| parent.at(f, i, pj, pk), pi);
                    let sy = slope(|j| parent.at(f, pi, j, pk), pj);
                    let sz = slope(|k| parent.at(f, pi, pj, k), pk);
                    // Child centre offset within the parent cell: ±1/4 of
                    // the parent cell width along each axis.
                    let wx = if ci % 2 == 0 { -0.5 } else { 0.5 };
                    let wy = if cj % 2 == 0 { -0.5 } else { 0.5 };
                    let wz = if ck % 2 == 0 { -0.5 } else { 0.5 };
                    child.set(f, ci, cj, ck, v + wx * sx + wy * sy + wz * sz);
                }
            }
        }
    }
    child
}

/// Restrict a child grid into the `octant` block of `parent`: each
/// parent cell becomes the average of its eight children (volume
/// weighting is uniform within a level).
pub fn restrict_into_octant(child: &SubGrid, parent: &mut SubGrid, octant: u8) {
    assert!(octant < 8, "octant must be in 0..8");
    let half = N_SUB as isize / 2;
    let ox = (octant & 1) as isize * half;
    let oy = ((octant >> 1) & 1) as isize * half;
    let oz = ((octant >> 2) & 1) as isize * half;
    for f in ALL_FIELDS {
        for pi in 0..half {
            for pj in 0..half {
                for pk in 0..half {
                    let mut sum = 0.0;
                    for di in 0..2 {
                        for dj in 0..2 {
                            for dk in 0..2 {
                                sum += child.at(f, 2 * pi + di, 2 * pj + dj, 2 * pk + dk);
                            }
                        }
                    }
                    parent.set(f, ox + pi, oy + pj, oz + pk, sum / 8.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgrid::Field;
    use proptest::prelude::*;

    #[test]
    fn minmod_properties() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(-3.0, -2.0), -2.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    fn filled_parent(f: impl Fn(isize, isize, isize) -> f64) -> SubGrid {
        let mut g = SubGrid::new();
        for (i, j, k) in g.indexer().interior() {
            g.set(Field::Rho, i, j, k, f(i, j, k));
        }
        g
    }

    #[test]
    fn prolongation_of_constant_is_constant() {
        let parent = filled_parent(|_, _, _| 3.5);
        for octant in 0..8 {
            let child = prolong_octant(&parent, octant);
            for (i, j, k) in child.indexer().interior() {
                assert_eq!(child.at(Field::Rho, i, j, k), 3.5);
            }
        }
    }

    #[test]
    fn prolongation_conserves_total_exactly() {
        let parent = filled_parent(|i, j, k| ((7 * i + 3 * j + k) % 13) as f64 * 0.125 + 1.0);
        let parent_total = parent.interior_sum(Field::Rho);
        // Children cells have 1/8 the volume: total over all children
        // interiors / 8 must equal the parent total.
        let mut child_total = 0.0;
        for octant in 0..8 {
            child_total += prolong_octant(&parent, octant).interior_sum(Field::Rho);
        }
        assert!(
            (child_total / 8.0 - parent_total).abs() <= 1e-12 * parent_total.abs(),
            "prolongation not conservative: {parent_total} vs {}",
            child_total / 8.0
        );
    }

    #[test]
    fn prolongation_reproduces_linear_fields_in_interior() {
        // A linear profile: slopes should reconstruct it exactly away
        // from the sub-grid boundary.
        let parent = filled_parent(|i, _, _| i as f64);
        let child = prolong_octant(&parent, 0);
        // Child cell ci maps to parent coordinate (ci + 0.5)/2 - 0.5 in
        // parent-cell units. For interior parent cells the limited slope
        // equals the exact slope 1.0 (per parent cell).
        for ci in 2..6 {
            let expect = (ci as f64 + 0.5) / 2.0 - 0.5;
            let got = child.at(Field::Rho, ci, 3, 3);
            assert!((got - expect).abs() < 1e-13, "ci={ci}: {got} vs {expect}");
        }
    }

    #[test]
    fn restriction_inverts_prolongation_of_smooth_data() {
        let parent = filled_parent(|i, j, k| (i + 2 * j + 3 * k) as f64);
        let mut back = SubGrid::new();
        for octant in 0..8 {
            let child = prolong_octant(&parent, octant);
            restrict_into_octant(&child, &mut back, octant);
        }
        for (i, j, k) in parent.indexer().interior() {
            assert!(
                (back.at(Field::Rho, i, j, k) - parent.at(Field::Rho, i, j, k)).abs() < 1e-12,
                "restrict(prolong) must be identity at ({i},{j},{k})"
            );
        }
    }

    #[test]
    fn prolongation_creates_no_new_extrema() {
        let parent = filled_parent(|i, j, k| ((i * j + k) % 7) as f64);
        let (lo, hi) = parent
            .indexer()
            .interior()
            .map(|(i, j, k)| parent.at(Field::Rho, i, j, k))
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)));
        for octant in 0..8 {
            let child = prolong_octant(&parent, octant);
            for (i, j, k) in child.indexer().interior() {
                let v = child.at(Field::Rho, i, j, k);
                assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "overshoot {v} outside [{lo},{hi}]");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn conservation_for_random_fields(vals in proptest::collection::vec(0.1f64..10.0, 512)) {
            let mut parent = SubGrid::new();
            for (n, (i, j, k)) in parent.indexer().interior().enumerate() {
                parent.set(Field::Rho, i, j, k, vals[n]);
            }
            let total = parent.interior_sum(Field::Rho);
            let mut child_total = 0.0;
            for octant in 0..8 {
                child_total += prolong_octant(&parent, octant).interior_sum(Field::Rho);
            }
            prop_assert!((child_total / 8.0 - total).abs() < 1e-10 * total.abs());
        }

        #[test]
        fn restriction_is_average(octant in 0u8..8) {
            let mut child = SubGrid::new();
            child.field_mut(Field::Egas).fill(4.0);
            let mut parent = SubGrid::new();
            restrict_into_octant(&child, &mut parent, octant);
            let half = N_SUB as isize / 2;
            let ox = (octant & 1) as isize * half;
            let oy = ((octant >> 1) & 1) as isize * half;
            let oz = ((octant >> 2) & 1) as isize * half;
            prop_assert_eq!(parent.at(Field::Egas, ox, oy, oz), 4.0);
            prop_assert_eq!(parent.at(Field::Egas, ox + half - 1, oy, oz), 4.0);
            // Outside the octant block: untouched (zero).
            let other = (ox + half) % N_SUB as isize;
            prop_assert_eq!(parent.at(Field::Egas, other, oy, oz), 0.0);
        }
    }
}
