//! Work aggregation: fuse many small kernels into batched launches.
//!
//! The paper launches one simulated-GPU kernel per FMM work item, and
//! its follow-up ("From Task-Based GPU Work Aggregation to Stellar
//! Mergers", arXiv:2210.06438, the CPPuddle aggregation executors)
//! shows the fix: collect same-kind kernel work items that arrive close
//! together in time, and launch them as *one* fused kernel, paying the
//! per-launch overhead once per batch instead of once per item.
//!
//! An [`AggregationRegion`] reproduces that executor shape:
//!
//! - one *lane* per kernel kind buffers incoming [`AggItem`]s;
//! - a lane reaching its **slot** capacity flushes itself
//!   ([`FlushTrigger::Full`] — the CPPuddle "aggregation executor is
//!   full" path);
//! - the total buffered across all lanes reaching the **window** bound
//!   flushes the whole region ([`FlushTrigger::Window`] — bounded
//!   latency even when no single lane fills);
//! - the producer calls [`AggregationRegion::flush`] when it runs out
//!   of work to submit ([`FlushTrigger::Idle`] — the "no more tasks
//!   arriving" path), so no item is ever stranded.
//!
//! A flush hands the batch to [`StreamPool::launch_fused`]: one idle
//! stream runs every item of the batch in submission order (one device
//! launch, *n* items), and when the §5.1 policy says the CPU must take
//! the work instead, the region degrades to running each item inline,
//! per item, exactly as an unaggregated launch would have. Items are
//! opaque closures that receive only "did this run on the device", so
//! where a batch lands — and how items were grouped into batches —
//! can never change the numbers, only the counters.

use crate::launch_policy::{FusedOutcome, StreamPool};
use amt::trace::{self, TraceCategory};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One unit of kernel work buffered by a region. The argument is
/// whether the item executed on the simulated device (`true`) or inline
/// on a CPU thread (`false`) — the item's results must not depend on it.
pub type AggItem = Box<dyn FnOnce(bool) + Send + 'static>;

/// Default per-kind slot capacity (flush-on-full threshold).
pub const DEFAULT_AGG_SLOTS: usize = 8;

/// Default region-wide buffered-item bound (flush-on-window threshold).
pub const DEFAULT_AGG_WINDOW: usize = 32;

/// Aggregation tuning of one region: `slots` items of one kind fuse
/// into one launch; `window` items buffered across all kinds force a
/// region-wide flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationConfig {
    /// Per-kind lane capacity; reaching it flushes that lane. `1`
    /// degenerates to per-item launches (the pre-aggregation behaviour).
    pub slots: usize,
    /// Total buffered items (all lanes) that force a full flush.
    pub window: usize,
}

impl AggregationConfig {
    /// Build a normalized config: `slots >= 1`, `window >= slots` (a
    /// window smaller than one batch could never be reached).
    pub fn new(slots: usize, window: usize) -> AggregationConfig {
        let slots = slots.max(1);
        AggregationConfig { slots, window: window.max(slots) }
    }

    /// Per-item launches: every submit flushes immediately.
    pub fn per_item() -> AggregationConfig {
        AggregationConfig::new(1, 1)
    }

    /// The config selected by the `FMM_AGG_SLOTS` / `FMM_AGG_WINDOW`
    /// environment variables (normalized), with the built-in defaults
    /// for unset or unparsable values.
    pub fn from_env() -> AggregationConfig {
        let read = |var: &str, default: usize| match std::env::var(var) {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(default),
            Err(_) => default,
        };
        AggregationConfig::new(
            read("FMM_AGG_SLOTS", DEFAULT_AGG_SLOTS),
            read("FMM_AGG_WINDOW", DEFAULT_AGG_WINDOW),
        )
    }
}

impl Default for AggregationConfig {
    fn default() -> AggregationConfig {
        AggregationConfig::new(DEFAULT_AGG_SLOTS, DEFAULT_AGG_WINDOW)
    }
}

/// Why a batch was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushTrigger {
    /// The lane reached its slot capacity.
    Full,
    /// The region-wide buffered total reached the window bound.
    Window,
    /// The producer declared itself idle (explicit flush).
    Idle,
}

impl FlushTrigger {
    fn as_str(self) -> &'static str {
        match self {
            FlushTrigger::Full => "full",
            FlushTrigger::Window => "window",
            FlushTrigger::Idle => "idle",
        }
    }
}

/// Batch-size histogram buckets: exact 1, exact 2, then ≤4, ≤8, ≤16,
/// and >16.
pub const HIST_BUCKETS: usize = 6;

/// Stable labels of the histogram buckets, for counter names.
pub const HIST_LABELS: [&str; HIST_BUCKETS] = ["1", "2", "le4", "le8", "le16", "gt16"];

fn bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        _ => 5,
    }
}

/// Cumulative aggregation counters, shared by every region of one
/// context: batch/item split per execution site, flush-trigger
/// breakdown, and a per-kind batch-size histogram.
pub struct AggregationStats {
    batches_gpu: AtomicU64,
    items_gpu: AtomicU64,
    batches_cpu: AtomicU64,
    items_cpu: AtomicU64,
    flush_full: AtomicU64,
    flush_window: AtomicU64,
    flush_idle: AtomicU64,
    /// `hist[kind][bucket]` — batch sizes per kernel kind.
    hist: Vec<[AtomicU64; HIST_BUCKETS]>,
}

impl AggregationStats {
    /// Counters for `n_kinds` kernel kinds.
    pub fn new(n_kinds: usize) -> AggregationStats {
        AggregationStats {
            batches_gpu: AtomicU64::new(0),
            items_gpu: AtomicU64::new(0),
            batches_cpu: AtomicU64::new(0),
            items_cpu: AtomicU64::new(0),
            flush_full: AtomicU64::new(0),
            flush_window: AtomicU64::new(0),
            flush_idle: AtomicU64::new(0),
            hist: (0..n_kinds).map(|_| Default::default()).collect(),
        }
    }

    fn record(&self, kind: usize, n: usize, trigger: FlushTrigger, on_gpu: bool) {
        if on_gpu {
            self.batches_gpu.fetch_add(1, Ordering::Relaxed);
            self.items_gpu.fetch_add(n as u64, Ordering::Relaxed);
        } else {
            self.batches_cpu.fetch_add(1, Ordering::Relaxed);
            self.items_cpu.fetch_add(n as u64, Ordering::Relaxed);
        }
        match trigger {
            FlushTrigger::Full => self.flush_full.fetch_add(1, Ordering::Relaxed),
            FlushTrigger::Window => self.flush_window.fetch_add(1, Ordering::Relaxed),
            FlushTrigger::Idle => self.flush_idle.fetch_add(1, Ordering::Relaxed),
        };
        self.hist[kind][bucket(n)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fused launches enqueued on a device stream.
    pub fn batches_gpu(&self) -> u64 {
        self.batches_gpu.load(Ordering::Relaxed)
    }

    /// Items that executed inside a fused device launch.
    pub fn items_gpu(&self) -> u64 {
        self.items_gpu.load(Ordering::Relaxed)
    }

    /// Batches that degraded to per-item CPU execution.
    pub fn batches_cpu(&self) -> u64 {
        self.batches_cpu.load(Ordering::Relaxed)
    }

    /// Items that ran inline on the CPU (per item, as unaggregated).
    pub fn items_cpu(&self) -> u64 {
        self.items_cpu.load(Ordering::Relaxed)
    }

    /// Flushes caused by a full lane.
    pub fn flush_full(&self) -> u64 {
        self.flush_full.load(Ordering::Relaxed)
    }

    /// Flushes caused by the region-wide window bound.
    pub fn flush_window(&self) -> u64 {
        self.flush_window.load(Ordering::Relaxed)
    }

    /// Flushes caused by an explicit producer-idle flush.
    pub fn flush_idle(&self) -> u64 {
        self.flush_idle.load(Ordering::Relaxed)
    }

    /// Total flushed batches across both sites.
    pub fn batches(&self) -> u64 {
        self.batches_gpu() + self.batches_cpu()
    }

    /// Total flushed items across both sites.
    pub fn items(&self) -> u64 {
        self.items_gpu() + self.items_cpu()
    }

    /// One batch-size histogram bucket of one kind.
    pub fn hist(&self, kind: usize, bucket: usize) -> u64 {
        self.hist[kind][bucket].load(Ordering::Relaxed)
    }

    /// Mean slot-window occupancy in permille: `1000 · items /
    /// (batches · slots)`. 1000 means every flushed batch was full.
    pub fn occupancy_permille(&self, slots: usize) -> u64 {
        let batches = self.batches();
        if batches == 0 {
            return 0;
        }
        1000 * self.items() / (batches * slots.max(1) as u64)
    }
}

/// A work-aggregation region: per-kind lanes buffering [`AggItem`]s
/// until a flush trigger fires, then fusing each batch into one
/// [`StreamPool::launch_fused`] call.
///
/// Thread safety: lanes are mutex-guarded, so a region may be shared
/// (the overflow region of a context is hit by arbitrary helper
/// threads); the intended shape is one region per worker, matching the
/// per-worker stream pools of §5.1. Slot/window settings are atomics so
/// a context can retune a live region.
pub struct AggregationRegion {
    lanes: Vec<Mutex<Vec<AggItem>>>,
    buffered: AtomicUsize,
    slots: AtomicUsize,
    window: AtomicUsize,
    stats: Arc<AggregationStats>,
}

impl AggregationRegion {
    /// A region with one lane per kernel kind, recording into `stats`
    /// (shared across the regions of one context).
    pub fn new(n_kinds: usize, cfg: AggregationConfig, stats: Arc<AggregationStats>) -> Self {
        let cfg = AggregationConfig::new(cfg.slots, cfg.window);
        AggregationRegion {
            lanes: (0..n_kinds).map(|_| Mutex::new(Vec::new())).collect(),
            buffered: AtomicUsize::new(0),
            slots: AtomicUsize::new(cfg.slots),
            window: AtomicUsize::new(cfg.window),
            stats,
        }
    }

    /// Retune the flush thresholds (normalized).
    pub fn set_config(&self, cfg: AggregationConfig) {
        let cfg = AggregationConfig::new(cfg.slots, cfg.window);
        self.slots.store(cfg.slots, Ordering::Relaxed);
        self.window.store(cfg.window, Ordering::Relaxed);
    }

    /// The current flush thresholds.
    pub fn config(&self) -> AggregationConfig {
        AggregationConfig {
            slots: self.slots.load(Ordering::Relaxed),
            window: self.window.load(Ordering::Relaxed),
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<AggregationStats> {
        &self.stats
    }

    /// Items currently buffered across all lanes.
    pub fn buffered(&self) -> usize {
        self.buffered.load(Ordering::Relaxed)
    }

    /// Buffer `item` on `kind`'s lane, flushing through `pool` when a
    /// slot or window threshold is reached. A flush may run CPU-degraded
    /// items inline on the calling thread before returning.
    pub fn submit(&self, pool: &StreamPool, kind: usize, item: AggItem) {
        let slots = self.slots.load(Ordering::Relaxed);
        let full = {
            let mut lane = self.lanes[kind].lock();
            lane.push(item);
            lane.len() >= slots
        };
        self.buffered.fetch_add(1, Ordering::Relaxed);
        if full {
            self.flush_lane(pool, kind, FlushTrigger::Full);
            return;
        }
        if self.buffered.load(Ordering::Relaxed) >= self.window.load(Ordering::Relaxed) {
            self.flush_all(pool, FlushTrigger::Window);
        }
    }

    /// Producer-idle flush: drain every lane (no-op when empty).
    pub fn flush(&self, pool: &StreamPool) {
        self.flush_all(pool, FlushTrigger::Idle);
    }

    fn flush_all(&self, pool: &StreamPool, trigger: FlushTrigger) {
        for kind in 0..self.lanes.len() {
            self.flush_lane(pool, kind, trigger);
        }
    }

    fn flush_lane(&self, pool: &StreamPool, kind: usize, trigger: FlushTrigger) {
        let items = std::mem::take(&mut *self.lanes[kind].lock());
        if items.is_empty() {
            return;
        }
        let n = items.len();
        self.buffered.fetch_sub(n, Ordering::Relaxed);
        let _span = trace::span_labeled(TraceCategory::AggFlush, || {
            format!("kind{kind} n={n} {}", trigger.as_str())
        });
        match pool.launch_fused(items) {
            FusedOutcome::Gpu(_event) => {
                // Completion is observed through the items' own
                // promises, not the stream event.
                self.stats.record(kind, n, trigger, true);
            }
            FusedOutcome::CpuFallback(items) => {
                self.stats.record(kind, n, trigger, false);
                for item in items {
                    item(false);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceSpec};
    use crate::launch_policy::{LaunchStats, QueuePolicy};
    use std::sync::atomic::AtomicU64 as TestCounter;

    // The device must outlive the pool: dropping the `Arc<Device>`
    // shuts the executor down, and ops enqueued after that never run.
    fn pool(n_streams: usize, policy: QueuePolicy) -> (Arc<Device>, StreamPool) {
        let dev = Device::new(DeviceSpec::p100(), n_streams);
        let pool = StreamPool::partition(dev.streams(), 1, policy, Arc::new(LaunchStats::new()))
            .into_iter()
            .next()
            .unwrap();
        (dev, pool)
    }

    fn counting_item(hits: &Arc<TestCounter>, gpu_hits: &Arc<TestCounter>) -> AggItem {
        let h = Arc::clone(hits);
        let g = Arc::clone(gpu_hits);
        Box::new(move |on_gpu| {
            h.fetch_add(1, Ordering::SeqCst);
            if on_gpu {
                g.fetch_add(1, Ordering::SeqCst);
            }
        })
    }

    #[test]
    fn full_lane_flushes_one_fused_launch() {
        let (_dev, pool) = pool(2, QueuePolicy::CpuFallback);
        let stats = Arc::new(AggregationStats::new(1));
        let region = AggregationRegion::new(1, AggregationConfig::new(4, 64), Arc::clone(&stats));
        let hits = Arc::new(TestCounter::new(0));
        let gpu_hits = Arc::new(TestCounter::new(0));
        for _ in 0..4 {
            region.submit(&pool, 0, counting_item(&hits, &gpu_hits));
        }
        // Slot capacity reached → one fused launch with all 4 items.
        pool.synchronize();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(gpu_hits.load(Ordering::SeqCst), 4);
        assert_eq!(stats.batches_gpu(), 1);
        assert_eq!(stats.items_gpu(), 4);
        assert_eq!(stats.flush_full(), 1);
        assert_eq!(region.buffered(), 0);
        assert_eq!(pool.stats().gpu_launches(), 4, "per-item launch stats");
    }

    #[test]
    fn idle_flush_drains_partial_batches() {
        let (_dev, pool) = pool(2, QueuePolicy::CpuFallback);
        let stats = Arc::new(AggregationStats::new(2));
        let region = AggregationRegion::new(2, AggregationConfig::new(8, 64), Arc::clone(&stats));
        let hits = Arc::new(TestCounter::new(0));
        let gpu_hits = Arc::new(TestCounter::new(0));
        region.submit(&pool, 0, counting_item(&hits, &gpu_hits));
        region.submit(&pool, 1, counting_item(&hits, &gpu_hits));
        region.submit(&pool, 1, counting_item(&hits, &gpu_hits));
        assert_eq!(region.buffered(), 3);
        region.flush(&pool);
        pool.synchronize();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert_eq!(stats.batches_gpu(), 2, "one batch per non-empty lane");
        assert_eq!(stats.flush_idle(), 2);
        assert_eq!(stats.hist(0, 0), 1, "size-1 batch on lane 0");
        assert_eq!(stats.hist(1, 1), 1, "size-2 batch on lane 1");
        assert_eq!(region.buffered(), 0);
    }

    #[test]
    fn window_bound_flushes_every_lane() {
        let (_dev, pool) = pool(2, QueuePolicy::CpuFallback);
        let stats = Arc::new(AggregationStats::new(2));
        // No lane ever reaches its 3 slots (2 items each), but 4 total
        // buffered items hit the window bound and flush the region.
        let region = AggregationRegion::new(2, AggregationConfig::new(3, 4), Arc::clone(&stats));
        let hits = Arc::new(TestCounter::new(0));
        let gpu_hits = Arc::new(TestCounter::new(0));
        for kind in [0usize, 1, 0, 1] {
            region.submit(&pool, kind, counting_item(&hits, &gpu_hits));
        }
        pool.synchronize();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
        assert_eq!(region.buffered(), 0);
        assert_eq!(stats.flush_window(), 2);
    }

    #[test]
    fn no_idle_stream_degrades_per_item_on_cpu() {
        // Zero streams: §5.1 CPU fallback for every batch, run inline
        // per item on the submitting thread.
        let (_dev, pool) = pool(1, QueuePolicy::CpuFallback);
        // Occupy the only stream so nothing is idle.
        let gate = Arc::new(TestCounter::new(0));
        let g = Arc::clone(&gate);
        let block: AggItem = Box::new(move |_| {
            while g.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
        });
        let FusedOutcome::Gpu(ev) = pool.launch_fused(vec![block]) else {
            panic!("idle stream must take the blocker");
        };
        let stats = Arc::new(AggregationStats::new(1));
        let region = AggregationRegion::new(1, AggregationConfig::new(2, 64), Arc::clone(&stats));
        let hits = Arc::new(TestCounter::new(0));
        let gpu_hits = Arc::new(TestCounter::new(0));
        region.submit(&pool, 0, counting_item(&hits, &gpu_hits));
        region.submit(&pool, 0, counting_item(&hits, &gpu_hits));
        // The fallback batch ran inline before submit returned.
        assert_eq!(hits.load(Ordering::SeqCst), 2);
        assert_eq!(gpu_hits.load(Ordering::SeqCst), 0, "fallback items run on CPU");
        assert_eq!(stats.batches_cpu(), 1);
        assert_eq!(stats.items_cpu(), 2);
        assert_eq!(pool.stats().cpu_launches(), 2, "per-item fallback stats");
        gate.store(1, Ordering::SeqCst);
        ev.get();
    }

    #[test]
    fn config_normalizes() {
        let c = AggregationConfig::new(0, 0);
        assert_eq!(c.slots, 1);
        assert_eq!(c.window, 1);
        let c = AggregationConfig::new(16, 4);
        assert_eq!(c.window, 16, "window clamps up to slots");
        assert_eq!(AggregationConfig::per_item(), AggregationConfig::new(1, 1));
        std::env::set_var("FMM_AGG_SLOTS", "6");
        std::env::set_var("FMM_AGG_WINDOW", "24");
        assert_eq!(AggregationConfig::from_env(), AggregationConfig::new(6, 24));
        std::env::set_var("FMM_AGG_SLOTS", "junk");
        assert_eq!(AggregationConfig::from_env().slots, DEFAULT_AGG_SLOTS);
        std::env::remove_var("FMM_AGG_SLOTS");
        std::env::remove_var("FMM_AGG_WINDOW");
        assert_eq!(AggregationConfig::from_env(), AggregationConfig::default());
    }

    #[test]
    fn occupancy_and_histogram_buckets() {
        let s = AggregationStats::new(1);
        s.record(0, 8, FlushTrigger::Full, true);
        s.record(0, 4, FlushTrigger::Idle, true);
        assert_eq!(s.occupancy_permille(8), 1000 * 12 / (2 * 8));
        assert_eq!(s.hist(0, 3), 1); // le8
        assert_eq!(s.hist(0, 2), 1); // le4
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(16), 4);
        assert_eq!(bucket(17), 5);
    }
}
