//! CUDA-style streams and stream events as futures.
//!
//! "For any CUDA stream event we create an HPX future that becomes ready
//! once operations in the stream (up to the point of the event/future's
//! creation) are finished. Internally, this is created using a CUDA
//! callback function that sets the future ready" (§5.1). A
//! [`CudaStream::record_event`] enqueues exactly such a callback; the
//! returned [`amt::Future`] integrates GPU completion into the task
//! graph: continuations attached to it are scheduled the moment the
//! stream reaches the event.

use crate::device::DeviceShared;
use amt::{Future, Promise};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A closure executed by the device.
pub(crate) type StreamOp = Box<dyn FnOnce() + Send + 'static>;

struct QueuedOp {
    work: Option<StreamOp>,
    /// Fired after the op completes *and* the stream bookkeeping is
    /// updated, so `is_idle()` is accurate from continuations.
    completion: Option<Promise<()>>,
    /// True for kernels, false for event markers (kernel counters must
    /// not count events).
    is_kernel: bool,
}

/// State shared between a stream handle and the device executor.
pub(crate) struct StreamShared {
    queue: Mutex<VecDeque<QueuedOp>>,
    /// Operations enqueued but not yet completed (queued + executing).
    outstanding: AtomicUsize,
    executing: AtomicBool,
}

impl StreamShared {
    pub(crate) fn new() -> StreamShared {
        StreamShared {
            queue: Mutex::new(VecDeque::new()),
            outstanding: AtomicUsize::new(0),
            executing: AtomicBool::new(false),
        }
    }

    fn push(&self, op: QueuedOp) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().push_back(op);
    }

    /// Pop the next op wrapped with completion bookkeeping. Returns the
    /// wrapped closure and whether it is a kernel (vs an event marker).
    pub(crate) fn pop(self: &Arc<Self>) -> Option<(StreamOp, bool)> {
        let op = self.queue.lock().pop_front()?;
        self.executing.store(true, Ordering::SeqCst);
        let me = Arc::clone(self);
        let is_kernel = op.is_kernel;
        let wrapped: StreamOp = Box::new(move || {
            if let Some(work) = op.work {
                work();
            }
            me.executing.store(false, Ordering::SeqCst);
            me.outstanding.fetch_sub(1, Ordering::SeqCst);
            if let Some(promise) = op.completion {
                promise.set_value(());
            }
        });
        Some((wrapped, is_kernel))
    }

    pub(crate) fn is_idle(&self) -> bool {
        self.outstanding.load(Ordering::SeqCst) == 0
    }

    pub(crate) fn backlog(&self) -> usize {
        self.outstanding.load(Ordering::SeqCst)
    }
}

/// A handle to one in-order work queue of a device. Obtain handles from
/// [`crate::Device::streams`].
pub struct CudaStream {
    shared: Arc<StreamShared>,
    device: Arc<DeviceShared>,
}

impl CudaStream {
    pub(crate) fn from_shared(shared: Arc<StreamShared>, device: Arc<DeviceShared>) -> CudaStream {
        CudaStream { shared, device }
    }

    /// Enqueue a kernel (any closure). Returns immediately; the device
    /// executor runs ops of this stream in enqueue order.
    pub fn enqueue(&self, op: impl FnOnce() + Send + 'static) {
        self.shared.push(QueuedOp {
            work: Some(Box::new(op)),
            completion: None,
            is_kernel: true,
        });
        self.device.work_signal.notify_all();
    }

    /// Record an event: the returned future becomes ready when every op
    /// enqueued before this call has finished. This is the HPX CUDA
    /// future of §5.1.
    pub fn record_event(&self) -> Future<()> {
        let (promise, fut) = Promise::new();
        self.shared.push(QueuedOp {
            work: None,
            completion: Some(promise),
            is_kernel: false,
        });
        self.device.work_signal.notify_all();
        fut
    }

    /// Whether the stream has no queued or executing work — the test the
    /// launch policy performs before choosing GPU over CPU fallback.
    pub fn is_idle(&self) -> bool {
        self.shared.is_idle()
    }

    /// Number of operations enqueued but not yet completed.
    pub fn backlog(&self) -> usize {
        self.shared.backlog()
    }

    /// Block the calling thread until the stream drains (like
    /// `cudaStreamSynchronize`; prefer [`CudaStream::record_event`] plus
    /// a continuation in task code).
    pub fn synchronize(&self) {
        self.record_event().get();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceSpec};
    use amt::{CounterRegistry, Scheduler};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ops_run_in_order_within_a_stream() {
        let dev = Device::new(DeviceSpec::p100(), 1);
        let s = &dev.streams()[0];
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..100 {
            let log = Arc::clone(&log);
            s.enqueue(move || log.lock().push(i));
        }
        s.synchronize();
        assert_eq!(*log.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn event_covers_only_prior_ops() {
        let dev = Device::new(DeviceSpec::p100(), 1);
        let s = &dev.streams()[0];
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            s.enqueue(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let ev = s.record_event();
        // Ops enqueued after the event do not gate it.
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            s.enqueue(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        ev.get();
        assert!(counter.load(Ordering::SeqCst) >= 10);
        s.synchronize();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn idle_tracking() {
        let dev = Device::new(DeviceSpec::p100(), 2);
        let streams = dev.streams();
        assert!(streams[0].is_idle());
        let gate = Arc::new(AtomicU64::new(0));
        let g = Arc::clone(&gate);
        streams[0].enqueue(move || {
            while g.load(Ordering::SeqCst) == 0 {
                std::hint::spin_loop();
            }
        });
        assert!(!streams[0].is_idle());
        assert!(streams[1].is_idle(), "other streams unaffected");
        gate.store(1, Ordering::SeqCst);
        streams[0].synchronize();
        assert!(streams[0].is_idle());
        assert_eq!(streams[0].backlog(), 0);
    }

    #[test]
    fn event_future_chains_into_task_graph() {
        // The §5.1 integration: a GPU completion triggers a dependent
        // CPU task through the scheduler.
        let sched = Scheduler::new(2, Arc::new(CounterRegistry::new()));
        let dev = Device::new(DeviceSpec::v100(), 4);
        let s = &dev.streams()[0];
        let result = Arc::new(AtomicU64::new(0));
        let r = Arc::clone(&result);
        s.enqueue(move || {
            r.store(21, Ordering::SeqCst);
        });
        let r2 = Arc::clone(&result);
        let done = s
            .record_event()
            .then(&sched, move |()| r2.load(Ordering::SeqCst) * 2);
        assert_eq!(done.get_help(&sched), 42);
    }
}
