//! A simulated GPU co-processor with CUDA-style streams and HPX-style
//! stream-event futures (paper §5.1).
//!
//! The paper's GPU integration has three ingredients, all reproduced
//! here:
//!
//! 1. **Streams**: each device exposes (usually 128) in-order work
//!    queues. Kernels enqueued on a stream run in order; different
//!    streams run concurrently on the device ([`stream`]).
//! 2. **Stream events as futures**: "for any CUDA stream event we create
//!    an HPX future that becomes ready once operations in the stream (up
//!    to the point of the event's creation) are finished" — see
//!    [`stream::CudaStream::record_event`], implemented with the same
//!    callback mechanism.
//! 3. **The launch policy**: "when launching a kernel, a thread first
//!    checks whether all of the CUDA streams it manages are busy. If
//!    not, the kernel will be launched on the GPU using an idle stream.
//!    Otherwise, the kernel will be executed on the CPU by the current
//!    CPU worker thread" ([`launch_policy::StreamPool`]). The §6.1.2
//!    launch-fraction numbers fall out of this policy.
//!
//! Because no physical GPU exists in this reproduction, the device
//! *executes kernels for real* on a host thread (bit-identical results
//! to CPU fallback), while [`device::DeviceSpec`] carries the modelled
//! hardware characteristics (SM count, double-precision peak) that the
//! `perfmodel` crate uses to regenerate Table 2's GFLOP/s numbers.

//! A fourth ingredient comes from the follow-up paper on task-based
//! GPU work aggregation (arXiv:2210.06438): [`aggregation`] collects
//! same-kind kernel work items into slot windows and fuses each batch
//! into one stream launch, collapsing the per-launch overhead while the
//! §5.1 CPU fallback still degrades per item.

pub mod aggregation;
pub mod device;
pub mod launch_policy;
pub mod stream;

pub use aggregation::{AggItem, AggregationConfig, AggregationRegion, AggregationStats};
pub use device::{Device, DeviceSpec};
pub use launch_policy::{FusedOutcome, LaunchOutcome, LaunchStats, StreamPool};
pub use stream::CudaStream;
