//! Simulated devices and their hardware models.
//!
//! [`DeviceSpec`] carries the characteristics of the accelerators and
//! CPUs evaluated in Table 2 of the paper; [`Device`] is a live simulated
//! co-processor executing stream work on a dedicated host thread.

use crate::stream::{CudaStream, StreamShared};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Hardware model of a compute device (GPU or CPU used as a kernel
/// execution target). Peak numbers are double precision.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Streaming multiprocessors (GPU) or cores (CPU).
    pub sm_count: u32,
    /// Theoretical double-precision peak of the whole device, GFLOP/s.
    pub dp_peak_gflops: f64,
    /// Kernel launch overhead, microseconds.
    pub launch_overhead_us: f64,
    /// Number of concurrent streams the runtime drives (128 in the
    /// paper's configuration for GPUs; CPUs do not use streams).
    pub default_streams: usize,
}

impl DeviceSpec {
    /// NVIDIA Tesla P100 (Piz Daint's accelerator, Table 3): 56 SMs,
    /// 4.7 TFLOP/s double precision.
    pub fn p100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA Tesla P100",
            sm_count: 56,
            dp_peak_gflops: 4700.0,
            launch_overhead_us: 5.0,
            default_streams: 128,
        }
    }

    /// NVIDIA Tesla V100 (PCIe): 80 SMs, 7.0 TFLOP/s double precision.
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "NVIDIA Tesla V100",
            sm_count: 80,
            dp_peak_gflops: 7000.0,
            launch_overhead_us: 5.0,
            default_streams: 128,
        }
    }

    /// Intel Xeon E5-2660 v3, 10 cores @ 2.4 GHz. Peak = cores × clock ×
    /// 16 DP flops/cycle (AVX2 FMA on 2 ports) = 384 GFLOP/s; the paper's
    /// fractions of peak are consistent with ~416 GFLOP/s for 10 cores
    /// (125/0.30), i.e. they include the all-core turbo; we use the
    /// nominal number the paper states it used (base clock).
    pub fn xeon_e5_2660v3(cores: u32) -> DeviceSpec {
        DeviceSpec {
            name: "Intel Xeon E5-2660 v3",
            sm_count: cores,
            dp_peak_gflops: cores as f64 * 2.4 * 16.0,
            launch_overhead_us: 0.0,
            default_streams: 0,
        }
    }

    /// Intel Xeon E5-2690 v3, 12 cores @ 2.6 GHz (the Piz Daint host CPU
    /// of Table 3).
    pub fn xeon_e5_2690v3() -> DeviceSpec {
        DeviceSpec {
            name: "Intel Xeon E5-2690 v3",
            sm_count: 12,
            dp_peak_gflops: 12.0 * 2.6 * 16.0,
            launch_overhead_us: 0.0,
            default_streams: 0,
        }
    }

    /// Intel Xeon Phi 7210 (Knights Landing), 64 cores @ 1.3 GHz, AVX-512
    /// (32 DP flops/cycle): 2662 GFLOP/s at base clock, as the paper
    /// assumes for its fraction-of-peak numbers.
    pub fn xeon_phi_7210() -> DeviceSpec {
        DeviceSpec {
            name: "Intel Xeon Phi 7210",
            sm_count: 64,
            dp_peak_gflops: 64.0 * 1.3 * 32.0,
            launch_overhead_us: 0.0,
            default_streams: 0,
        }
    }

    /// Time to execute a kernel of `flops` floating point operations
    /// that occupies `blocks` SMs, at `efficiency` of per-SM peak, in
    /// microseconds. This is the cost model used by the Table 2 and
    /// §6.1.2 simulations.
    pub fn kernel_time_us(&self, flops: f64, blocks: u32, efficiency: f64) -> f64 {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency in (0,1]");
        let blocks = blocks.min(self.sm_count);
        let per_sm = self.dp_peak_gflops / self.sm_count as f64; // GFLOP/s per SM
        let rate = per_sm * blocks as f64 * efficiency; // GFLOP/s
        self.launch_overhead_us + flops / (rate * 1e3)
    }
}

/// A live simulated device: a host thread draining work from attached
/// streams in round-robin order, modelling the GPU as a co-processor.
/// Results are bit-identical to CPU execution (the same closures run).
pub struct Device {
    spec: DeviceSpec,
    shared: Arc<DeviceShared>,
    executor: Mutex<Option<JoinHandle<()>>>,
}

pub(crate) struct DeviceShared {
    pub(crate) streams: Mutex<Vec<Arc<StreamShared>>>,
    pub(crate) work_signal: Condvar,
    pub(crate) signal_lock: Mutex<()>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) kernels_executed: AtomicU64,
}

impl Device {
    /// Bring up a device with `n_streams` streams.
    pub fn new(spec: DeviceSpec, n_streams: usize) -> Arc<Device> {
        let shared = Arc::new(DeviceShared {
            streams: Mutex::new(Vec::new()),
            work_signal: Condvar::new(),
            signal_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            kernels_executed: AtomicU64::new(0),
        });
        let dev = Arc::new(Device {
            spec,
            shared: Arc::clone(&shared),
            executor: Mutex::new(None),
        });
        {
            let mut streams = shared.streams.lock();
            for _ in 0..n_streams {
                streams.push(Arc::new(StreamShared::new()));
            }
        }
        let sh = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("gpusim-{}", dev.spec.name))
            .spawn(move || device_main(sh))
            .expect("failed to spawn device executor");
        *dev.executor.lock() = Some(handle);
        dev
    }

    /// The hardware model.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Handles to all streams of this device.
    pub fn streams(self: &Arc<Device>) -> Vec<CudaStream> {
        self.shared
            .streams
            .lock()
            .iter()
            .map(|s| CudaStream::from_shared(Arc::clone(s), Arc::clone(&self.shared)))
            .collect()
    }

    /// Total kernels executed by the device so far.
    pub fn kernels_executed(&self) -> u64 {
        self.shared.kernels_executed.load(Ordering::Relaxed)
    }

    /// Stop the executor thread and join it. Remaining queued work is
    /// drained before exit so no event future is left broken.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_signal.notify_all();
        if let Some(h) = self.executor.lock().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Device {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn drain_streams(shared: &DeviceShared) -> bool {
    let mut did_work = false;
    let streams: Vec<Arc<StreamShared>> = shared.streams.lock().clone();
    for s in &streams {
        // In-order execution per stream: run everything queued.
        while let Some((op, is_kernel)) = s.pop() {
            op();
            if is_kernel {
                shared.kernels_executed.fetch_add(1, Ordering::Relaxed);
            }
            did_work = true;
        }
    }
    did_work
}

fn device_main(shared: Arc<DeviceShared>) {
    loop {
        if drain_streams(&shared) {
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Final drain: anything enqueued during the last sweep.
            if !drain_streams(&shared) {
                break;
            }
            continue;
        }
        let mut guard = shared.signal_lock.lock();
        shared
            .work_signal
            .wait_for(&mut guard, std::time::Duration::from_micros(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_have_sensible_peaks() {
        assert_eq!(DeviceSpec::p100().dp_peak_gflops, 4700.0);
        assert_eq!(DeviceSpec::v100().dp_peak_gflops, 7000.0);
        // KNL peak ~2.66 TFLOP/s DP at base clock.
        let knl = DeviceSpec::xeon_phi_7210();
        assert!((knl.dp_peak_gflops - 2662.4).abs() < 1.0);
        // 10-core Haswell at base clock: 384 GFLOP/s.
        let xeon = DeviceSpec::xeon_e5_2660v3(10);
        assert!((xeon.dp_peak_gflops - 384.0).abs() < 1.0);
    }

    #[test]
    fn kernel_time_scales_with_blocks_and_flops() {
        let p100 = DeviceSpec::p100();
        // The paper's multipole kernel: 455 flops x 549,888 interactions.
        let flops = 455.0 * 549_888.0;
        let t8 = p100.kernel_time_us(flops, 8, 0.5);
        let t4 = p100.kernel_time_us(flops, 4, 0.5);
        assert!(t4 > t8, "fewer blocks must be slower");
        let t_half = p100.kernel_time_us(flops / 2.0, 8, 0.5);
        assert!(t_half < t8);
        // Launch overhead bounds small kernels.
        let tiny = p100.kernel_time_us(1.0, 8, 0.5);
        assert!(tiny >= p100.launch_overhead_us);
    }

    #[test]
    fn blocks_clamped_to_sm_count() {
        let p100 = DeviceSpec::p100();
        let t56 = p100.kernel_time_us(1e9, 56, 1.0);
        let t999 = p100.kernel_time_us(1e9, 999, 1.0);
        assert_eq!(t56, t999);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn zero_efficiency_rejected() {
        let _ = DeviceSpec::p100().kernel_time_us(1.0, 8, 0.0);
    }

    #[test]
    fn device_executes_queued_work() {
        let dev = Device::new(DeviceSpec::p100(), 4);
        let streams = dev.streams();
        assert_eq!(streams.len(), 4);
        let counter = Arc::new(AtomicU64::new(0));
        for s in &streams {
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                s.enqueue(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        // Wait for all work via events on each stream.
        for s in &streams {
            s.synchronize();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 40);
        assert_eq!(dev.kernels_executed(), 40);
        dev.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let dev = Device::new(DeviceSpec::v100(), 2);
        let streams = dev.streams();
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            streams[0].enqueue(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        dev.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }
}
