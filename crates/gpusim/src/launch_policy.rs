//! The many-small-kernels launch policy of §5.1 / §6.1.2.
//!
//! "Each CPU thread manages a certain number of CUDA streams. When
//! launching a kernel, a thread first checks whether all of the CUDA
//! streams it manages are busy. If not, the kernel will be launched on
//! the GPU using an idle stream. Otherwise, the kernel will be executed
//! on the CPU by the current CPU worker thread."
//!
//! [`StreamPool`] partitions a device's streams across CPU worker
//! threads and implements exactly that decision; [`LaunchStats`] counts
//! the split, which is the §6.1.2 observable (97.4995% / 99.9997% /
//! 99.5207% of multipole kernels launched on the GPU for the three
//! configurations). The paper also names the limitation — "there is no
//! reason not to launch multiple FMM kernels in one stream if there is
//! no empty stream available" — which is provided as the opt-in
//! [`QueuePolicy::QueueOnBusy`] variant (the fix promised for the next
//! Octo-Tiger version, reproduced here as an ablation).

use crate::aggregation::AggItem;
use crate::stream::CudaStream;
use amt::Future;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to do when every stream owned by the calling worker is busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Paper behaviour: fall back to executing on the CPU.
    CpuFallback,
    /// §6.1.2's proposed fix: enqueue on the least-loaded stream anyway.
    QueueOnBusy,
}

/// Where a kernel ended up.
pub enum LaunchOutcome {
    /// Launched on the device; the future fires when it completes.
    Gpu(Future<()>),
    /// All owned streams were busy; the kernel is handed back and the
    /// caller must run it on the CPU (already counted in the stats).
    CpuFallback(Box<dyn FnOnce() + Send + 'static>),
}

/// Where a *fused batch* of work items ended up.
pub enum FusedOutcome {
    /// The whole batch was enqueued as one device launch; the future
    /// fires when the batch completes.
    Gpu(Future<()>),
    /// All owned streams were busy; the items are handed back and the
    /// caller must run each on the CPU (already counted in the stats).
    CpuFallback(Vec<AggItem>),
}

/// Counters for the GPU/CPU launch split.
#[derive(Default)]
pub struct LaunchStats {
    gpu: AtomicU64,
    cpu: AtomicU64,
}

impl LaunchStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn count_gpu(&self) {
        self.gpu.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_cpu(&self) {
        self.cpu.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` kernels launched on the GPU at once (a fused batch
    /// still counts its items individually — the §6.1.2 fraction is a
    /// per-kernel observable, independent of batching).
    pub fn count_gpu_n(&self, n: u64) {
        self.gpu.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` kernels that fell back to the CPU at once.
    pub fn count_cpu_n(&self, n: u64) {
        self.cpu.fetch_add(n, Ordering::Relaxed);
    }

    pub fn gpu_launches(&self) -> u64 {
        self.gpu.load(Ordering::Relaxed)
    }

    pub fn cpu_launches(&self) -> u64 {
        self.cpu.load(Ordering::Relaxed)
    }

    /// Fraction of kernels that ran on the GPU (the §6.1.2 percentages).
    pub fn gpu_fraction(&self) -> f64 {
        let g = self.gpu_launches() as f64;
        let c = self.cpu_launches() as f64;
        if g + c == 0.0 {
            return 0.0;
        }
        g / (g + c)
    }
}

/// The streams owned by one CPU worker thread, plus the launch decision.
pub struct StreamPool {
    streams: Vec<CudaStream>,
    policy: QueuePolicy,
    stats: Arc<LaunchStats>,
}

impl StreamPool {
    /// Partition `streams` of a device across `n_workers` pools; pool
    /// `worker` receives every `n_workers`-th stream. Mirrors the paper's
    /// static assignment of streams to CPU threads.
    pub fn partition(
        streams: Vec<CudaStream>,
        n_workers: usize,
        policy: QueuePolicy,
        stats: Arc<LaunchStats>,
    ) -> Vec<StreamPool> {
        assert!(n_workers > 0, "need at least one worker");
        let mut pools: Vec<Vec<CudaStream>> = (0..n_workers).map(|_| Vec::new()).collect();
        for (i, s) in streams.into_iter().enumerate() {
            pools[i % n_workers].push(s);
        }
        pools
            .into_iter()
            .map(|streams| StreamPool { streams, policy, stats: Arc::clone(&stats) })
            .collect()
    }

    /// Number of streams this pool owns.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether this pool owns no streams (always CPU fallback then).
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Try to launch `kernel`. Follows §5.1: find an idle stream among
    /// the ones this worker manages; if none, apply the queue policy.
    pub fn launch(&self, kernel: impl FnOnce() + Send + 'static) -> LaunchOutcome {
        if let Some(s) = self.streams.iter().find(|s| s.is_idle()) {
            s.enqueue(kernel);
            self.stats.count_gpu();
            return LaunchOutcome::Gpu(s.record_event());
        }
        // A pool with no streams has nothing to queue on either: both
        // policies degrade to the CPU.
        match self.policy {
            QueuePolicy::QueueOnBusy if !self.streams.is_empty() => {
                let s = self.streams.iter().min_by_key(|s| s.backlog()).unwrap();
                s.enqueue(kernel);
                self.stats.count_gpu();
                LaunchOutcome::Gpu(s.record_event())
            }
            _ => {
                self.stats.count_cpu();
                LaunchOutcome::CpuFallback(Box::new(kernel))
            }
        }
    }

    /// Launch a *fused batch*: the same §5.1 decision as
    /// [`StreamPool::launch`], but the whole batch is one device launch
    /// running every item in submission order. On CPU fallback the
    /// items are handed back untouched so the caller degrades per item.
    /// [`LaunchStats`] counts items, not batches, either way.
    pub fn launch_fused(&self, items: Vec<AggItem>) -> FusedOutcome {
        let n = items.len() as u64;
        if let Some(s) = self.streams.iter().find(|s| s.is_idle()) {
            self.stats.count_gpu_n(n);
            s.enqueue(move || {
                for item in items {
                    item(true);
                }
            });
            return FusedOutcome::Gpu(s.record_event());
        }
        match self.policy {
            QueuePolicy::QueueOnBusy if !self.streams.is_empty() => {
                let s = self.streams.iter().min_by_key(|s| s.backlog()).unwrap();
                self.stats.count_gpu_n(n);
                s.enqueue(move || {
                    for item in items {
                        item(true);
                    }
                });
                FusedOutcome::Gpu(s.record_event())
            }
            _ => {
                self.stats.count_cpu_n(n);
                FusedOutcome::CpuFallback(items)
            }
        }
    }

    /// Block until every stream of this pool has drained.
    pub fn synchronize(&self) {
        for s in &self.streams {
            s.synchronize();
        }
    }

    /// Shared launch statistics.
    pub fn stats(&self) -> &Arc<LaunchStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceSpec};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn partition_splits_streams_evenly() {
        let dev = Device::new(DeviceSpec::p100(), 128);
        let pools = StreamPool::partition(
            dev.streams(),
            12,
            QueuePolicy::CpuFallback,
            Arc::new(LaunchStats::new()),
        );
        assert_eq!(pools.len(), 12);
        let total: usize = pools.iter().map(|p| p.len()).sum();
        assert_eq!(total, 128);
        // 128 streams over 12 workers: sizes 10 or 11.
        assert!(pools.iter().all(|p| p.len() == 10 || p.len() == 11));
    }

    #[test]
    fn idle_stream_is_used() {
        let dev = Device::new(DeviceSpec::p100(), 4);
        let stats = Arc::new(LaunchStats::new());
        let pools =
            StreamPool::partition(dev.streams(), 1, QueuePolicy::CpuFallback, Arc::clone(&stats));
        let hit = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hit);
        match pools[0].launch(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }) {
            LaunchOutcome::Gpu(ev) => ev.get(),
            LaunchOutcome::CpuFallback(_) => panic!("idle stream must be used"),
        }
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(stats.gpu_launches(), 1);
        assert_eq!(stats.cpu_launches(), 0);
        assert_eq!(stats.gpu_fraction(), 1.0);
    }

    #[test]
    fn busy_streams_trigger_cpu_fallback() {
        let dev = Device::new(DeviceSpec::p100(), 2);
        let stats = Arc::new(LaunchStats::new());
        let pools =
            StreamPool::partition(dev.streams(), 1, QueuePolicy::CpuFallback, Arc::clone(&stats));
        let pool = &pools[0];
        // Block both streams.
        let gate = Arc::new(AtomicUsize::new(0));
        let mut events = Vec::new();
        for _ in 0..2 {
            let g = Arc::clone(&gate);
            match pool.launch(move || {
                while g.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
            }) {
                LaunchOutcome::Gpu(ev) => events.push(ev),
                LaunchOutcome::CpuFallback(_) => panic!("streams were idle"),
            }
        }
        // Now every stream is busy: the kernel must fall back.
        let ran_inline = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran_inline);
        match pool.launch(move || {
            r.fetch_add(1, Ordering::SeqCst);
        }) {
            LaunchOutcome::Gpu(_) => panic!("no stream can be idle"),
            LaunchOutcome::CpuFallback(kernel) => {
                // Caller runs the kernel itself, as Octo-Tiger does
                // (launch() already counted the fallback).
                kernel();
            }
        }
        gate.store(1, Ordering::SeqCst);
        for ev in events {
            ev.get();
        }
        assert_eq!(ran_inline.load(Ordering::SeqCst), 1);
        assert_eq!(stats.cpu_launches(), 1);
        assert!(stats.gpu_fraction() < 1.0);
    }

    #[test]
    fn queue_on_busy_never_falls_back() {
        let dev = Device::new(DeviceSpec::p100(), 1);
        let stats = Arc::new(LaunchStats::new());
        let pools =
            StreamPool::partition(dev.streams(), 1, QueuePolicy::QueueOnBusy, Arc::clone(&stats));
        let pool = &pools[0];
        let count = Arc::new(AtomicUsize::new(0));
        let mut last = None;
        for _ in 0..50 {
            let c = Arc::clone(&count);
            match pool.launch(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }) {
                LaunchOutcome::Gpu(ev) => last = Some(ev),
                LaunchOutcome::CpuFallback(_) => panic!("QueueOnBusy must queue"),
            }
        }
        last.unwrap().get();
        // In-order stream: by the time the last event fires all 50 ran.
        assert_eq!(count.load(Ordering::SeqCst), 50);
        assert_eq!(stats.gpu_launches(), 50);
        assert_eq!(stats.gpu_fraction(), 1.0);
    }

    #[test]
    fn empty_stats_fraction_is_zero() {
        assert_eq!(LaunchStats::new().gpu_fraction(), 0.0);
    }
}
