//! Streaming statistics and error norms used by the benchmark harnesses
//! and the verification suite.

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); NaN for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Relative error helper for comparing conserved quantities against a
/// reference value, guarding against a zero reference.
#[derive(Debug, Clone, Copy)]
pub struct RelErr {
    reference: f64,
}

impl RelErr {
    pub fn against(reference: f64) -> Self {
        RelErr { reference }
    }

    /// `|x - ref| / max(|ref|, floor)`.
    pub fn of(&self, x: f64) -> f64 {
        let denom = self.reference.abs().max(1e-300);
        (x - self.reference).abs() / denom
    }
}

/// L1 norm of the difference of two equally sized samples, normalized by
/// the sample count (the standard error measure for Sod/Sedov tests).
pub fn l1_error(computed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(computed.len(), reference.len(), "length mismatch in l1_error");
    if computed.is_empty() {
        return 0.0;
    }
    let sum: f64 = computed.iter().zip(reference).map(|(c, r)| (c - r).abs()).sum();
    sum / computed.len() as f64
}

/// L-infinity norm of the difference of two equally sized samples.
pub fn linf_error(computed: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(computed.len(), reference.len(), "length mismatch in linf_error");
    computed
        .iter()
        .zip(reference)
        .map(|(c, r)| (c - r).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_of_constant() {
        let mut s = OnlineStats::new();
        for _ in 0..10 {
            s.push(4.25);
        }
        assert_eq!(s.count(), 10);
        assert_eq!(s.mean(), 4.25);
        assert!(s.variance().abs() < 1e-30);
        assert_eq!(s.min(), 4.25);
        assert_eq!(s.max(), 4.25);
    }

    #[test]
    fn stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn rel_err_zero_reference_does_not_divide_by_zero() {
        let r = RelErr::against(0.0);
        assert!(r.of(1.0).is_finite());
    }

    #[test]
    fn l1_and_linf() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 5.0];
        assert!((l1_error(&a, &b) - 1.0).abs() < 1e-15);
        assert!((linf_error(&a, &b) - 2.0).abs() < 1e-15);
        assert_eq!(l1_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic]
    fn l1_length_mismatch_panics() {
        let _ = l1_error(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn merge_equals_sequential(xs in proptest::collection::vec(-1e3f64..1e3, 1..64),
                                   ys in proptest::collection::vec(-1e3f64..1e3, 1..64)) {
            let mut a = OnlineStats::new();
            for &x in &xs { a.push(x); }
            let mut b = OnlineStats::new();
            for &y in &ys { b.push(y); }
            a.merge(&b);

            let mut seq = OnlineStats::new();
            for &x in xs.iter().chain(ys.iter()) { seq.push(x); }

            prop_assert_eq!(a.count(), seq.count());
            prop_assert!((a.mean() - seq.mean()).abs() < 1e-9);
            prop_assert!((a.variance() - seq.variance()).abs() < 1e-6);
            prop_assert_eq!(a.min(), seq.min());
            prop_assert_eq!(a.max(), seq.max());
        }
    }
}
