//! Morton (Z-order) space-filling-curve keys.
//!
//! Octo-Tiger distributes its octree nodes onto compute nodes (localities)
//! using a space filling curve (paper §4.2). We use Morton order: each
//! octree node at level `l` with integer coordinates `(x, y, z)` in
//! `[0, 2^l)` maps to a key obtained by interleaving the coordinate bits.
//! Keys at different levels are made comparable by prefixing with the
//! level, so a sorted list of keys enumerates the leaves of the tree in
//! curve order, which is what the SFC partitioner consumes.

/// A Morton key: level plus bit-interleaved coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MortonKey {
    /// Octree refinement level (0 = root). At most [`MortonKey::MAX_LEVEL`].
    pub level: u8,
    /// Interleaved bits, `3 * level` significant bits.
    pub code: u64,
}

serde::impl_codec_struct!(MortonKey { level, code });

impl MortonKey {
    /// 21 levels * 3 bits fit in a u64 with a bit to spare.
    pub const MAX_LEVEL: u8 = 21;

    /// Build a key from a level and integer coordinates in `[0, 2^level)`.
    ///
    /// # Panics
    /// If `level > MAX_LEVEL` or any coordinate is out of range.
    pub fn new(level: u8, x: u32, y: u32, z: u32) -> Self {
        assert!(level <= Self::MAX_LEVEL, "level {level} exceeds maximum");
        let bound = 1u64 << level;
        assert!(
            (x as u64) < bound && (y as u64) < bound && (z as u64) < bound,
            "coordinates ({x},{y},{z}) out of range for level {level}"
        );
        MortonKey { level, code: morton_encode(x, y, z) }
    }

    /// The root key.
    pub const fn root() -> Self {
        MortonKey { level: 0, code: 0 }
    }

    /// Integer coordinates of this key.
    pub fn coords(self) -> (u32, u32, u32) {
        morton_decode(self.code)
    }

    /// Key of the parent node; `None` at the root.
    pub fn parent(self) -> Option<MortonKey> {
        if self.level == 0 {
            None
        } else {
            Some(MortonKey { level: self.level - 1, code: self.code >> 3 })
        }
    }

    /// Key of child `octant` (0..8, bit 0 = x, bit 1 = y, bit 2 = z).
    pub fn child(self, octant: u8) -> MortonKey {
        assert!(octant < 8, "octant must be in 0..8");
        assert!(self.level < Self::MAX_LEVEL, "cannot refine beyond max level");
        MortonKey { level: self.level + 1, code: (self.code << 3) | octant as u64 }
    }

    /// Which child of its parent this key is (0..8); 0 for the root.
    pub fn octant(self) -> u8 {
        (self.code & 0b111) as u8
    }

    /// Whether `self` is an ancestor of (or equal to) `other`.
    pub fn is_ancestor_of(self, other: MortonKey) -> bool {
        if self.level > other.level {
            return false;
        }
        let shift = 3 * (other.level - self.level) as u64;
        (other.code >> shift) == self.code
    }

    /// The neighbor at integer offset `(dx, dy, dz)` on the same level, or
    /// `None` if it would fall outside the root domain.
    pub fn neighbor(self, dx: i32, dy: i32, dz: i32) -> Option<MortonKey> {
        let (x, y, z) = self.coords();
        let bound = 1i64 << self.level;
        let nx = x as i64 + dx as i64;
        let ny = y as i64 + dy as i64;
        let nz = z as i64 + dz as i64;
        if nx < 0 || ny < 0 || nz < 0 || nx >= bound || ny >= bound || nz >= bound {
            None
        } else {
            Some(MortonKey::new(self.level, nx as u32, ny as u32, nz as u32))
        }
    }

    /// Linear position along the curve at this key's own level.
    pub fn curve_index(self) -> u64 {
        self.code
    }
}

/// Spread the low 21 bits of `v` so there are two zero bits between each.
#[inline]
fn spread_bits(v: u32) -> u64 {
    let mut x = (v as u64) & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`spread_bits`].
#[inline]
fn compact_bits(x: u64) -> u32 {
    let mut x = x & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x as u32
}

/// Interleave the bits of three 21-bit coordinates into a Morton code.
#[inline]
pub fn morton_encode(x: u32, y: u32, z: u32) -> u64 {
    spread_bits(x) | (spread_bits(y) << 1) | (spread_bits(z) << 2)
}

/// Recover the three coordinates from a Morton code.
#[inline]
pub fn morton_decode(code: u64) -> (u32, u32, u32) {
    (compact_bits(code), compact_bits(code >> 1), compact_bits(code >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_examples() {
        assert_eq!(morton_encode(0, 0, 0), 0);
        assert_eq!(morton_encode(1, 0, 0), 0b001);
        assert_eq!(morton_encode(0, 1, 0), 0b010);
        assert_eq!(morton_encode(0, 0, 1), 0b100);
        assert_eq!(morton_encode(1, 1, 1), 0b111);
        assert_eq!(morton_encode(2, 0, 0), 0b001_000);
    }

    #[test]
    fn parent_child_roundtrip() {
        let k = MortonKey::new(5, 13, 7, 22);
        for oct in 0..8 {
            let c = k.child(oct);
            assert_eq!(c.parent().unwrap(), k);
            assert_eq!(c.octant(), oct);
            assert!(k.is_ancestor_of(c));
            assert!(!c.is_ancestor_of(k));
        }
    }

    #[test]
    fn root_has_no_parent() {
        assert_eq!(MortonKey::root().parent(), None);
    }

    #[test]
    fn neighbors_clip_at_domain_boundary() {
        let k = MortonKey::new(2, 0, 0, 3);
        assert!(k.neighbor(-1, 0, 0).is_none());
        assert!(k.neighbor(0, 0, 1).is_none());
        let n = k.neighbor(1, 1, -1).unwrap();
        assert_eq!(n.coords(), (1, 1, 2));
    }

    #[test]
    #[should_panic]
    fn out_of_range_coord_panics() {
        let _ = MortonKey::new(2, 4, 0, 0);
    }

    #[test]
    fn sibling_order_is_curve_order() {
        let parent = MortonKey::new(3, 1, 2, 3);
        let mut codes: Vec<u64> = (0..8).map(|o| parent.child(o).code).collect();
        let sorted = codes.clone();
        codes.sort_unstable();
        assert_eq!(codes, sorted);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(x in 0u32..(1 << 21), y in 0u32..(1 << 21), z in 0u32..(1 << 21)) {
            let code = morton_encode(x, y, z);
            prop_assert_eq!(morton_decode(code), (x, y, z));
        }

        #[test]
        fn locality_of_curve(x in 0u32..255, y in 0u32..255, z in 0u32..255) {
            // Adjacent cells along x differ only in x bits: the decoded
            // neighbour of the neighbour returns to the original cell.
            let k = MortonKey::new(8, x, y, z);
            if let Some(n) = k.neighbor(1, 0, 0) {
                prop_assert_eq!(n.neighbor(-1, 0, 0).unwrap(), k);
            }
        }

        #[test]
        fn ancestor_transitivity(x in 0u32..(1<<6), y in 0u32..(1<<6), z in 0u32..(1<<6), o1 in 0u8..8, o2 in 0u8..8) {
            let k = MortonKey::new(6, x, y, z);
            let c = k.child(o1);
            let g = c.child(o2);
            prop_assert!(k.is_ancestor_of(g));
            prop_assert!(c.is_ancestor_of(g));
        }
    }
}
