//! A minimal 3-component vector of `f64` used throughout the solvers.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// A Cartesian 3-vector of `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

serde::impl_codec_struct!(Vec3 { x, y, z });

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All three components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Unit vector in the direction of `self`; `None` for (near) zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, s: f64) {
        *self = *self * s;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, s: f64) {
        *self = *self / s;
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-12 * (1.0 + a.abs() + b.abs())
    }

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b, Vec3::new(-3.0, 7.0, 3.5));
        assert_eq!(a - b, Vec3::new(5.0, -3.0, 2.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
        assert_eq!(x.dot(y), 0.0);
    }

    #[test]
    fn indexing_roundtrip() {
        let mut v = Vec3::new(7.0, 8.0, 9.0);
        for i in 0..3 {
            v[i] += 1.0;
        }
        assert_eq!(v.to_array(), [8.0, 9.0, 10.0]);
        assert_eq!(Vec3::from_array([8.0, 9.0, 10.0]), v);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!(close(n.norm(), 1.0));
    }

    proptest! {
        #[test]
        fn cross_is_orthogonal(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            // |a.(a x b)| should vanish relative to the magnitudes involved.
            let scale = (a.norm() * a.norm() * b.norm()).max(1.0);
            prop_assert!((a.dot(c) / scale).abs() < 1e-12);
            prop_assert!((b.dot(c) / scale).abs() < 1e-12);
        }

        #[test]
        fn sum_matches_fold(vals in proptest::collection::vec(-1e6f64..1e6, 0..32)) {
            let vs: Vec<Vec3> = vals.iter().map(|&v| Vec3::splat(v)).collect();
            let total: Vec3 = vs.iter().copied().sum();
            let expect: f64 = vals.iter().sum();
            prop_assert!(close(total.x, expect));
            prop_assert!(close(total.y, expect));
            prop_assert!(close(total.z, expect));
        }
    }
}
