//! Physical constants and the code unit system.
//!
//! The V1309 Scorpii scenario of the paper is posed in solar units: masses
//! in solar masses, lengths in solar radii. Internally every solver works
//! in *code units* in which the gravitational constant `G = 1`; this module
//! provides the conversions and the scenario constants quoted in §6 of the
//! paper.

/// Gravitational constant in CGS, cm^3 g^-1 s^-2.
pub const G_CGS: f64 = 6.674_30e-8;
/// Solar mass in grams.
pub const MSUN_CGS: f64 = 1.988_92e33;
/// Solar radius in centimetres.
pub const RSUN_CGS: f64 = 6.957e10;
/// Seconds per day.
pub const DAY_S: f64 = 86_400.0;

/// V1309 scenario constants from §6 of the paper.
pub mod v1309 {
    /// Primary (accretor) mass, solar masses.
    pub const M_PRIMARY: f64 = 1.54;
    /// Secondary (donor) mass, solar masses.
    pub const M_SECONDARY: f64 = 0.17;
    /// Initial separation of the centres of mass, solar radii.
    pub const SEPARATION: f64 = 6.37;
    /// Edge length of the cubic simulation domain, solar radii.
    pub const DOMAIN_EDGE: f64 = 1.02e3;
    /// Initial orbital (grid rotation) period, days.
    pub const PERIOD_DAYS: f64 = 1.42;
    /// Finest cell size at refinement level 14, solar radii.
    pub const DX_LEVEL14: f64 = 7.80e-3;
    /// Finest cell size at refinement level 17, solar radii.
    pub const DX_LEVEL17: f64 = 9.750e-4;
}

/// A unit system with `G = 1`, mass unit `M0` (g) and length unit `L0` (cm).
/// The time unit follows as `sqrt(L0^3 / (G M0))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitSystem {
    /// Mass unit in grams.
    pub mass_g: f64,
    /// Length unit in centimetres.
    pub length_cm: f64,
}

impl UnitSystem {
    /// Solar units: mass in M⊙, length in R⊙, `G = 1`.
    pub fn solar() -> Self {
        UnitSystem { mass_g: MSUN_CGS, length_cm: RSUN_CGS }
    }

    /// The derived time unit in seconds.
    pub fn time_s(&self) -> f64 {
        (self.length_cm.powi(3) / (G_CGS * self.mass_g)).sqrt()
    }

    /// The derived velocity unit in cm/s.
    pub fn velocity_cm_s(&self) -> f64 {
        self.length_cm / self.time_s()
    }

    /// The derived density unit in g/cm^3.
    pub fn density_g_cm3(&self) -> f64 {
        self.mass_g / self.length_cm.powi(3)
    }

    /// Convert a time from days to code units.
    pub fn days_to_code(&self, days: f64) -> f64 {
        days * DAY_S / self.time_s()
    }

    /// Convert a time from code units to days.
    pub fn code_to_days(&self, t: f64) -> f64 {
        t * self.time_s() / DAY_S
    }
}

/// Keplerian orbital angular velocity for total mass `m` (code units) and
/// separation `a` (code units), with `G = 1`.
pub fn kepler_omega(m_total: f64, a: f64) -> f64 {
    assert!(m_total > 0.0 && a > 0.0, "mass and separation must be positive");
    (m_total / (a * a * a)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solar_time_unit_is_about_1600_seconds() {
        // sqrt(Rsun^3/(G Msun)) ≈ 1593 s: the solar dynamical time.
        let t = UnitSystem::solar().time_s();
        assert!((1500.0..1700.0).contains(&t), "t = {t}");
    }

    #[test]
    fn v1309_orbital_period_consistent_with_kepler() {
        // P = 2 pi / omega for M = 1.71 Msun, a = 6.37 Rsun should be about
        // the paper's 1.42 days.
        let u = UnitSystem::solar();
        let omega = kepler_omega(v1309::M_PRIMARY + v1309::M_SECONDARY, v1309::SEPARATION);
        let period_days = u.code_to_days(2.0 * std::f64::consts::PI / omega);
        assert!(
            (period_days - v1309::PERIOD_DAYS).abs() < 0.08,
            "period = {period_days} days, paper gives 1.42"
        );
    }

    #[test]
    fn domain_is_160x_separation() {
        // §6: the domain edge is about 160 times the initial separation.
        let ratio = v1309::DOMAIN_EDGE / v1309::SEPARATION;
        assert!((155.0..165.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn level14_cell_size_matches_refinement() {
        // dx(level) = domain / (8 * 2^level): level 14 ≈ 7.78e-3 Rsun,
        // level 17 is 8x finer, matching the paper's 9.75e-4.
        let dx14 = v1309::DOMAIN_EDGE / (8.0 * (1u64 << 14) as f64);
        assert!((dx14 - v1309::DX_LEVEL14).abs() / v1309::DX_LEVEL14 < 0.01, "dx14 = {dx14}");
        let dx17 = dx14 / 8.0;
        assert!((dx17 - v1309::DX_LEVEL17).abs() / v1309::DX_LEVEL17 < 0.01, "dx17 = {dx17}");
    }

    #[test]
    fn conversions_roundtrip() {
        let u = UnitSystem::solar();
        let t = 3.7;
        assert!((u.days_to_code(u.code_to_days(t)) - t).abs() < 1e-12);
        assert!(u.velocity_cm_s() > 0.0);
        assert!(u.density_g_cm3() > 0.0);
    }

    #[test]
    #[should_panic]
    fn kepler_rejects_nonpositive() {
        let _ = kepler_omega(0.0, 1.0);
    }
}
