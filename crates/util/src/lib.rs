//! Shared math and utility types for the octotiger-rs workspace.
//!
//! This crate collects the small, dependency-free building blocks used by
//! every other crate in the reproduction of *"From Piz Daint to the Stars"*
//! (Daiß et al., SC '19): a 3-vector type, Morton (Z-order) space filling
//! curve codes used to distribute octree nodes over localities, index
//! helpers for `N^3` sub-grids with ghost layers, and streaming statistics
//! used by the benchmark harnesses.

pub mod digest;
pub mod error;
pub mod indexing;
pub mod morton;
pub mod simd;
pub mod stats;
pub mod units;
pub mod vec3;

pub use digest::{fnv1a64, Fnv1a};
pub use error::{Error, Result};
pub use indexing::{CellIter, GridIndexer};
pub use morton::{morton_decode, morton_encode, MortonKey};
pub use simd::F64x4;
pub use stats::{OnlineStats, RelErr};
pub use vec3::Vec3;

/// Machine epsilon scale used in conservation assertions.
///
/// Conservation "to machine precision" in the paper means the relative
/// drift per step is a small multiple of `f64::EPSILON`; accumulating over
/// `k` cells/steps multiplies the bound by roughly `sqrt(k)`..`k`.
pub fn conservation_tolerance(n_ops: usize) -> f64 {
    f64::EPSILON * 32.0 * (n_ops.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_scales_with_ops() {
        assert!(conservation_tolerance(10) < conservation_tolerance(1000));
        assert!(conservation_tolerance(0) > 0.0);
    }
}
