//! Index arithmetic for cubic sub-grids with ghost layers.
//!
//! Octo-Tiger stores the evolved variables of each octree node in an
//! `N^3` sub-grid (`N = 8` in all of the paper's runs) surrounded by a
//! ghost (halo) layer filled from neighboring nodes. [`GridIndexer`]
//! centralizes the flattened-index arithmetic so solver kernels do not
//! hand-roll strides.

/// Index arithmetic for an `n^3` interior with `ghost` halo cells per side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridIndexer {
    /// Interior cells per dimension.
    pub n: usize,
    /// Ghost cells per side.
    pub ghost: usize,
}

impl GridIndexer {
    pub const fn new(n: usize, ghost: usize) -> Self {
        GridIndexer { n, ghost }
    }

    /// Total cells per dimension including ghosts.
    #[inline]
    pub const fn dim(&self) -> usize {
        self.n + 2 * self.ghost
    }

    /// Total number of cells including ghosts.
    #[inline]
    pub const fn len(&self) -> usize {
        let d = self.dim();
        d * d * d
    }

    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of interior cells.
    #[inline]
    pub const fn interior_len(&self) -> usize {
        self.n * self.n * self.n
    }

    /// Flattened index of interior-relative coordinates (may address ghost
    /// cells with negative or `>= n` components).
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let d = self.dim() as isize;
        let g = self.ghost as isize;
        debug_assert!(i >= -g && i < self.n as isize + g, "i={i} out of range");
        debug_assert!(j >= -g && j < self.n as isize + g, "j={j} out of range");
        debug_assert!(k >= -g && k < self.n as isize + g, "k={k} out of range");
        (((i + g) * d + (j + g)) * d + (k + g)) as usize
    }

    /// Inverse of [`GridIndexer::idx`]: interior-relative coordinates.
    #[inline]
    pub fn coords(&self, idx: usize) -> (isize, isize, isize) {
        let d = self.dim();
        debug_assert!(idx < self.len());
        let g = self.ghost as isize;
        let k = (idx % d) as isize - g;
        let j = ((idx / d) % d) as isize - g;
        let i = (idx / (d * d)) as isize - g;
        (i, j, k)
    }

    /// Whether interior-relative coordinates address an interior cell.
    #[inline]
    pub fn is_interior(&self, i: isize, j: isize, k: isize) -> bool {
        let n = self.n as isize;
        (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k)
    }

    /// Iterate over interior coordinates in row-major order.
    pub fn interior(&self) -> CellIter {
        let n = self.n as isize;
        CellIter::new(0, n, 0, n, 0, n)
    }

    /// Iterate over every cell including ghosts.
    pub fn all(&self) -> CellIter {
        let g = self.ghost as isize;
        let hi = self.n as isize + g;
        CellIter::new(-g, hi, -g, hi, -g, hi)
    }

    /// Stride along each axis (i, j, k) in the flattened layout.
    #[inline]
    pub const fn strides(&self) -> (usize, usize, usize) {
        let d = self.dim();
        (d * d, d, 1)
    }
}

/// Row-major iterator over an axis-aligned box of cell coordinates.
#[derive(Debug, Clone)]
pub struct CellIter {
    i: isize,
    j: isize,
    k: isize,
    i_hi: isize,
    j_lo: isize,
    j_hi: isize,
    k_lo: isize,
    k_hi: isize,
    done: bool,
}

impl CellIter {
    /// Iterate `i` in `[i_lo, i_hi)`, `j` in `[j_lo, j_hi)`, `k` in `[k_lo, k_hi)`.
    pub fn new(i_lo: isize, i_hi: isize, j_lo: isize, j_hi: isize, k_lo: isize, k_hi: isize) -> Self {
        let done = i_lo >= i_hi || j_lo >= j_hi || k_lo >= k_hi;
        CellIter { i: i_lo, j: j_lo, k: k_lo, i_hi, j_lo, j_hi, k_lo, k_hi, done }
    }
}

impl Iterator for CellIter {
    type Item = (isize, isize, isize);

    fn next(&mut self) -> Option<(isize, isize, isize)> {
        if self.done {
            return None;
        }
        let out = (self.i, self.j, self.k);
        self.k += 1;
        if self.k == self.k_hi {
            self.k = self.k_lo;
            self.j += 1;
            if self.j == self.j_hi {
                self.j = self.j_lo;
                self.i += 1;
                if self.i == self.i_hi {
                    self.done = true;
                }
            }
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.done {
            return (0, Some(0));
        }
        let per_i = ((self.j_hi - self.j_lo) * (self.k_hi - self.k_lo)) as usize;
        let remaining_full_i = (self.i_hi - self.i - 1) as usize * per_i;
        let per_j = (self.k_hi - self.k_lo) as usize;
        let remaining_full_j = (self.j_hi - self.j - 1) as usize * per_j;
        let remaining_k = (self.k_hi - self.k) as usize;
        let n = remaining_full_i + remaining_full_j + remaining_k;
        (n, Some(n))
    }

    #[allow(clippy::redundant_closure_call)]
    fn count(self) -> usize {
        self.size_hint().0
    }
}

impl ExactSizeIterator for CellIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dims_and_lengths() {
        let g = GridIndexer::new(8, 2);
        assert_eq!(g.dim(), 12);
        assert_eq!(g.len(), 12 * 12 * 12);
        assert_eq!(g.interior_len(), 512);
        assert!(!g.is_empty());
    }

    #[test]
    fn idx_is_dense_and_in_bounds() {
        let g = GridIndexer::new(4, 1);
        let mut seen = vec![false; g.len()];
        for (i, j, k) in g.all() {
            let idx = g.idx(i, j, k);
            assert!(!seen[idx], "duplicate index for ({i},{j},{k})");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coords_inverts_idx() {
        let g = GridIndexer::new(8, 2);
        for (i, j, k) in g.all() {
            assert_eq!(g.coords(g.idx(i, j, k)), (i, j, k));
        }
    }

    #[test]
    fn interior_iter_counts() {
        let g = GridIndexer::new(8, 1);
        assert_eq!(g.interior().count(), 512);
        assert_eq!(g.all().count(), 1000);
        let v: Vec<_> = g.interior().collect();
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(*v.last().unwrap(), (7, 7, 7));
    }

    #[test]
    fn interior_test() {
        let g = GridIndexer::new(8, 1);
        assert!(g.is_interior(0, 0, 0));
        assert!(g.is_interior(7, 7, 7));
        assert!(!g.is_interior(-1, 0, 0));
        assert!(!g.is_interior(0, 8, 0));
    }

    #[test]
    fn strides_match_idx() {
        let g = GridIndexer::new(8, 2);
        let (si, sj, sk) = g.strides();
        let base = g.idx(3, 3, 3);
        assert_eq!(g.idx(4, 3, 3), base + si);
        assert_eq!(g.idx(3, 4, 3), base + sj);
        assert_eq!(g.idx(3, 3, 4), base + sk);
    }

    #[test]
    fn empty_iter() {
        let it = CellIter::new(0, 0, 0, 5, 0, 5);
        assert_eq!(it.count(), 0);
    }

    proptest! {
        #[test]
        fn size_hint_is_exact(n in 1usize..6, g in 0usize..3) {
            let gi = GridIndexer::new(n, g);
            let mut it = gi.all();
            let mut remaining = it.size_hint().0;
            while let Some(_) = it.next() {
                remaining -= 1;
                prop_assert_eq!(it.size_hint().0, remaining);
            }
            prop_assert_eq!(remaining, 0);
        }
    }
}
