//! A hand-rolled 4-wide `f64` SIMD lane type.
//!
//! `std::simd` is unstable, so the explicit-vectorization work in the
//! gravity kernels (the "Merging Frameworks" follow-up paper's SIMD
//! types, arXiv:2210.06439) uses this portable lane struct instead. The
//! compiler auto-vectorizes the fixed-width array loops into packed
//! instructions on targets that have them; on targets that don't, each
//! lane op is exactly the scalar op.
//!
//! **Bit-identity contract.** Every operation on [`F64x4`] applies the
//! corresponding scalar `f64` operation independently per lane — there
//! are no horizontal reductions, no FMA contractions, no re-associations.
//! A kernel that maps lane `l` to target cell `t0 + l·stride` therefore
//! produces, in each lane, the *identical bit pattern* the scalar kernel
//! produces for that cell, because IEEE 754 arithmetic is deterministic
//! per operation and the per-cell operation sequence is unchanged.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Number of lanes in [`F64x4`].
pub const LANES: usize = 4;

/// Four `f64` lanes operated on element-wise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All four lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// All four lanes zero.
    #[inline(always)]
    pub fn zero() -> Self {
        F64x4([0.0; 4])
    }

    /// Load four contiguous values starting at `slice[base]`.
    #[inline(always)]
    pub fn load(slice: &[f64], base: usize) -> Self {
        F64x4([
            slice[base],
            slice[base + 1],
            slice[base + 2],
            slice[base + 3],
        ])
    }

    /// Load four values at `slice[base + l·stride]` for lane `l`.
    ///
    /// `stride == 1` is the contiguous case; the parity-stencil kernels
    /// use `stride == 2` to pick the four same-parity cells of a row.
    #[inline(always)]
    pub fn gather(slice: &[f64], base: usize, stride: usize) -> Self {
        F64x4([
            slice[base],
            slice[base + stride],
            slice[base + 2 * stride],
            slice[base + 3 * stride],
        ])
    }

    /// Per-lane square root.
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        F64x4([
            self.0[0].sqrt(),
            self.0[1].sqrt(),
            self.0[2].sqrt(),
            self.0[3].sqrt(),
        ])
    }

    /// Lane `l` as a scalar.
    #[inline(always)]
    pub fn lane(self, l: usize) -> f64 {
        self.0[l]
    }

    /// The underlying lane array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }
}

macro_rules! lanewise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, rhs: F64x4) -> F64x4 {
                F64x4([
                    self.0[0] $op rhs.0[0],
                    self.0[1] $op rhs.0[1],
                    self.0[2] $op rhs.0[2],
                    self.0[3] $op rhs.0[3],
                ])
            }
        }
        impl $trait<f64> for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $method(self, rhs: f64) -> F64x4 {
                F64x4([
                    self.0[0] $op rhs,
                    self.0[1] $op rhs,
                    self.0[2] $op rhs,
                    self.0[3] $op rhs,
                ])
            }
        }
    };
}

lanewise_binop!(Add, add, +);
lanewise_binop!(Sub, sub, -);
lanewise_binop!(Mul, mul, *);
lanewise_binop!(Div, div, /);

impl AddAssign for F64x4 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: F64x4) {
        for l in 0..4 {
            self.0[l] += rhs.0[l];
        }
    }
}

impl Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        F64x4([-self.0[0], -self.0[1], -self.0[2], -self.0[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_are_independent_scalar_ops() {
        let a = F64x4([1.0, 2.5, -3.0, 1e-300]);
        let b = F64x4([0.1, 4.0, 7.5, 3e10]);
        let sum = a + b;
        let prod = a * b;
        let quot = a / b;
        for l in 0..4 {
            assert_eq!(sum.lane(l).to_bits(), (a.lane(l) + b.lane(l)).to_bits());
            assert_eq!(prod.lane(l).to_bits(), (a.lane(l) * b.lane(l)).to_bits());
            assert_eq!(quot.lane(l).to_bits(), (a.lane(l) / b.lane(l)).to_bits());
        }
        let sq = b.sqrt();
        for l in 0..4 {
            assert_eq!(sq.lane(l).to_bits(), b.lane(l).sqrt().to_bits());
        }
    }

    #[test]
    fn load_and_gather() {
        let data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert_eq!(F64x4::load(&data, 3).to_array(), [3.0, 4.0, 5.0, 6.0]);
        assert_eq!(
            F64x4::gather(&data, 1, 2).to_array(),
            [1.0, 3.0, 5.0, 7.0]
        );
        assert_eq!(
            F64x4::gather(&data, 0, 1).to_array(),
            F64x4::load(&data, 0).to_array()
        );
    }

    #[test]
    fn accumulate_and_negate() {
        let mut acc = F64x4::zero();
        acc += F64x4::splat(1.5);
        acc += F64x4([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(acc.to_array(), [2.5, 3.5, 4.5, 5.5]);
        assert_eq!((-acc).to_array(), [-2.5, -3.5, -4.5, -5.5]);
    }
}
