//! Tiny, dependency-free content digests.
//!
//! Checkpoints of the distributed driver are digest-protected: the
//! writer appends an FNV-1a-64 digest of the encoded body and the
//! reader recomputes it before trusting a single byte. FNV is not
//! cryptographic — it guards against truncation, bit rot, and version
//! skew, not adversaries, which is the same contract HPX checkpoints
//! rely on.

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a-64 hasher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Fold `bytes` into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Fold one `u64` (little-endian) into the running digest.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a-64 of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn sensitive_to_every_byte() {
        let a = fnv1a64(&[0u8; 64]);
        for i in 0..64 {
            let mut v = [0u8; 64];
            v[i] = 1;
            assert_ne!(fnv1a64(&v), a, "flip at {i} must change the digest");
        }
    }

    #[test]
    fn u64_update_is_little_endian_bytes() {
        let mut a = Fnv1a::new();
        a.update_u64(0x0102030405060708);
        let mut b = Fnv1a::new();
        b.update(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
