//! The workspace-wide error type.
//!
//! The distributed driver threads failures from three layers through one
//! enum: octree/shard lookups, parcelport transport and codec paths, and
//! the driver's own phase logic. Fallible APIs (`Cluster::try_build`,
//! `Locality::try_send`/`try_call`, `DistributedDriver::step`) return
//! [`Result`] with this type so later fault-tolerance work (retry,
//! locality fail-over) has a seam instead of a `panic!`.

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// An error from the octree, parcelport, or driver layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A parcel or call targeted a locality outside the cluster.
    BadLocality {
        /// The requested locality index.
        index: u32,
        /// Number of localities in the cluster.
        count: usize,
    },
    /// Payload (de)serialization failed.
    Codec(String),
    /// A parcel named an action id with no registered handler.
    UnknownAction(u32),
    /// An octree / shard-map invariant failed (missing leaf, bad
    /// partition, ...).
    Octree(String),
    /// A driver phase failed (missing grid, non-finite dt, ...).
    Driver(String),
    /// A locality crashed (or was declared dead by the reliable
    /// delivery layer after its retry budget ran out). The run can be
    /// continued from the latest checkpoint on a fresh cluster.
    LocalityCrashed(u32),
    /// A checkpoint could not be written, decoded, or verified
    /// (version mismatch, digest mismatch, truncation, ...).
    Checkpoint(String),
    /// A performance-model input was invalid (empty calibration trace,
    /// zero localities, ...).
    Model(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadLocality { index, count } => {
                write!(f, "locality {index} out of range (cluster has {count})")
            }
            Error::Codec(msg) => write!(f, "codec failure: {msg}"),
            Error::UnknownAction(id) => write!(f, "unknown action id {id}"),
            Error::Octree(msg) => write!(f, "octree error: {msg}"),
            Error::Driver(msg) => write!(f, "driver error: {msg}"),
            Error::LocalityCrashed(loc) => write!(f, "locality {loc} crashed"),
            Error::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            Error::Model(msg) => write!(f, "performance-model error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::CodecError> for Error {
    fn from(e: serde::CodecError) -> Error {
        Error::Codec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = Error::BadLocality { index: 7, count: 4 };
        assert!(e.to_string().contains("locality 7"));
        assert!(e.to_string().contains('4'));
        assert!(Error::UnknownAction(9).to_string().contains('9'));
        assert!(Error::Codec("short read".into()).to_string().contains("short read"));
        assert!(Error::Octree("no leaf".into()).to_string().contains("no leaf"));
        assert!(Error::Driver("bad dt".into()).to_string().contains("bad dt"));
        assert!(Error::LocalityCrashed(3).to_string().contains("locality 3"));
        assert!(Error::Checkpoint("bad digest".into()).to_string().contains("bad digest"));
    }

    #[test]
    fn codec_error_converts() {
        let c = serde::CodecError::Invalid("boom".into());
        let e: Error = c.into();
        assert!(matches!(e, Error::Codec(_)));
    }
}
