//! The stencil-based struct-of-arrays FMM compute kernels — the
//! application hotspot (§4.3).
//!
//! "In order to improve cache-efficiency and vector-unit usage, we
//! changed it to a stencil-based approach and are now utilizing a
//! struct-of-arrays datastructure." Each kernel launch applies the
//! same-level stencil to all 512 cells of a sub-grid, reading sources
//! from an extended SoA buffer holding the node's own cells plus the
//! neighbor halo.
//!
//! Two kernels, as in the paper:
//! * [`monopole_kernel`] — monopole–monopole (12 flops/interaction):
//!   both nodes are leaves, cells are point masses.
//! * [`multipole_kernel`] — the combined multipole–multipole /
//!   multipole–monopole kernel (455 flops/interaction): full M2L with
//!   quadrupoles and the conservation corrections.
//!
//! The innermost loops are **branchless**: instead of testing the
//! per-cell `present` flag (which defeats vectorization, exactly the
//! branch-divergence problem GPU kernels predicate away), each slot
//! carries a `mask` weight of 1.0/0.0 and every contribution is
//! multiplied by `mask[t] · mask[s]`. Absent slots hold `m = 0` and a
//! softened separation (`r² += 1 − w`) keeps the 1/r tensors finite, so
//! masked-out pairs contribute exact (signed) zeros. Multiplication by
//! 1.0 is exact in IEEE arithmetic, so present pairs are bit-identical
//! to the branchy formulation. `present` is retained only for
//! [`MomentGrid::get`] semantics and the interaction counters.

use crate::expansion::LocalExpansion;
use crate::multipole::Multipole;
use crate::stencil::Stencil;
use octree::subgrid::N_SUB;
use util::vec3::Vec3;

/// Struct-of-arrays moment storage over an extended grid of
/// `(N_SUB + 2·width)³` cells (interior + stencil halo).
pub struct MomentGrid {
    width: i32,
    dim: usize,
    pub m: Vec<f64>,
    pub comx: Vec<f64>,
    pub comy: Vec<f64>,
    pub comz: Vec<f64>,
    pub q: [Vec<f64>; 6],
    /// Branchless predication weight: 1.0 where source data exists,
    /// 0.0 elsewhere. Kernels multiply contributions by this instead of
    /// branching on `present`.
    pub mask: Vec<f64>,
    /// Whether source data exists at this slot (false outside the
    /// domain or where no neighbor provides data).
    pub present: Vec<bool>,
}

impl MomentGrid {
    pub fn new(width: i32) -> MomentGrid {
        assert!(width >= 0);
        let dim = N_SUB + 2 * width as usize;
        let n = dim * dim * dim;
        MomentGrid {
            width,
            dim,
            m: vec![0.0; n],
            comx: vec![0.0; n],
            comy: vec![0.0; n],
            comz: vec![0.0; n],
            q: std::array::from_fn(|_| vec![0.0; n]),
            mask: vec![0.0; n],
            present: vec![false; n],
        }
    }

    /// Halo width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Zero every slot, restoring the state of a freshly built grid
    /// without reallocating — the scratch-pool reuse path.
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.comx.fill(0.0);
        self.comy.fill(0.0);
        self.comz.fill(0.0);
        for c in &mut self.q {
            c.fill(0.0);
        }
        self.mask.fill(0.0);
        self.present.fill(false);
    }

    /// Flattened index of extended coordinates in
    /// `[-width, N_SUB + width)`.
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let w = self.width as isize;
        debug_assert!(i >= -w && (i as i64) < (N_SUB as i64 + w as i64));
        (((i + w) as usize * self.dim) + (j + w) as usize) * self.dim + (k + w) as usize
    }

    /// Install a cell's moments.
    pub fn set(&mut self, i: isize, j: isize, k: isize, mp: &Multipole) {
        let n = self.idx(i, j, k);
        self.m[n] = mp.m;
        self.comx[n] = mp.com.x;
        self.comy[n] = mp.com.y;
        self.comz[n] = mp.com.z;
        for c in 0..6 {
            self.q[c][n] = mp.q[c];
        }
        self.mask[n] = 1.0;
        self.present[n] = true;
    }

    /// Read a cell's moments back.
    pub fn get(&self, i: isize, j: isize, k: isize) -> Option<Multipole> {
        let n = self.idx(i, j, k);
        if !self.present[n] {
            return None;
        }
        Some(Multipole {
            m: self.m[n],
            com: Vec3::new(self.comx[n], self.comy[n], self.comz[n]),
            q: std::array::from_fn(|c| self.q[c][n]),
        })
    }
}

/// Result of one kernel launch: per-interior-cell expansions plus the
/// interaction count (for the performance counters of §6.1).
pub struct KernelResult {
    pub expansions: Vec<LocalExpansion>,
    pub interactions: u64,
}

#[inline]
fn interior_index(i: isize, j: isize, k: isize) -> usize {
    ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize
}

/// Reset `out` to `N_SUB³` default expansions without shrinking its
/// capacity (zero-allocation on reuse).
#[inline]
fn reset_expansions(out: &mut Vec<LocalExpansion>) {
    out.clear();
    out.resize(N_SUB * N_SUB * N_SUB, LocalExpansion::default());
}

/// Branchless monopole accumulation: all contributions are weighted by
/// `w = mask[t]·mask[s]` and the separation is softened by `1 − w` so
/// masked slots produce exact zeros instead of NaNs.
#[inline]
fn accum_monopole(grid: &MomentGrid, t_idx: usize, s_idx: usize, e: &mut LocalExpansion) {
    let w = grid.mask[t_idx] * grid.mask[s_idx];
    let d = Vec3::new(
        grid.comx[t_idx] - grid.comx[s_idx],
        grid.comy[t_idx] - grid.comy[s_idx],
        grid.comz[t_idx] - grid.comz[s_idx],
    );
    let r2 = d.norm2() + (1.0 - w);
    let u = w / r2.sqrt();
    let u3 = u / r2;
    let ms = grid.m[s_idx];
    e.phi += ms * (-u);
    e.dphi += d * (ms * u3);
    // Canonical mirror-exact force term.
    e.force += d * (u3 * (-(grid.m[t_idx] * ms)));
}

/// Branchless multipole accumulation: the source moments are scaled by
/// the pair weight (every accumulated term is linear in them), and the
/// softened tensors stay finite on masked slots.
#[inline]
fn accum_multipole(grid: &MomentGrid, t_idx: usize, s_idx: usize, e: &mut LocalExpansion) {
    let w = grid.mask[t_idx] * grid.mask[s_idx];
    let tgt = Multipole {
        m: grid.m[t_idx],
        com: Vec3::new(grid.comx[t_idx], grid.comy[t_idx], grid.comz[t_idx]),
        q: std::array::from_fn(|c| grid.q[c][t_idx]),
    };
    let src = Multipole {
        m: grid.m[s_idx] * w,
        com: Vec3::new(grid.comx[s_idx], grid.comy[s_idx], grid.comz[s_idx]),
        q: std::array::from_fn(|c| grid.q[c][s_idx] * w),
    };
    e.accumulate_softened(&tgt, &src, tgt.com - src.com, 1.0 - w);
}

macro_rules! offset_kernel {
    ($name:ident, $name_into:ident, $accum:ident, $doc:literal) => {
        #[doc = $doc]
        /// Writes into a caller-provided buffer (reset first); returns
        /// the interaction count.
        pub fn $name_into(
            grid: &MomentGrid,
            offsets: &[(i32, i32, i32)],
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            let n = N_SUB as isize;
            reset_expansions(out);
            let mut interactions = 0u64;
            for &(dx, dy, dz) in offsets {
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            let t_idx = grid.idx(i, j, k);
                            let s_idx =
                                grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                            $accum(grid, t_idx, s_idx, &mut out[interior_index(i, j, k)]);
                            interactions +=
                                (grid.present[t_idx] & grid.present[s_idx]) as u64;
                        }
                    }
                }
            }
            interactions
        }

        #[doc = $doc]
        pub fn $name(grid: &MomentGrid, offsets: &[(i32, i32, i32)]) -> KernelResult {
            let mut out = Vec::new();
            let interactions = $name_into(grid, offsets, &mut out);
            KernelResult { expansions: out, interactions }
        }
    };
}

offset_kernel!(
    monopole_kernel,
    monopole_kernel_into,
    accum_monopole,
    "Monopole–monopole kernel: point masses only (leaf/leaf node pairs). Applies `offsets` to every interior cell."
);
offset_kernel!(
    multipole_kernel,
    multipole_kernel_into,
    accum_multipole,
    "The combined multipole kernel: full M2L with quadrupoles and conservation corrections, for every interior cell over `offsets`."
);

/// Build the extended moment grid for one node from its own cell
/// moments and a halo lookup: `lookup(i, j, k)` returns the moment of
/// the (possibly out-of-node) cell at extended coordinates, or `None`
/// outside the domain.
pub fn gather_moments(
    width: i32,
    lookup: impl Fn(isize, isize, isize) -> Option<Multipole>,
) -> MomentGrid {
    let mut grid = MomentGrid::new(width);
    gather_moments_into(&mut grid, lookup);
    grid
}

/// [`gather_moments`] into an existing (e.g. pooled) grid of the right
/// width; the grid is reset first, so the result is identical to a
/// freshly built one.
pub fn gather_moments_into(
    grid: &mut MomentGrid,
    lookup: impl Fn(isize, isize, isize) -> Option<Multipole>,
) {
    grid.reset();
    let w = grid.width() as isize;
    let n = N_SUB as isize;
    for i in -w..n + w {
        for j in -w..n + w {
            for k in -w..n + w {
                if let Some(mp) = lookup(i, j, k) {
                    grid.set(i, j, k, &mp);
                }
            }
        }
    }
}

/// Parity of a cell: `(i&1) | ((j&1)<<1) | ((k&1)<<2)`.
#[inline]
fn parity_of(i: isize, j: isize, k: isize) -> u8 {
    ((i & 1) | ((j & 1) << 1) | ((k & 1) << 2)) as u8
}

macro_rules! parity_kernel {
    ($name:ident, $name_into:ident, $accum:ident) => {
        /// Parity-exact same-level kernel (buffer-reusing variant):
        /// each cell uses the offset list of its parity, so every pair
        /// is owned by exactly one level of the tree walk.
        pub fn $name_into(
            grid: &MomentGrid,
            stencil: &Stencil,
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            let n = N_SUB as isize;
            reset_expansions(out);
            let mut interactions = 0u64;
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let t_idx = grid.idx(i, j, k);
                        let e = &mut out[interior_index(i, j, k)];
                        let offsets = stencil.for_parity(parity_of(i, j, k));
                        for &(dx, dy, dz) in offsets {
                            let s_idx =
                                grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                            $accum(grid, t_idx, s_idx, e);
                            interactions +=
                                (grid.present[t_idx] & grid.present[s_idx]) as u64;
                        }
                    }
                }
            }
            interactions
        }

        /// Parity-exact same-level kernel: each cell uses the offset
        /// list of its parity, so every pair is owned by exactly one
        /// level of the tree walk.
        pub fn $name(grid: &MomentGrid, stencil: &Stencil) -> KernelResult {
            let mut out = Vec::new();
            let interactions = $name_into(grid, stencil, &mut out);
            KernelResult { expansions: out, interactions }
        }
    };
}

parity_kernel!(monopole_kernel_stencil, monopole_kernel_stencil_into, accum_monopole);
parity_kernel!(multipole_kernel_stencil, multipole_kernel_stencil_into, accum_multipole);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::Stencil;

    /// A uniform lattice of unit point masses at integer cell centres.
    fn lattice(width: i32) -> MomentGrid {
        gather_moments(width, |i, j, k| {
            Some(Multipole::monopole(
                1.0,
                Vec3::new(i as f64, j as f64, k as f64),
            ))
        })
    }

    #[test]
    fn moment_grid_set_get_roundtrip() {
        let mut g = MomentGrid::new(2);
        assert!(g.get(0, 0, 0).is_none());
        let mp = Multipole {
            m: 2.0,
            com: Vec3::new(0.1, 0.2, 0.3),
            q: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        g.set(-2, 5, 9, &mp);
        assert_eq!(g.get(-2, 5, 9).unwrap(), mp);
        g.reset();
        assert!(g.get(-2, 5, 9).is_none());
    }

    #[test]
    fn monopole_kernel_counts_interactions() {
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let res = monopole_kernel(&grid, s.offsets());
        // Full lattice: every cell sees the whole stencil.
        assert_eq!(res.interactions, (s.len() * 512) as u64);
        assert_eq!(res.expansions.len(), 512);
    }

    #[test]
    fn uniform_lattice_center_feels_no_net_force() {
        // Symmetric surroundings: the interior-most cell's stencil
        // contributions cancel.
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let res = monopole_kernel(&grid, s.offsets());
        // Cell (4,4,4)-ish is symmetric wrt the stencil in this lattice
        // (sources exist everywhere).
        let e = &res.expansions[interior_index(4, 4, 4)];
        assert!(
            e.force.norm() < 1e-12,
            "symmetric lattice force should cancel, got {:?}",
            e.force
        );
        assert!(e.phi < 0.0, "potential must be negative");
    }

    #[test]
    fn lattice_momentum_conservation_with_closed_halo() {
        // Make the halo empty: only interior cells interact; total
        // momentum change (sum of force ledgers) must vanish to
        // round-off because every pair is inside.
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            let n = N_SUB as isize;
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) {
                // Irregular masses for a nontrivial test.
                let m = 1.0 + ((i * 7 + j * 3 + k) % 5) as f64 * 0.25;
                Some(Multipole::monopole(m, Vec3::new(i as f64, j as f64, k as f64)))
            } else {
                None
            }
        });
        let res = monopole_kernel(&grid, s.offsets());
        let total: Vec3 = res.expansions.iter().map(|e| e.force).sum();
        let scale: f64 = res.expansions.iter().map(|e| e.force.norm()).sum();
        assert!(
            total.norm() <= 1e-13 * scale.max(1.0),
            "momentum residual {:?} at scale {scale}",
            total
        );
    }

    #[test]
    fn multipole_kernel_conserves_momentum_and_angular_momentum() {
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            let n = N_SUB as isize;
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) {
                let m = 1.0 + ((i + 2 * j + 3 * k) % 7) as f64 * 0.5;
                let off = 0.1 * ((i * j + k) % 3) as f64;
                Some(Multipole {
                    m,
                    com: Vec3::new(i as f64 + off, j as f64 - off, k as f64),
                    q: [
                        0.01 * (i % 3) as f64,
                        0.01 * (j % 3) as f64,
                        0.01 * (k % 3) as f64,
                        0.005,
                        -0.002,
                        0.001,
                    ],
                })
            } else {
                None
            }
        });
        let res = multipole_kernel(&grid, s.offsets());
        // Linear momentum.
        let total_f: Vec3 = res.expansions.iter().map(|e| e.force).sum();
        let scale_f: f64 = res.expansions.iter().map(|e| e.force.norm()).sum();
        assert!(
            total_f.norm() <= 1e-13 * scale_f.max(1.0),
            "momentum residual {total_f:?}"
        );
        // Angular momentum: orbital torque + deposited spin torques.
        let mut orbital = Vec3::ZERO;
        let mut spin = Vec3::ZERO;
        let mut scale_t = 0.0;
        for i in 0..N_SUB as isize {
            for j in 0..N_SUB as isize {
                for k in 0..N_SUB as isize {
                    let e = &res.expansions[interior_index(i, j, k)];
                    let com = grid.get(i, j, k).unwrap().com;
                    orbital += com.cross(e.force);
                    spin += e.torque;
                    scale_t += com.cross(e.force).norm() + e.torque.norm();
                }
            }
        }
        let residual = (orbital + spin).norm();
        assert!(
            residual <= 1e-13 * scale_t.max(1.0),
            "angular momentum residual {residual} at scale {scale_t}"
        );
    }

    #[test]
    fn missing_sources_are_skipped() {
        let s = Stencil::octotiger();
        // Only one cell present: no interactions at all.
        let grid = gather_moments(s.width(), |i, j, k| {
            if (i, j, k) == (4, 4, 4) {
                Some(Multipole::monopole(1.0, Vec3::ZERO))
            } else {
                None
            }
        });
        let res = monopole_kernel(&grid, s.offsets());
        assert_eq!(res.interactions, 0);
        assert!(res.expansions.iter().all(|e| e.phi == 0.0));
    }

    #[test]
    fn masked_slots_contribute_exact_zero() {
        // A partially filled grid: the branchless (masked) kernels must
        // produce finite values everywhere and exact zeros for cells
        // with no present pairs.
        let s = Stencil::octotiger();
        let n = N_SUB as isize;
        let grid = gather_moments(s.width(), |i, j, k| {
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) && (i + j + k) % 2 == 0 {
                Some(Multipole::monopole(1.0, Vec3::new(i as f64, j as f64, k as f64)))
            } else {
                None
            }
        });
        for res in [
            monopole_kernel(&grid, s.offsets()),
            multipole_kernel(&grid, s.offsets()),
            monopole_kernel_stencil(&grid, &s),
            multipole_kernel_stencil(&grid, &s),
        ] {
            assert!(res.expansions.iter().all(|e| e.phi.is_finite()
                && e.dphi.norm().is_finite()
                && e.force.norm().is_finite()));
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let fresh = monopole_kernel_stencil(&grid, &s);
        // A dirty, reused buffer must give identical results.
        let mut buf = vec![
            LocalExpansion {
                phi: 99.0,
                ..LocalExpansion::default()
            };
            7
        ];
        let cap_marker = {
            buf.reserve(600);
            buf.capacity()
        };
        let interactions = monopole_kernel_stencil_into(&grid, &s, &mut buf);
        assert_eq!(interactions, fresh.interactions);
        assert_eq!(buf.capacity(), cap_marker, "no reallocation on reuse");
        for (a, b) in buf.iter().zip(fresh.expansions.iter()) {
            assert_eq!(a.phi.to_bits(), b.phi.to_bits());
            for ax in 0..3 {
                assert_eq!(a.force[ax].to_bits(), b.force[ax].to_bits());
            }
        }
    }
}
