//! The stencil-based struct-of-arrays FMM compute kernels — the
//! application hotspot (§4.3).
//!
//! "In order to improve cache-efficiency and vector-unit usage, we
//! changed it to a stencil-based approach and are now utilizing a
//! struct-of-arrays datastructure." Each kernel launch applies the
//! same-level stencil to all 512 cells of a sub-grid, reading sources
//! from an extended SoA buffer holding the node's own cells plus the
//! neighbor halo.
//!
//! Two kernels, as in the paper:
//! * [`monopole_kernel`] — monopole–monopole (12 flops/interaction):
//!   both nodes are leaves, cells are point masses.
//! * [`multipole_kernel`] — the combined multipole–multipole /
//!   multipole–monopole kernel (455 flops/interaction): full M2L with
//!   quadrupoles and the conservation corrections.
//!
//! The innermost loops are **branchless**: instead of testing the
//! per-cell `present` flag (which defeats vectorization, exactly the
//! branch-divergence problem GPU kernels predicate away), each slot
//! carries a `mask` weight of 1.0/0.0 and every contribution is
//! multiplied by `mask[t] · mask[s]`. Absent slots hold `m = 0` and a
//! softened separation (`r² += 1 − w`) keeps the 1/r tensors finite, so
//! masked-out pairs contribute exact (signed) zeros. Multiplication by
//! 1.0 is exact in IEEE arithmetic, so present pairs are bit-identical
//! to the branchy formulation. `present` is retained only for
//! [`MomentGrid::get`] semantics and the interaction counters.
//!
//! **Explicit SIMD.** On top of the branchless form, the kernels are
//! explicitly vectorized with the hand-rolled [`util::simd::F64x4`]
//! lane type (the "Merging Frameworks" follow-up's SIMD types). Lanes
//! map to *target cells* — four k-adjacent cells for the offset
//! kernels, the four same-parity stride-2 cells of a row for the
//! parity-stencil kernels — so each cell's accumulation order over its
//! offset list is exactly the scalar kernel's and the results are
//! bit-identical by construction (see DESIGN.md "Chunking & SIMD").
//! A scalar tail handles ranges that don't fill a lane group.
//!
//! **Cache-blocked ranges.** Every kernel also comes in a
//! `*_range_into` form restricted to a slab `[start, end)` of the
//! interior linear index (`(i·8 + j)·8 + k`, k fastest). The chunked
//! solver (`FmmSolver`) launches one task per slab and concatenates
//! the slabs in index order, which reproduces the monolithic kernel's
//! output exactly — each cell is owned by exactly one slab and its
//! per-offset accumulation never crosses slab boundaries.

use crate::expansion::LocalExpansion;
use crate::multipole::Multipole;
use crate::stencil::Stencil;
use octree::subgrid::N_SUB;
use util::simd::F64x4;
use util::vec3::Vec3;

/// Number of interior cells in a sub-grid (`N_SUB³`).
pub const N_CELLS: usize = N_SUB * N_SUB * N_SUB;

/// Struct-of-arrays moment storage over an extended grid of
/// `(N_SUB + 2·width)³` cells (interior + stencil halo).
pub struct MomentGrid {
    width: i32,
    dim: usize,
    pub m: Vec<f64>,
    pub comx: Vec<f64>,
    pub comy: Vec<f64>,
    pub comz: Vec<f64>,
    pub q: [Vec<f64>; 6],
    /// Branchless predication weight: 1.0 where source data exists,
    /// 0.0 elsewhere. Kernels multiply contributions by this instead of
    /// branching on `present`.
    pub mask: Vec<f64>,
    /// Whether source data exists at this slot (false outside the
    /// domain or where no neighbor provides data).
    pub present: Vec<bool>,
}

impl MomentGrid {
    pub fn new(width: i32) -> MomentGrid {
        assert!(width >= 0);
        let dim = N_SUB + 2 * width as usize;
        let n = dim * dim * dim;
        MomentGrid {
            width,
            dim,
            m: vec![0.0; n],
            comx: vec![0.0; n],
            comy: vec![0.0; n],
            comz: vec![0.0; n],
            q: std::array::from_fn(|_| vec![0.0; n]),
            mask: vec![0.0; n],
            present: vec![false; n],
        }
    }

    /// Halo width.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Zero every slot, restoring the state of a freshly built grid
    /// without reallocating — the scratch-pool reuse path.
    pub fn reset(&mut self) {
        self.m.fill(0.0);
        self.comx.fill(0.0);
        self.comy.fill(0.0);
        self.comz.fill(0.0);
        for c in &mut self.q {
            c.fill(0.0);
        }
        self.mask.fill(0.0);
        self.present.fill(false);
    }

    /// Flattened index of extended coordinates in
    /// `[-width, N_SUB + width)`.
    #[inline]
    pub fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        let w = self.width as isize;
        debug_assert!(i >= -w && (i as i64) < (N_SUB as i64 + w as i64));
        (((i + w) as usize * self.dim) + (j + w) as usize) * self.dim + (k + w) as usize
    }

    /// Install a cell's moments.
    pub fn set(&mut self, i: isize, j: isize, k: isize, mp: &Multipole) {
        let n = self.idx(i, j, k);
        self.m[n] = mp.m;
        self.comx[n] = mp.com.x;
        self.comy[n] = mp.com.y;
        self.comz[n] = mp.com.z;
        for c in 0..6 {
            self.q[c][n] = mp.q[c];
        }
        self.mask[n] = 1.0;
        self.present[n] = true;
    }

    /// Read a cell's moments back.
    pub fn get(&self, i: isize, j: isize, k: isize) -> Option<Multipole> {
        let n = self.idx(i, j, k);
        if !self.present[n] {
            return None;
        }
        Some(Multipole {
            m: self.m[n],
            com: Vec3::new(self.comx[n], self.comy[n], self.comz[n]),
            q: std::array::from_fn(|c| self.q[c][n]),
        })
    }
}

/// Result of one kernel launch: per-interior-cell expansions plus the
/// interaction count (for the performance counters of §6.1).
pub struct KernelResult {
    pub expansions: Vec<LocalExpansion>,
    pub interactions: u64,
}

/// Flattened interior-cell linear index `(i·8 + j)·8 + k` (k fastest) —
/// the index the cache-blocked slabs of the chunked solver range over.
#[inline]
pub fn interior_index(i: isize, j: isize, k: isize) -> usize {
    ((i * N_SUB as isize + j) * N_SUB as isize + k) as usize
}

/// Reset `out` to `n` default expansions without shrinking its
/// capacity (zero-allocation on reuse).
#[inline]
fn reset_expansions_n(out: &mut Vec<LocalExpansion>, n: usize) {
    out.clear();
    out.resize(n, LocalExpansion::default());
}

/// Decompose an interior linear index `(i·8 + j)·8 + k` into `(i, j, k)`.
#[inline]
fn interior_coords(c: usize) -> (isize, isize, isize) {
    let n = N_SUB;
    ((c / (n * n)) as isize, ((c / n) % n) as isize, (c % n) as isize)
}

/// Branchless monopole accumulation: all contributions are weighted by
/// `w = mask[t]·mask[s]` and the separation is softened by `1 − w` so
/// masked slots produce exact zeros instead of NaNs.
#[inline]
fn accum_monopole(grid: &MomentGrid, t_idx: usize, s_idx: usize, e: &mut LocalExpansion) {
    let w = grid.mask[t_idx] * grid.mask[s_idx];
    let d = Vec3::new(
        grid.comx[t_idx] - grid.comx[s_idx],
        grid.comy[t_idx] - grid.comy[s_idx],
        grid.comz[t_idx] - grid.comz[s_idx],
    );
    let r2 = d.norm2() + (1.0 - w);
    let u = w / r2.sqrt();
    let u3 = u / r2;
    let ms = grid.m[s_idx];
    e.phi += ms * (-u);
    e.dphi += d * (ms * u3);
    // Canonical mirror-exact force term.
    e.force += d * (u3 * (-(grid.m[t_idx] * ms)));
}

/// Branchless multipole accumulation: the source moments are scaled by
/// the pair weight (every accumulated term is linear in them), and the
/// softened tensors stay finite on masked slots.
#[inline]
fn accum_multipole(grid: &MomentGrid, t_idx: usize, s_idx: usize, e: &mut LocalExpansion) {
    let w = grid.mask[t_idx] * grid.mask[s_idx];
    let tgt = Multipole {
        m: grid.m[t_idx],
        com: Vec3::new(grid.comx[t_idx], grid.comy[t_idx], grid.comz[t_idx]),
        q: std::array::from_fn(|c| grid.q[c][t_idx]),
    };
    let src = Multipole {
        m: grid.m[s_idx] * w,
        com: Vec3::new(grid.comx[s_idx], grid.comy[s_idx], grid.comz[s_idx]),
        q: std::array::from_fn(|c| grid.q[c][s_idx] * w),
    };
    e.accumulate_softened(&tgt, &src, tgt.com - src.com, 1.0 - w);
}

/// Lane-wise kernel tensors: [`crate::tensors::KernelTensors`] with
/// every scalar replaced by an [`F64x4`] lane group. Each lane performs
/// *exactly* the scalar evaluation's operation sequence, so lane `l`
/// holds the bit pattern `KernelTensors::at_softened` would produce for
/// that lane's separation.
struct KernelTensorsX4 {
    b0: F64x4,
    b1: [F64x4; 3],
    b2: [F64x4; 6],
    b3: [F64x4; 10],
}

impl KernelTensorsX4 {
    #[inline(always)]
    fn at_softened(d: [F64x4; 3], soft: F64x4) -> KernelTensorsX4 {
        use crate::tensors::{SYM2, SYM3};
        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2] + soft;
        for l in 0..4 {
            assert!(r2.lane(l) > 0.0, "kernel tensors undefined at zero separation");
        }
        let u2 = F64x4::splat(1.0) / r2;
        let u = u2.sqrt();
        let u3 = u * u2;
        let u5 = u3 * u2;
        let u7 = u5 * u2;
        let mut b2 = [F64x4::zero(); 6];
        for (n, (a, b)) in SYM2.iter().enumerate() {
            let delta = if a == b { 1.0 } else { 0.0 };
            b2[n] = F64x4::splat(delta) * u3 - d[*a] * 3.0 * d[*b] * u5;
        }
        let mut b3 = [F64x4::zero(); 10];
        for (n, (a, b, c)) in SYM3.iter().enumerate() {
            let dab = if a == b { 1.0 } else { 0.0 };
            let dac = if a == c { 1.0 } else { 0.0 };
            let dbc = if b == c { 1.0 } else { 0.0 };
            b3[n] = (d[*c] * dab + d[*b] * dac + d[*a] * dbc) * -3.0 * u5
                + d[*a] * 15.0 * d[*b] * d[*c] * u7;
        }
        KernelTensorsX4 {
            b0: -u,
            b1: [d[0] * u3, d[1] * u3, d[2] * u3],
            b2,
            b3,
        }
    }

    #[inline(always)]
    fn contract_q_b2(&self, q: &[F64x4; 6]) -> F64x4 {
        use crate::tensors::SYM2_MULT;
        let mut s = F64x4::zero();
        for n in 0..6 {
            s += q[n] * SYM2_MULT[n] * self.b2[n];
        }
        s
    }

    #[inline(always)]
    fn contract_q_b3(&self, q: &[F64x4; 6]) -> [F64x4; 3] {
        use crate::tensors::{SYM2, SYM2_MULT, SYM3_INDEX};
        let mut v = [F64x4::zero(); 3];
        for (n2, (b, c)) in SYM2.iter().enumerate() {
            let w = q[n2] * SYM2_MULT[n2];
            for (a, va) in v.iter_mut().enumerate() {
                *va += w * self.b3[SYM3_INDEX[a][*b][*c]];
            }
        }
        v
    }
}

/// Four-cell monopole accumulation: lane `l` is target slot
/// `t0 + l·stride` / source slot `s0 + l·stride`, scattered into
/// `out[o0 + l·o_stride]`. Mirrors [`accum_monopole`]'s operation
/// sequence per lane, so each cell's result is bit-identical to four
/// scalar calls.
#[inline(always)]
fn accum_monopole_x4(
    grid: &MomentGrid,
    t0: usize,
    s0: usize,
    stride: usize,
    out: &mut [LocalExpansion],
    o0: usize,
    o_stride: usize,
) {
    let w = F64x4::gather(&grid.mask, t0, stride) * F64x4::gather(&grid.mask, s0, stride);
    let dx = F64x4::gather(&grid.comx, t0, stride) - F64x4::gather(&grid.comx, s0, stride);
    let dy = F64x4::gather(&grid.comy, t0, stride) - F64x4::gather(&grid.comy, s0, stride);
    let dz = F64x4::gather(&grid.comz, t0, stride) - F64x4::gather(&grid.comz, s0, stride);
    let r2 = dx * dx + dy * dy + dz * dz + (F64x4::splat(1.0) - w);
    let u = w / r2.sqrt();
    let u3 = u / r2;
    let ms = F64x4::gather(&grid.m, s0, stride);
    let mt = F64x4::gather(&grid.m, t0, stride);
    for l in 0..4 {
        let e = &mut out[o0 + l * o_stride];
        let d = Vec3::new(dx.lane(l), dy.lane(l), dz.lane(l));
        e.phi += ms.lane(l) * (-u.lane(l));
        e.dphi += d * (ms.lane(l) * u3.lane(l));
        e.force += d * (u3.lane(l) * (-(mt.lane(l) * ms.lane(l))));
    }
}

/// Four-cell multipole accumulation (see [`accum_monopole_x4`] for the
/// lane layout). Mirrors [`accum_multipole`] +
/// [`LocalExpansion::accumulate_softened`] per lane: same operand
/// order, same association, with the source-quadrupole B3 contraction
/// computed once and reused (the scalar path evaluates it twice with
/// identical bits).
#[inline(always)]
fn accum_multipole_x4(
    grid: &MomentGrid,
    t0: usize,
    s0: usize,
    stride: usize,
    out: &mut [LocalExpansion],
    o0: usize,
    o_stride: usize,
) {
    let w = F64x4::gather(&grid.mask, t0, stride) * F64x4::gather(&grid.mask, s0, stride);
    let mt = F64x4::gather(&grid.m, t0, stride);
    let ms = F64x4::gather(&grid.m, s0, stride) * w;
    let qt: [F64x4; 6] = std::array::from_fn(|c| F64x4::gather(&grid.q[c], t0, stride));
    let qs: [F64x4; 6] = std::array::from_fn(|c| F64x4::gather(&grid.q[c], s0, stride) * w);
    let d = [
        F64x4::gather(&grid.comx, t0, stride) - F64x4::gather(&grid.comx, s0, stride),
        F64x4::gather(&grid.comy, t0, stride) - F64x4::gather(&grid.comy, s0, stride),
        F64x4::gather(&grid.comz, t0, stride) - F64x4::gather(&grid.comz, s0, stride),
    ];
    let t = KernelTensorsX4::at_softened(d, F64x4::splat(1.0) - w);
    // φ and its derivatives from the source moments.
    let d_phi = ms * t.b0 + t.contract_q_b2(&qs) * 0.5;
    let cq3_s = t.contract_q_b3(&qs);
    let grad_quad_s = [cq3_s[0] * 0.5, cq3_s[1] * 0.5, cq3_s[2] * 0.5];
    let d_dphi: [F64x4; 3] = std::array::from_fn(|a| t.b1[a] * ms + grad_quad_s[a]);
    let d_d2phi: [F64x4; 6] = std::array::from_fn(|n| ms * t.b2[n]);
    // Pair force in canonical, mirror-exact term forms.
    let neg_mm = -(mt * ms);
    let f_mono: [F64x4; 3] = std::array::from_fn(|a| t.b1[a] * neg_mm);
    let s_qs = mt * -0.5;
    let f_qs: [F64x4; 3] = std::array::from_fn(|a| cq3_s[a] * s_qs);
    let cq3_t = t.contract_q_b3(&qt);
    let s_qt = ms * -0.5;
    let f_qt: [F64x4; 3] = std::array::from_fn(|a| cq3_t[a] * s_qt);
    let f_quad: [F64x4; 3] = std::array::from_fn(|a| f_qs[a] + f_qt[a]);
    // torque += −d × f_quad · ½, component-wise as Vec3::cross computes it.
    let d_torque = [
        -(d[1] * f_quad[2] - d[2] * f_quad[1]) * 0.5,
        -(d[2] * f_quad[0] - d[0] * f_quad[2]) * 0.5,
        -(d[0] * f_quad[1] - d[1] * f_quad[0]) * 0.5,
    ];
    for l in 0..4 {
        let e = &mut out[o0 + l * o_stride];
        e.phi += d_phi.lane(l);
        e.dphi += Vec3::new(d_dphi[0].lane(l), d_dphi[1].lane(l), d_dphi[2].lane(l));
        for n in 0..6 {
            e.d2phi[n] += d_d2phi[n].lane(l);
        }
        e.force += Vec3::new(f_mono[0].lane(l), f_mono[1].lane(l), f_mono[2].lane(l));
        e.force += Vec3::new(f_qs[0].lane(l), f_qs[1].lane(l), f_qs[2].lane(l));
        e.force += Vec3::new(f_qt[0].lane(l), f_qt[1].lane(l), f_qt[2].lane(l));
        e.f_corr += Vec3::new(f_qt[0].lane(l), f_qt[1].lane(l), f_qt[2].lane(l));
        e.torque += Vec3::new(d_torque[0].lane(l), d_torque[1].lane(l), d_torque[2].lane(l));
    }
}

macro_rules! offset_kernel {
    ($name:ident, $name_into:ident, $name_range_into:ident, $accum:ident, $accum_x4:ident, $doc:literal) => {
        #[doc = $doc]
        /// Restricted to the target-cell slab `[start, end)` of the
        /// interior linear index; `out` gets `end − start` expansions,
        /// slab cell `c` at `out[c − start]`. Lane groups of four
        /// k-adjacent cells run through the [`F64x4`] path; a scalar
        /// tail covers the rest. Returns the interaction count.
        pub fn $name_range_into(
            grid: &MomentGrid,
            offsets: &[(i32, i32, i32)],
            start: usize,
            end: usize,
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            assert!(start <= end && end <= N_CELLS);
            reset_expansions_n(out, end - start);
            let mut interactions = 0u64;
            for &(dx, dy, dz) in offsets {
                let mut c = start;
                while c < end {
                    let (i, j, k) = interior_coords(c);
                    let t_idx = grid.idx(i, j, k);
                    let s_idx = grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                    if k + 4 <= N_SUB as isize && c + 4 <= end {
                        // Four k-adjacent targets: contiguous in both the
                        // extended grid (k fastest) and the output slab.
                        $accum_x4(grid, t_idx, s_idx, 1, out, c - start, 1);
                        for l in 0..4 {
                            interactions +=
                                (grid.present[t_idx + l] & grid.present[s_idx + l]) as u64;
                        }
                        c += 4;
                    } else {
                        $accum(grid, t_idx, s_idx, &mut out[c - start]);
                        interactions += (grid.present[t_idx] & grid.present[s_idx]) as u64;
                        c += 1;
                    }
                }
            }
            interactions
        }

        #[doc = $doc]
        /// Writes into a caller-provided buffer (reset first); returns
        /// the interaction count.
        pub fn $name_into(
            grid: &MomentGrid,
            offsets: &[(i32, i32, i32)],
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            $name_range_into(grid, offsets, 0, N_CELLS, out)
        }

        #[doc = $doc]
        pub fn $name(grid: &MomentGrid, offsets: &[(i32, i32, i32)]) -> KernelResult {
            let mut out = Vec::new();
            let interactions = $name_into(grid, offsets, &mut out);
            KernelResult { expansions: out, interactions }
        }
    };
}

offset_kernel!(
    monopole_kernel,
    monopole_kernel_into,
    monopole_kernel_range_into,
    accum_monopole,
    accum_monopole_x4,
    "Monopole–monopole kernel: point masses only (leaf/leaf node pairs). Applies `offsets` to every interior cell."
);
offset_kernel!(
    multipole_kernel,
    multipole_kernel_into,
    multipole_kernel_range_into,
    accum_multipole,
    accum_multipole_x4,
    "The combined multipole kernel: full M2L with quadrupoles and conservation corrections, for every interior cell over `offsets`."
);

/// Build the extended moment grid for one node from its own cell
/// moments and a halo lookup: `lookup(i, j, k)` returns the moment of
/// the (possibly out-of-node) cell at extended coordinates, or `None`
/// outside the domain.
pub fn gather_moments(
    width: i32,
    lookup: impl Fn(isize, isize, isize) -> Option<Multipole>,
) -> MomentGrid {
    let mut grid = MomentGrid::new(width);
    gather_moments_into(&mut grid, lookup);
    grid
}

/// [`gather_moments`] into an existing (e.g. pooled) grid of the right
/// width; the grid is reset first, so the result is identical to a
/// freshly built one.
pub fn gather_moments_into(
    grid: &mut MomentGrid,
    lookup: impl Fn(isize, isize, isize) -> Option<Multipole>,
) {
    grid.reset();
    let w = grid.width() as isize;
    let n = N_SUB as isize;
    for i in -w..n + w {
        for j in -w..n + w {
            for k in -w..n + w {
                if let Some(mp) = lookup(i, j, k) {
                    grid.set(i, j, k, &mp);
                }
            }
        }
    }
}

/// Parity of a cell: `(i&1) | ((j&1)<<1) | ((k&1)<<2)`.
#[inline]
fn parity_of(i: isize, j: isize, k: isize) -> u8 {
    ((i & 1) | ((j & 1) << 1) | ((k & 1) << 2)) as u8
}

macro_rules! parity_kernel {
    ($name:ident, $name_into:ident, $name_range_into:ident, $accum:ident, $accum_x4:ident) => {
        /// Parity-exact same-level kernel restricted to the target-cell
        /// slab `[start, end)` of the interior linear index: each cell
        /// uses the offset list of its parity, so every pair is owned
        /// by exactly one level of the tree walk. `out` gets
        /// `end − start` expansions, slab cell `c` at `out[c − start]`.
        /// A fully contained row vectorizes as two [`F64x4`] groups of
        /// four same-parity stride-2 cells (k parity alternates along a
        /// row, so same-parity cells share the offset list); partial
        /// rows take the scalar path. Returns the interaction count.
        pub fn $name_range_into(
            grid: &MomentGrid,
            stencil: &Stencil,
            start: usize,
            end: usize,
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            assert!(start <= end && end <= N_CELLS);
            reset_expansions_n(out, end - start);
            let mut interactions = 0u64;
            let mut c = start;
            while c < end {
                let (i, j, k) = interior_coords(c);
                if k == 0 && c + N_SUB <= end {
                    // Whole row: the four even-k cells, then the four
                    // odd-k cells, each group one lane pass.
                    for k0 in 0..2isize {
                        let t0 = grid.idx(i, j, k0);
                        let offsets = stencil.for_parity(parity_of(i, j, k0));
                        for &(dx, dy, dz) in offsets {
                            let s0 =
                                grid.idx(i + dx as isize, j + dy as isize, k0 + dz as isize);
                            $accum_x4(grid, t0, s0, 2, out, c - start + k0 as usize, 2);
                            for l in 0..4 {
                                interactions += (grid.present[t0 + 2 * l]
                                    & grid.present[s0 + 2 * l])
                                    as u64;
                            }
                        }
                    }
                    c += N_SUB;
                } else {
                    let t_idx = grid.idx(i, j, k);
                    let e = &mut out[c - start];
                    let offsets = stencil.for_parity(parity_of(i, j, k));
                    for &(dx, dy, dz) in offsets {
                        let s_idx = grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                        $accum(grid, t_idx, s_idx, e);
                        interactions += (grid.present[t_idx] & grid.present[s_idx]) as u64;
                    }
                    c += 1;
                }
            }
            interactions
        }

        /// Parity-exact same-level kernel (buffer-reusing variant):
        /// each cell uses the offset list of its parity, so every pair
        /// is owned by exactly one level of the tree walk.
        pub fn $name_into(
            grid: &MomentGrid,
            stencil: &Stencil,
            out: &mut Vec<LocalExpansion>,
        ) -> u64 {
            $name_range_into(grid, stencil, 0, N_CELLS, out)
        }

        /// Parity-exact same-level kernel: each cell uses the offset
        /// list of its parity, so every pair is owned by exactly one
        /// level of the tree walk.
        pub fn $name(grid: &MomentGrid, stencil: &Stencil) -> KernelResult {
            let mut out = Vec::new();
            let interactions = $name_into(grid, stencil, &mut out);
            KernelResult { expansions: out, interactions }
        }
    };
}

parity_kernel!(
    monopole_kernel_stencil,
    monopole_kernel_stencil_into,
    monopole_kernel_stencil_range_into,
    accum_monopole,
    accum_monopole_x4
);
parity_kernel!(
    multipole_kernel_stencil,
    multipole_kernel_stencil_into,
    multipole_kernel_stencil_range_into,
    accum_multipole,
    accum_multipole_x4
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::Stencil;

    /// A uniform lattice of unit point masses at integer cell centres.
    fn lattice(width: i32) -> MomentGrid {
        gather_moments(width, |i, j, k| {
            Some(Multipole::monopole(
                1.0,
                Vec3::new(i as f64, j as f64, k as f64),
            ))
        })
    }

    #[test]
    fn moment_grid_set_get_roundtrip() {
        let mut g = MomentGrid::new(2);
        assert!(g.get(0, 0, 0).is_none());
        let mp = Multipole {
            m: 2.0,
            com: Vec3::new(0.1, 0.2, 0.3),
            q: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        g.set(-2, 5, 9, &mp);
        assert_eq!(g.get(-2, 5, 9).unwrap(), mp);
        g.reset();
        assert!(g.get(-2, 5, 9).is_none());
    }

    #[test]
    fn monopole_kernel_counts_interactions() {
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let res = monopole_kernel(&grid, s.offsets());
        // Full lattice: every cell sees the whole stencil.
        assert_eq!(res.interactions, (s.len() * 512) as u64);
        assert_eq!(res.expansions.len(), 512);
    }

    #[test]
    fn uniform_lattice_center_feels_no_net_force() {
        // Symmetric surroundings: the interior-most cell's stencil
        // contributions cancel.
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let res = monopole_kernel(&grid, s.offsets());
        // Cell (4,4,4)-ish is symmetric wrt the stencil in this lattice
        // (sources exist everywhere).
        let e = &res.expansions[interior_index(4, 4, 4)];
        assert!(
            e.force.norm() < 1e-12,
            "symmetric lattice force should cancel, got {:?}",
            e.force
        );
        assert!(e.phi < 0.0, "potential must be negative");
    }

    #[test]
    fn lattice_momentum_conservation_with_closed_halo() {
        // Make the halo empty: only interior cells interact; total
        // momentum change (sum of force ledgers) must vanish to
        // round-off because every pair is inside.
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            let n = N_SUB as isize;
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) {
                // Irregular masses for a nontrivial test.
                let m = 1.0 + ((i * 7 + j * 3 + k) % 5) as f64 * 0.25;
                Some(Multipole::monopole(m, Vec3::new(i as f64, j as f64, k as f64)))
            } else {
                None
            }
        });
        let res = monopole_kernel(&grid, s.offsets());
        let total: Vec3 = res.expansions.iter().map(|e| e.force).sum();
        let scale: f64 = res.expansions.iter().map(|e| e.force.norm()).sum();
        assert!(
            total.norm() <= 1e-13 * scale.max(1.0),
            "momentum residual {:?} at scale {scale}",
            total
        );
    }

    #[test]
    fn multipole_kernel_conserves_momentum_and_angular_momentum() {
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            let n = N_SUB as isize;
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) {
                let m = 1.0 + ((i + 2 * j + 3 * k) % 7) as f64 * 0.5;
                let off = 0.1 * ((i * j + k) % 3) as f64;
                Some(Multipole {
                    m,
                    com: Vec3::new(i as f64 + off, j as f64 - off, k as f64),
                    q: [
                        0.01 * (i % 3) as f64,
                        0.01 * (j % 3) as f64,
                        0.01 * (k % 3) as f64,
                        0.005,
                        -0.002,
                        0.001,
                    ],
                })
            } else {
                None
            }
        });
        let res = multipole_kernel(&grid, s.offsets());
        // Linear momentum.
        let total_f: Vec3 = res.expansions.iter().map(|e| e.force).sum();
        let scale_f: f64 = res.expansions.iter().map(|e| e.force.norm()).sum();
        assert!(
            total_f.norm() <= 1e-13 * scale_f.max(1.0),
            "momentum residual {total_f:?}"
        );
        // Angular momentum: orbital torque + deposited spin torques.
        let mut orbital = Vec3::ZERO;
        let mut spin = Vec3::ZERO;
        let mut scale_t = 0.0;
        for i in 0..N_SUB as isize {
            for j in 0..N_SUB as isize {
                for k in 0..N_SUB as isize {
                    let e = &res.expansions[interior_index(i, j, k)];
                    let com = grid.get(i, j, k).unwrap().com;
                    orbital += com.cross(e.force);
                    spin += e.torque;
                    scale_t += com.cross(e.force).norm() + e.torque.norm();
                }
            }
        }
        let residual = (orbital + spin).norm();
        assert!(
            residual <= 1e-13 * scale_t.max(1.0),
            "angular momentum residual {residual} at scale {scale_t}"
        );
    }

    #[test]
    fn missing_sources_are_skipped() {
        let s = Stencil::octotiger();
        // Only one cell present: no interactions at all.
        let grid = gather_moments(s.width(), |i, j, k| {
            if (i, j, k) == (4, 4, 4) {
                Some(Multipole::monopole(1.0, Vec3::ZERO))
            } else {
                None
            }
        });
        let res = monopole_kernel(&grid, s.offsets());
        assert_eq!(res.interactions, 0);
        assert!(res.expansions.iter().all(|e| e.phi == 0.0));
    }

    #[test]
    fn masked_slots_contribute_exact_zero() {
        // A partially filled grid: the branchless (masked) kernels must
        // produce finite values everywhere and exact zeros for cells
        // with no present pairs.
        let s = Stencil::octotiger();
        let n = N_SUB as isize;
        let grid = gather_moments(s.width(), |i, j, k| {
            if (0..n).contains(&i) && (0..n).contains(&j) && (0..n).contains(&k) && (i + j + k) % 2 == 0 {
                Some(Multipole::monopole(1.0, Vec3::new(i as f64, j as f64, k as f64)))
            } else {
                None
            }
        });
        for res in [
            monopole_kernel(&grid, s.offsets()),
            multipole_kernel(&grid, s.offsets()),
            monopole_kernel_stencil(&grid, &s),
            multipole_kernel_stencil(&grid, &s),
        ] {
            assert!(res.expansions.iter().all(|e| e.phi.is_finite()
                && e.dphi.norm().is_finite()
                && e.force.norm().is_finite()));
        }
    }

    /// Splitmix64 — deterministic pseudo-random doubles in [-1, 1).
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 52) as f64 * 2.0 - 1.0
    }

    /// A random moment grid: jittered centres, irregular masses and
    /// quadrupoles, ~1/8 of slots absent (mask = 0).
    fn random_grid(width: i32, seed: u64) -> MomentGrid {
        let mut state = seed;
        let mut grid = MomentGrid::new(width);
        let w = width as isize;
        let n = N_SUB as isize;
        for i in -w..n + w {
            for j in -w..n + w {
                for k in -w..n + w {
                    let m = 1.0 + 0.5 * splitmix(&mut state);
                    let com = Vec3::new(
                        i as f64 + 0.2 * splitmix(&mut state),
                        j as f64 + 0.2 * splitmix(&mut state),
                        k as f64 + 0.2 * splitmix(&mut state),
                    );
                    let q = std::array::from_fn(|_| 0.05 * splitmix(&mut state));
                    let absent = splitmix(&mut state) < -0.75;
                    if !absent {
                        grid.set(i, j, k, &Multipole { m, com, q });
                    }
                }
            }
        }
        grid
    }

    fn assert_expansion_bits(a: &LocalExpansion, b: &LocalExpansion, what: &str) {
        assert_eq!(a.phi.to_bits(), b.phi.to_bits(), "{what}: phi");
        for ax in 0..3 {
            assert_eq!(a.dphi[ax].to_bits(), b.dphi[ax].to_bits(), "{what}: dphi");
            assert_eq!(a.force[ax].to_bits(), b.force[ax].to_bits(), "{what}: force");
            assert_eq!(a.f_corr[ax].to_bits(), b.f_corr[ax].to_bits(), "{what}: f_corr");
            assert_eq!(a.torque[ax].to_bits(), b.torque[ax].to_bits(), "{what}: torque");
        }
        for nn in 0..6 {
            assert_eq!(a.d2phi[nn].to_bits(), b.d2phi[nn].to_bits(), "{what}: d2phi");
        }
    }

    /// The `F64x4` kernels must match the scalar accumulation loops
    /// bit-for-bit on random moment grids — the vectorization contract.
    #[test]
    fn simd_kernels_match_scalar_bit_for_bit() {
        let s = Stencil::octotiger();
        for seed in [0x5eed_0001u64, 0x5eed_0002] {
            let grid = random_grid(s.width(), seed);

            // Scalar references: the pre-SIMD loops, one accum per
            // (offset, cell) pair in the original order.
            let scalar_offset = |accum: fn(&MomentGrid, usize, usize, &mut LocalExpansion)| {
                let mut out = vec![LocalExpansion::default(); N_CELLS];
                let n = N_SUB as isize;
                for &(dx, dy, dz) in s.offsets() {
                    for i in 0..n {
                        for j in 0..n {
                            for k in 0..n {
                                let t_idx = grid.idx(i, j, k);
                                let s_idx =
                                    grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                                accum(&grid, t_idx, s_idx, &mut out[interior_index(i, j, k)]);
                            }
                        }
                    }
                }
                out
            };
            let scalar_stencil = |accum: fn(&MomentGrid, usize, usize, &mut LocalExpansion)| {
                let mut out = vec![LocalExpansion::default(); N_CELLS];
                let n = N_SUB as isize;
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            let t_idx = grid.idx(i, j, k);
                            let e = &mut out[interior_index(i, j, k)];
                            for &(dx, dy, dz) in s.for_parity(parity_of(i, j, k)) {
                                let s_idx =
                                    grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                                accum(&grid, t_idx, s_idx, e);
                            }
                        }
                    }
                }
                out
            };

            for (what, simd, scalar) in [
                (
                    "monopole offsets",
                    monopole_kernel(&grid, s.offsets()).expansions,
                    scalar_offset(accum_monopole),
                ),
                (
                    "multipole offsets",
                    multipole_kernel(&grid, s.offsets()).expansions,
                    scalar_offset(accum_multipole),
                ),
                (
                    "monopole stencil",
                    monopole_kernel_stencil(&grid, &s).expansions,
                    scalar_stencil(accum_monopole),
                ),
                (
                    "multipole stencil",
                    multipole_kernel_stencil(&grid, &s).expansions,
                    scalar_stencil(accum_multipole),
                ),
            ] {
                assert_eq!(simd.len(), scalar.len());
                for (a, b) in simd.iter().zip(scalar.iter()) {
                    assert_expansion_bits(a, b, &format!("{what} (seed {seed:#x})"));
                }
            }
        }
    }

    /// Concatenating slab ranges (including lane-breaking odd sizes
    /// that force the scalar tail) reproduces the full kernel exactly,
    /// and the per-slab interaction counts sum to the full count.
    #[test]
    fn range_kernels_concatenate_to_full() {
        let s = Stencil::octotiger();
        let grid = random_grid(s.width(), 0xc0ffee);
        let full_off = multipole_kernel(&grid, s.offsets());
        let full_sten = multipole_kernel_stencil(&grid, &s);
        let full_mono = monopole_kernel(&grid, s.offsets());
        for chunk in [1usize, 5, 8, 64, N_CELLS] {
            let mut cat_off = Vec::new();
            let mut cat_sten = Vec::new();
            let mut cat_mono = Vec::new();
            let (mut i_off, mut i_sten, mut i_mono) = (0u64, 0u64, 0u64);
            let mut start = 0;
            while start < N_CELLS {
                let end = (start + chunk).min(N_CELLS);
                let mut buf = Vec::new();
                i_off += multipole_kernel_range_into(&grid, s.offsets(), start, end, &mut buf);
                cat_off.extend_from_slice(&buf);
                i_sten += multipole_kernel_stencil_range_into(&grid, &s, start, end, &mut buf);
                cat_sten.extend_from_slice(&buf);
                i_mono += monopole_kernel_range_into(&grid, s.offsets(), start, end, &mut buf);
                cat_mono.extend_from_slice(&buf);
                start = end;
            }
            assert_eq!(i_off, full_off.interactions, "chunk {chunk}");
            assert_eq!(i_sten, full_sten.interactions, "chunk {chunk}");
            assert_eq!(i_mono, full_mono.interactions, "chunk {chunk}");
            for (cat, full, what) in [
                (&cat_off, &full_off.expansions, "offsets"),
                (&cat_sten, &full_sten.expansions, "stencil"),
                (&cat_mono, &full_mono.expansions, "monopole"),
            ] {
                assert_eq!(cat.len(), full.len());
                for (a, b) in cat.iter().zip(full.iter()) {
                    assert_expansion_bits(a, b, &format!("{what} chunk {chunk}"));
                }
            }
        }
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let s = Stencil::octotiger();
        let grid = lattice(s.width());
        let fresh = monopole_kernel_stencil(&grid, &s);
        // A dirty, reused buffer must give identical results.
        let mut buf = vec![
            LocalExpansion {
                phi: 99.0,
                ..LocalExpansion::default()
            };
            7
        ];
        let cap_marker = {
            buf.reserve(600);
            buf.capacity()
        };
        let interactions = monopole_kernel_stencil_into(&grid, &s, &mut buf);
        assert_eq!(interactions, fresh.interactions);
        assert_eq!(buf.capacity(), cap_marker, "no reallocation on reuse");
        for (a, b) in buf.iter().zip(fresh.expansions.iter()) {
            assert_eq!(a.phi.to_bits(), b.phi.to_bits());
            for ax in 0..3 {
                assert_eq!(a.force[ax].to_bits(), b.force[ax].to_bits());
            }
        }
    }
}
