//! Cell multipole moments and the upward (P2M / M2M) pass.
//!
//! "The first of the three FMM steps requires a bottom up traversal of
//! the octree datastructure. The fluid density of the cells of the
//! highest level is the starting point. The multipole moments of every
//! other cell are then calculated using the multipole moments of its
//! child cells. We can additionally compute the center of mass for each
//! refined cell" (§4.3).
//!
//! Leaf cells assume locally homogeneous density (as the paper notes in
//! §2), i.e. they are monopoles at their cell centre. Aggregated cells
//! carry mass, centre of mass, and second moments about the centre of
//! mass (the dipole vanishes by construction).

use crate::tensors::SYM2;
use util::vec3::Vec3;

/// Multipole moments of one cell: mass, centre of mass, and raw second
/// moments `q_ab = Σ mᵢ δᵢ_a δᵢ_b` about the centre of mass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Multipole {
    pub m: f64,
    pub com: Vec3,
    pub q: [f64; 6],
}

// Wire codec: cell moments travel between localities in the distributed
// FMM exchange; f64 bit patterns round-trip exactly.
serde::impl_codec_struct!(Multipole { m, com, q });

impl Multipole {
    /// A leaf cell: homogeneous density → point mass at the cell centre.
    pub fn monopole(m: f64, center: Vec3) -> Multipole {
        Multipole { m, com: center, q: [0.0; 6] }
    }

    /// Whether this is a pure monopole (no second moments).
    pub fn is_monopole(&self) -> bool {
        self.q.iter().all(|&v| v == 0.0)
    }

    /// M2M: combine child multipoles into one. The result's centre of
    /// mass is the mass-weighted mean; second moments transport by the
    /// parallel-axis theorem `q'_ab = q_ab + m δ_a δ_b`.
    pub fn combine(children: &[Multipole]) -> Multipole {
        let m: f64 = children.iter().map(|c| c.m).sum();
        if m <= 0.0 {
            // Massless region: keep a degenerate monopole at the
            // geometric mean of child positions to stay well-defined.
            let n = children.len().max(1) as f64;
            let com = children.iter().map(|c| c.com).sum::<Vec3>() / n;
            return Multipole { m: 0.0, com, q: [0.0; 6] };
        }
        let com = children.iter().map(|c| c.com * c.m).sum::<Vec3>() / m;
        let mut q = [0.0; 6];
        for c in children {
            let d = (c.com - com).to_array();
            for (n, (a, b)) in SYM2.iter().enumerate() {
                q[n] += c.q[n] + c.m * d[*a] * d[*b];
            }
        }
        Multipole { m, com, q }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn monopole_basics() {
        let mp = Multipole::monopole(2.0, Vec3::new(1.0, 2.0, 3.0));
        assert!(mp.is_monopole());
        assert_eq!(mp.m, 2.0);
    }

    #[test]
    fn combine_two_point_masses() {
        let a = Multipole::monopole(1.0, Vec3::new(-1.0, 0.0, 0.0));
        let b = Multipole::monopole(1.0, Vec3::new(1.0, 0.0, 0.0));
        let c = Multipole::combine(&[a, b]);
        assert_eq!(c.m, 2.0);
        assert!(c.com.norm() < 1e-15);
        // q_xx = 1*1 + 1*1 = 2; all others zero.
        assert!((c.q[0] - 2.0).abs() < 1e-15);
        for n in 1..6 {
            assert_eq!(c.q[n], 0.0);
        }
        assert!(!c.is_monopole());
    }

    #[test]
    fn combine_unequal_masses_weights_com() {
        let a = Multipole::monopole(3.0, Vec3::new(0.0, 0.0, 0.0));
        let b = Multipole::monopole(1.0, Vec3::new(4.0, 0.0, 0.0));
        let c = Multipole::combine(&[a, b]);
        assert!((c.com.x - 1.0).abs() < 1e-15);
        // q_xx = 3·1² + 1·3² = 12.
        assert!((c.q[0] - 12.0).abs() < 1e-12);
    }

    #[test]
    fn massless_combination_is_degenerate() {
        let a = Multipole::monopole(0.0, Vec3::new(1.0, 0.0, 0.0));
        let b = Multipole::monopole(0.0, Vec3::new(3.0, 0.0, 0.0));
        let c = Multipole::combine(&[a, b]);
        assert_eq!(c.m, 0.0);
        assert!((c.com.x - 2.0).abs() < 1e-15);
        assert!(c.is_monopole());
    }

    #[test]
    fn combine_is_associative_on_totals() {
        // ((a+b) + (c+d)) must equal (a+b+c+d) in mass, com, and q up to
        // round-off.
        let parts = [
            Multipole::monopole(1.0, Vec3::new(0.0, 0.0, 0.0)),
            Multipole::monopole(2.0, Vec3::new(1.0, 0.0, 0.0)),
            Multipole::monopole(3.0, Vec3::new(0.0, 1.0, 0.0)),
            Multipole::monopole(4.0, Vec3::new(0.0, 0.0, 1.0)),
        ];
        let ab = Multipole::combine(&parts[0..2]);
        let cd = Multipole::combine(&parts[2..4]);
        let nested = Multipole::combine(&[ab, cd]);
        let flat = Multipole::combine(&parts);
        assert!((nested.m - flat.m).abs() < 1e-14);
        assert!((nested.com - flat.com).norm() < 1e-14);
        for n in 0..6 {
            assert!(
                (nested.q[n] - flat.q[n]).abs() < 1e-12,
                "q[{n}]: {} vs {}",
                nested.q[n],
                flat.q[n]
            );
        }
    }

    proptest! {
        #[test]
        fn mass_and_com_conserved(ms in proptest::collection::vec(0.1f64..10.0, 2..9),
                                  xs in proptest::collection::vec(-5.0f64..5.0, 2..9)) {
            let n = ms.len().min(xs.len());
            let parts: Vec<Multipole> = (0..n)
                .map(|i| Multipole::monopole(ms[i], Vec3::new(xs[i], xs[(i+1) % n], 0.0)))
                .collect();
            let c = Multipole::combine(&parts);
            let m: f64 = ms[..n].iter().sum();
            prop_assert!((c.m - m).abs() < 1e-12 * m);
            let com: Vec3 = parts.iter().map(|p| p.com * p.m).sum::<Vec3>() / m;
            prop_assert!((c.com - com).norm() < 1e-12);
            // q is positive semi-definite on the diagonal.
            prop_assert!(c.q[0] >= -1e-12 && c.q[1] >= -1e-12 && c.q[2] >= -1e-12);
        }
    }
}
