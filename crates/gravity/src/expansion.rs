//! Taylor (local) expansions and the M2L / L2L operations.
//!
//! "The result of these interactions is a Taylor series expansion ...
//! In the third FMM step ... the respective Taylor series expansion of
//! the parent node is passed to the child nodes and accumulated" (§4.3).
//!
//! A [`LocalExpansion`] carries the potential, its gradient, and its
//! Hessian about a cell's centre of mass, plus the conservation
//! bookkeeping: the correction force density and torque density that
//! make linear and angular momentum conservation exact (see crate
//! docs).

use crate::multipole::Multipole;
use crate::tensors::{KernelTensors, SYM2};
use util::vec3::Vec3;

/// Taylor expansion of the gravitational potential about a point, plus
/// the pairwise conservation corrections accumulated at that point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LocalExpansion {
    /// Potential φ.
    pub phi: f64,
    /// Gradient ∇φ (acceleration is −∇φ).
    pub dphi: Vec3,
    /// Hessian of φ (symmetric storage), used to translate ∇φ in L2L.
    pub d2phi: [f64; 6],
    /// Total pair force on the cell from same-level interactions,
    /// accumulated in mirror-exact canonical terms (see
    /// [`LocalExpansion::accumulate`]); the conservation-grade quantity
    /// drivers should use for the momentum update.
    pub force: Vec3,
    /// The part of `force` not captured by `−∇φ · m` (the target's own
    /// quadrupole against source monopole fields).
    pub f_corr: Vec3,
    /// Torque residual (half of each pair's), to be deposited into the
    /// evolved spin fields for exact angular momentum conservation.
    pub torque: Vec3,
}

impl LocalExpansion {
    /// Accumulate the interaction of a source multipole `src` on a
    /// target with moments `tgt`, separated by `d = tgt.com − src.com`.
    ///
    /// The pair force (on the target) to consistent quadrupole order is
    ///
    ///   F = −m_t m_s B1 − ½ m_t (q_s:B3) − ½ m_s (q_t:B3).
    ///
    /// Every term is computed in a *canonical form* — `B·(−(m_t·m_s))`
    /// and `(q:B3)·(−0.5·m_other)` — so that when the mirrored call runs
    /// on the other cell (with d → −d, which negates the odd tensors
    /// bit-exactly), each term value cancels its counterpart exactly.
    /// Per-cell sums then leave only additive round-off, which is the
    /// machine-precision momentum conservation of the paper. The torque
    /// residual −d × F (identically zero for the B1 part) is split in
    /// exact halves into `torque` for the spin fields.
    pub fn accumulate(&mut self, tgt: &Multipole, src: &Multipole, d: Vec3) {
        self.accumulate_softened(tgt, src, d, 0.0);
    }

    /// [`LocalExpansion::accumulate`] with `soft` added to `r²` when
    /// evaluating the kernel tensors. `soft = 0` reproduces the exact
    /// interaction bit-for-bit; the branchless SoA kernels pass the mask
    /// complement so zero-weight slots stay finite (every accumulated
    /// term is linear in the source moments, which those kernels scale
    /// by the weight).
    pub fn accumulate_softened(&mut self, tgt: &Multipole, src: &Multipole, d: Vec3, soft: f64) {
        let t = KernelTensors::at_softened(d, soft);
        // Potential and derivatives from the source moments.
        self.phi += src.m * t.b0 + 0.5 * t.contract_q_b2(&src.q);
        let grad_quad_s = t.contract_q_b3(&src.q) * 0.5;
        self.dphi += t.b1 * src.m + grad_quad_s;
        for n in 0..6 {
            self.d2phi[n] += src.m * t.b2[n];
        }
        // Pair force in canonical, mirror-exact term forms.
        let f_mono = t.b1 * (-(tgt.m * src.m));
        let f_qs = t.contract_q_b3(&src.q) * (-0.5 * tgt.m);
        let f_qt = t.contract_q_b3(&tgt.q) * (-0.5 * src.m);
        self.force += f_mono;
        self.force += f_qs;
        self.force += f_qt;
        // The f_qt part is not captured by −∇φ·m; expose it separately
        // so drivers using the φ-gradient path can add it.
        self.f_corr += f_qt;
        // Torque residual: only the quadrupole force parts contribute
        // (d × B1 ∥ d vanishes identically in floating point).
        let f_quad = f_qs + f_qt;
        self.torque += -d.cross(f_quad) * 0.5;
    }

    /// L2L: translate this expansion by `delta` (from the parent cell's
    /// centre of mass to the child cell's). Only the *field* parts
    /// (φ, ∇φ, Hessian) translate; the per-cell force/torque ledgers are
    /// level-local and are zeroed in the result — the solver applies
    /// them at the level where the interaction happened.
    pub fn translated(&self, delta: Vec3) -> LocalExpansion {
        let da = delta.to_array();
        // phi' = phi + dphi·δ + ½ δ·H·δ
        let mut quad = 0.0;
        let mut hdot = Vec3::ZERO;
        for (n, (a, b)) in SYM2.iter().enumerate() {
            let mult = if a == b { 1.0 } else { 2.0 };
            quad += mult * self.d2phi[n] * da[*a] * da[*b];
            hdot[*a] += self.d2phi[n] * da[*b];
            if a != b {
                hdot[*b] += self.d2phi[n] * da[*a];
            }
        }
        LocalExpansion {
            phi: self.phi + self.dphi.dot(delta) + 0.5 * quad,
            dphi: self.dphi + hdot,
            d2phi: self.d2phi,
            force: Vec3::ZERO,
            f_corr: Vec3::ZERO,
            torque: Vec3::ZERO,
        }
    }

    /// Add another expansion (e.g. the translated parent expansion).
    pub fn add(&mut self, other: &LocalExpansion) {
        self.phi += other.phi;
        self.dphi += other.dphi;
        for n in 0..6 {
            self.d2phi[n] += other.d2phi[n];
        }
        self.force += other.force;
        self.f_corr += other.f_corr;
        self.torque += other.torque;
    }

    /// The acceleration this expansion exerts on the cell: −∇φ.
    pub fn acceleration(&self) -> Vec3 {
        -self.dphi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monopole_pair_is_newtons_law() {
        let src = Multipole::monopole(3.0, Vec3::ZERO);
        let tgt = Multipole::monopole(2.0, Vec3::new(2.0, 0.0, 0.0));
        let mut l = LocalExpansion::default();
        l.accumulate(&tgt, &src, tgt.com - src.com);
        // φ = −m/r = −1.5; g = −∇φ points toward the source with
        // magnitude m/r² = 0.75.
        assert!((l.phi - (-1.5)).abs() < 1e-15);
        let g = l.acceleration();
        assert!((g.x - (-0.75)).abs() < 1e-15);
        assert!(g.y.abs() < 1e-15 && g.z.abs() < 1e-15);
        // Monopole pairs have no corrections.
        assert_eq!(l.f_corr, Vec3::ZERO);
        assert_eq!(l.torque, Vec3::ZERO);
    }

    #[test]
    fn pair_forces_cancel_to_machine_precision() {
        // The linear-momentum property: every force *term* cancels its
        // mirror exactly; the per-cell three-term sums leave only a few
        // ulps of additive round-off.
        let a = Multipole {
            m: 2.5,
            com: Vec3::new(0.1, -0.2, 0.3),
            q: [0.4, 0.3, 0.2, 0.1, -0.05, 0.02],
        };
        let b = Multipole {
            m: 1.5,
            com: Vec3::new(3.1, 1.2, -0.7),
            q: [0.2, 0.1, 0.3, -0.1, 0.04, 0.03],
        };
        let d = a.com - b.com;
        let mut la = LocalExpansion::default();
        la.accumulate(&a, &b, d);
        let mut lb = LocalExpansion::default();
        lb.accumulate(&b, &a, -d);
        let residual = (la.force + lb.force).norm();
        let scale = la.force.norm();
        assert!(
            residual <= 8.0 * f64::EPSILON * scale,
            "momentum residual {residual} at force scale {scale}"
        );
    }

    #[test]
    fn monopole_pair_forces_cancel_bit_exactly() {
        // With no quadrupoles there is a single force term per side, and
        // cancellation is bit-exact.
        let a = Multipole::monopole(2.5, Vec3::new(0.1, -0.2, 0.3));
        let b = Multipole::monopole(1.5, Vec3::new(3.1, 1.2, -0.7));
        let d = a.com - b.com;
        let mut la = LocalExpansion::default();
        la.accumulate(&a, &b, d);
        let mut lb = LocalExpansion::default();
        lb.accumulate(&b, &a, -d);
        for axis in 0..3 {
            assert_eq!(la.force[axis].to_bits(), (-lb.force[axis]).to_bits());
        }
    }

    #[test]
    fn pair_torque_halves_close_the_angular_momentum_budget() {
        let a = Multipole {
            m: 2.0,
            com: Vec3::new(0.0, 0.0, 0.0),
            q: [0.5, 0.2, 0.1, 0.05, 0.0, -0.02],
        };
        let b = Multipole {
            m: 3.0,
            com: Vec3::new(2.0, 1.0, 0.5),
            q: [0.1, 0.4, 0.2, -0.03, 0.01, 0.0],
        };
        let d = a.com - b.com;
        let mut la = LocalExpansion::default();
        la.accumulate(&a, &b, d);
        let mut lb = LocalExpansion::default();
        lb.accumulate(&b, &a, -d);
        // Total orbital torque + deposited spin torques must vanish to
        // round-off.
        let orbital = a.com.cross(la.force) + b.com.cross(lb.force);
        let total = orbital + la.torque + lb.torque;
        let scale = a.com.cross(la.force).norm().max(la.torque.norm()).max(1.0);
        assert!(
            total.norm() <= 64.0 * f64::EPSILON * scale,
            "angular momentum residual {total:?} at scale {scale}"
        );
        // And the two deposited halves agree to round-off.
        assert!((la.torque - lb.torque).norm() <= 8.0 * f64::EPSILON * la.torque.norm().max(1.0));
    }

    #[test]
    fn quadrupole_field_matches_two_point_masses() {
        // Source: two points at ±1 on x, total m = 2. Its quadrupole
        // expansion evaluated far away must approach the exact field.
        let p1 = Multipole::monopole(1.0, Vec3::new(1.0, 0.0, 0.0));
        let p2 = Multipole::monopole(1.0, Vec3::new(-1.0, 0.0, 0.0));
        let combined = crate::multipole::Multipole::combine(&[p1, p2]);
        let target = Multipole::monopole(1.0, Vec3::new(10.0, 4.0, -3.0));

        let mut approx = LocalExpansion::default();
        approx.accumulate(&target, &combined, target.com - combined.com);

        let mut exact = LocalExpansion::default();
        exact.accumulate(&target, &p1, target.com - p1.com);
        exact.accumulate(&target, &p2, target.com - p2.com);

        let rel_phi = (approx.phi - exact.phi).abs() / exact.phi.abs();
        assert!(rel_phi < 1e-4, "phi error {rel_phi}");
        let rel_g = (approx.acceleration() - exact.acceleration()).norm()
            / exact.acceleration().norm();
        assert!(rel_g < 1e-3, "g error {rel_g}");
        // And the quadrupole must improve on the bare monopole.
        let mut mono = LocalExpansion::default();
        mono.accumulate(
            &target,
            &Multipole::monopole(combined.m, combined.com),
            target.com - combined.com,
        );
        let mono_err = (mono.phi - exact.phi).abs();
        let quad_err = (approx.phi - exact.phi).abs();
        assert!(quad_err < mono_err, "quadrupole must beat monopole");
    }

    #[test]
    fn translation_consistency() {
        // Evaluating the expansion at a shifted point via L2L must agree
        // with directly expanding about the shifted point (to the
        // truncation order).
        let src = Multipole::monopole(5.0, Vec3::ZERO);
        let base = Vec3::new(6.0, 2.0, -1.0);
        let delta = Vec3::new(0.05, -0.04, 0.03);
        let tgt0 = Multipole::monopole(1.0, base);
        let tgt1 = Multipole::monopole(1.0, base + delta);

        let mut at_base = LocalExpansion::default();
        at_base.accumulate(&tgt0, &src, base);
        let translated = at_base.translated(delta);

        let mut direct = LocalExpansion::default();
        direct.accumulate(&tgt1, &src, base + delta);

        assert!(
            (translated.phi - direct.phi).abs() < 1e-6 * direct.phi.abs(),
            "phi: {} vs {}",
            translated.phi,
            direct.phi
        );
        assert!(
            (translated.dphi - direct.dphi).norm() < 1e-3 * direct.dphi.norm(),
            "dphi: {:?} vs {:?}",
            translated.dphi,
            direct.dphi
        );
    }

    #[test]
    fn add_accumulates_all_parts() {
        let mut a = LocalExpansion {
            phi: 1.0,
            dphi: Vec3::new(1.0, 0.0, 0.0),
            d2phi: [1.0; 6],
            force: Vec3::new(2.0, 0.0, 0.0),
            f_corr: Vec3::new(0.5, 0.0, 0.0),
            torque: Vec3::new(0.0, 0.25, 0.0),
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.phi, 2.0);
        assert_eq!(a.dphi.x, 2.0);
        assert_eq!(a.d2phi[3], 2.0);
        assert_eq!(a.force.x, 4.0);
        assert_eq!(a.f_corr.x, 1.0);
        assert_eq!(a.torque.y, 0.5);
    }

    #[test]
    fn translation_zeroes_level_local_ledgers() {
        let mut a = LocalExpansion::default();
        let src = Multipole {
            m: 1.0,
            com: Vec3::ZERO,
            q: [0.1, 0.2, 0.3, 0.0, 0.0, 0.0],
        };
        let tgt = Multipole {
            m: 1.0,
            com: Vec3::new(5.0, 0.0, 0.0),
            q: [0.3, 0.2, 0.1, 0.0, 0.0, 0.0],
        };
        a.accumulate(&tgt, &src, tgt.com - src.com);
        assert!(a.force.norm() > 0.0);
        let t = a.translated(Vec3::new(0.1, 0.0, 0.0));
        assert_eq!(t.force, Vec3::ZERO);
        assert_eq!(t.f_corr, Vec3::ZERO);
        assert_eq!(t.torque, Vec3::ZERO);
    }
}
