//! Scratch-buffer pooling for the FMM hot path.
//!
//! Every same-level pass needs one extended [`MomentGrid`] (≈ 9 arrays
//! of `(8 + 2·width)³` doubles) and one or two `Vec<LocalExpansion>`
//! output buffers per node. Allocating those per node per solve
//! dominated the allocator profile; the pool recycles them so that a
//! steady-state solve performs **zero** heap allocations for scratch —
//! the reuse discipline Octo-Tiger applies to its kernel staging
//! buffers. Hits and misses are counted and published by the solver as
//! the `fmm/scratch_hits` / `fmm/scratch_misses` performance counters.

use crate::expansion::LocalExpansion;
use crate::kernels::MomentGrid;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// A free-list pool of FMM scratch buffers, shared across worker tasks.
#[derive(Default)]
pub struct ScratchPool {
    grids: Mutex<Vec<MomentGrid>>,
    expansions: Mutex<Vec<Vec<LocalExpansion>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScratchPool {
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Take a moment grid of halo width `width`, reusing a pooled one
    /// when available (a width mismatch — only possible if the stencil
    /// changes — discards the pooled grid and counts a miss).
    pub fn take_grid(&self, width: i32) -> MomentGrid {
        let candidate = self.grids.lock().pop();
        match candidate {
            Some(g) if g.width() == width => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                // The gather resets it; hand it back as-is.
                g
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                MomentGrid::new(width)
            }
        }
    }

    /// Return a grid to the pool.
    pub fn put_grid(&self, grid: MomentGrid) {
        self.grids.lock().push(grid);
    }

    /// Take an expansion buffer; the kernels reset it before use, so a
    /// recycled buffer's stale contents are harmless.
    pub fn take_expansions(&self) -> Vec<LocalExpansion> {
        match self.expansions.lock().pop() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        }
    }

    /// Return an expansion buffer to the pool.
    pub fn put_expansions(&self, buf: Vec<LocalExpansion>) {
        self.expansions.lock().push(buf);
    }

    /// Pre-populate the free lists so a solve of known shape never
    /// misses mid-flight (top-ups count as misses, exactly like lazy
    /// allocation would).
    pub fn ensure(&self, n_grids: usize, width: i32, n_expansions: usize) {
        {
            let mut grids = self.grids.lock();
            grids.retain(|g| g.width() == width);
            while grids.len() < n_grids {
                self.misses.fetch_add(1, Ordering::Relaxed);
                grids.push(MomentGrid::new(width));
            }
        }
        let mut exps = self.expansions.lock();
        while exps.len() < n_expansions {
            self.misses.fetch_add(1, Ordering::Relaxed);
            exps.push(Vec::new());
        }
    }

    /// Number of takes served from the pool.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of takes (or `ensure` top-ups) that had to allocate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_roundtrip_hits_after_first_miss() {
        let p = ScratchPool::new();
        let g = p.take_grid(2);
        assert_eq!((p.hits(), p.misses()), (0, 1));
        p.put_grid(g);
        let g = p.take_grid(2);
        assert_eq!((p.hits(), p.misses()), (1, 1));
        p.put_grid(g);
    }

    #[test]
    fn width_mismatch_is_a_miss() {
        let p = ScratchPool::new();
        p.put_grid(MomentGrid::new(1));
        let g = p.take_grid(3);
        assert_eq!(g.width(), 3);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn ensure_preallocates() {
        let p = ScratchPool::new();
        p.ensure(3, 2, 5);
        let before = p.misses();
        assert_eq!(before, 8);
        // Everything is now served from the pool.
        let g1 = p.take_grid(2);
        let g2 = p.take_grid(2);
        let e1 = p.take_expansions();
        assert_eq!(p.misses(), before);
        assert_eq!(p.hits(), 3);
        p.put_grid(g1);
        p.put_grid(g2);
        p.put_expansions(e1);
        // A second ensure with the same shape allocates nothing.
        p.ensure(3, 2, 5);
        assert_eq!(p.misses(), before);
    }
}
