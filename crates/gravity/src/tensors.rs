//! Cartesian derivative tensors of the gravity kernel φ(d) = −1/|d|.
//!
//! With `u = 1/|d|`:
//!
//! * `B0      = −u`
//! * `B1_a    = d_a u³`
//! * `B2_ab   = δ_ab u³ − 3 d_a d_b u⁵`
//! * `B3_abc  = −3(δ_ab d_c + δ_ac d_b + δ_bc d_a) u⁵ + 15 d_a d_b d_c u⁷`
//!
//! `B1` and `B3` are odd in `d`, `B0` and `B2` even — the property the
//! machine-precision momentum conservation rests on (negating `d`
//! negates odd tensors *exactly* in IEEE arithmetic).
//!
//! Symmetric rank-2 tensors are stored as `[xx, yy, zz, xy, xz, yz]`;
//! symmetric rank-3 tensors as the 10 independent components
//! `[xxx, yyy, zzz, xxy, xxz, xyy, yyz, xzz, yzz, xyz]`.

use util::vec3::Vec3;

/// Index pairs of the 6 rank-2 components.
pub const SYM2: [(usize, usize); 6] = [(0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)];

/// Multiplicity of each rank-2 component in a full contraction.
pub const SYM2_MULT: [f64; 6] = [1.0, 1.0, 1.0, 2.0, 2.0, 2.0];

/// Index triples of the 10 rank-3 components.
pub const SYM3: [(usize, usize, usize); 10] = [
    (0, 0, 0),
    (1, 1, 1),
    (2, 2, 2),
    (0, 0, 1),
    (0, 0, 2),
    (0, 1, 1),
    (1, 1, 2),
    (0, 2, 2),
    (1, 2, 2),
    (0, 1, 2),
];

/// Multiplicity of each rank-3 component in a full contraction.
pub const SYM3_MULT: [f64; 10] = [1.0, 1.0, 1.0, 3.0, 3.0, 3.0, 3.0, 3.0, 3.0, 6.0];

/// Compile-time full-index → symmetric-storage lookup for rank-3
/// tensors: `SYM3_INDEX[a][b][c]` is the position in [`SYM3`] of the
/// sorted triple `(a, b, c)`. (The naive per-access linear search was
/// the hottest instruction in the multipole kernel.)
pub const SYM3_INDEX: [[[usize; 3]; 3]; 3] = build_sym3_index();

const fn build_sym3_index() -> [[[usize; 3]; 3]; 3] {
    let mut table = [[[usize::MAX; 3]; 3]; 3];
    let mut a = 0;
    while a < 3 {
        let mut b = 0;
        while b < 3 {
            let mut c = 0;
            while c < 3 {
                // Sort the triple (network for 3 elements).
                let (mut x, mut y, mut z) = (a, b, c);
                if x > y {
                    let t = x;
                    x = y;
                    y = t;
                }
                if y > z {
                    let t = y;
                    y = z;
                    z = t;
                }
                if x > y {
                    let t = x;
                    x = y;
                    y = t;
                }
                let mut n = 0;
                while n < 10 {
                    let (p, q, r) = SYM3[n];
                    // SYM3 entries are not all pre-sorted; sort them too.
                    let (mut u, mut v, mut w) = (p, q, r);
                    if u > v {
                        let t = u;
                        u = v;
                        v = t;
                    }
                    if v > w {
                        let t = v;
                        v = w;
                        w = t;
                    }
                    if u > v {
                        let t = u;
                        u = v;
                        v = t;
                    }
                    if u == x && v == y && w == z {
                        table[a][b][c] = n;
                        break;
                    }
                    n += 1;
                }
                c += 1;
            }
            b += 1;
        }
        a += 1;
    }
    table
}

/// All derivative tensors of −1/r at separation `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTensors {
    pub b0: f64,
    pub b1: Vec3,
    pub b2: [f64; 6],
    pub b3: [f64; 10],
}

impl KernelTensors {
    /// Evaluate at separation `d` (must be nonzero).
    pub fn at(d: Vec3) -> KernelTensors {
        Self::at_softened(d, 0.0)
    }

    /// Evaluate at separation `d` with `soft` added to `r²`. With
    /// `soft = 0` this is the exact kernel (`x + 0.0` is bit-exact for
    /// the non-negative `r²`); the branchless SoA kernels pass
    /// `soft = 1 − w` so masked-out slots (weight `w = 0`, possibly
    /// coincident centres) still produce finite tensors that are then
    /// multiplied away by the zero weight.
    pub fn at_softened(d: Vec3, soft: f64) -> KernelTensors {
        let r2 = d.norm2() + soft;
        assert!(r2 > 0.0, "kernel tensors undefined at zero separation");
        let u2 = 1.0 / r2;
        let u = u2.sqrt();
        let u3 = u * u2;
        let u5 = u3 * u2;
        let u7 = u5 * u2;
        let da = d.to_array();
        let mut b2 = [0.0; 6];
        for (n, (a, b)) in SYM2.iter().enumerate() {
            let delta = if a == b { 1.0 } else { 0.0 };
            b2[n] = delta * u3 - 3.0 * da[*a] * da[*b] * u5;
        }
        let mut b3 = [0.0; 10];
        for (n, (a, b, c)) in SYM3.iter().enumerate() {
            let dab = if a == b { 1.0 } else { 0.0 };
            let dac = if a == c { 1.0 } else { 0.0 };
            let dbc = if b == c { 1.0 } else { 0.0 };
            b3[n] = -3.0 * (dab * da[*c] + dac * da[*b] + dbc * da[*a]) * u5
                + 15.0 * da[*a] * da[*b] * da[*c] * u7;
        }
        KernelTensors { b0: -u, b1: d * u3, b2, b3 }
    }

    /// Contract a symmetric rank-2 tensor `q` with `B2`: `q_ab B2_ab`.
    pub fn contract_q_b2(&self, q: &[f64; 6]) -> f64 {
        let mut s = 0.0;
        for n in 0..6 {
            s += SYM2_MULT[n] * q[n] * self.b2[n];
        }
        s
    }

    /// Contract a symmetric rank-2 tensor with `B3` over two indices:
    /// the vector `v_a = q_bc B3_abc`.
    pub fn contract_q_b3(&self, q: &[f64; 6]) -> Vec3 {
        let mut v = Vec3::ZERO;
        // For each free index a, sum q_bc B3_abc with multiplicity of (b,c).
        for (n2, (b, c)) in SYM2.iter().enumerate() {
            let w = SYM2_MULT[n2] * q[n2];
            for a in 0..3 {
                v[a] += w * self.b3_at(a, *b, *c);
            }
        }
        v
    }

    /// Full-index access to B3 (symmetrized storage lookup).
    #[inline]
    pub fn b3_at(&self, a: usize, b: usize, c: usize) -> f64 {
        self.b3[SYM3_INDEX[a][b][c]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn phi(d: Vec3) -> f64 {
        -1.0 / d.norm()
    }

    #[test]
    fn b0_is_potential() {
        let d = Vec3::new(1.0, 2.0, -2.0); // r = 3
        let t = KernelTensors::at(d);
        assert!((t.b0 - (-1.0 / 3.0)).abs() < 1e-15);
    }

    #[test]
    fn b1_matches_finite_difference() {
        let d = Vec3::new(0.7, -1.3, 2.1);
        let t = KernelTensors::at(d);
        let h = 1e-6;
        for a in 0..3 {
            let mut dp = d;
            dp[a] += h;
            let mut dm = d;
            dm[a] -= h;
            let fd = (phi(dp) - phi(dm)) / (2.0 * h);
            assert!((t.b1[a] - fd).abs() < 1e-8, "axis {a}: {} vs {fd}", t.b1[a]);
        }
    }

    #[test]
    fn b2_matches_finite_difference() {
        let d = Vec3::new(1.1, 0.4, -0.8);
        let t = KernelTensors::at(d);
        let h = 1e-5;
        for (n, (a, b)) in SYM2.iter().enumerate() {
            let mut dpp = d;
            dpp[*a] += h;
            dpp[*b] += h;
            let mut dpm = d;
            dpm[*a] += h;
            dpm[*b] -= h;
            let mut dmp = d;
            dmp[*a] -= h;
            dmp[*b] += h;
            let mut dmm = d;
            dmm[*a] -= h;
            dmm[*b] -= h;
            let fd = (phi(dpp) - phi(dpm) - phi(dmp) + phi(dmm)) / (4.0 * h * h);
            assert!(
                (t.b2[n] - fd).abs() < 1e-5,
                "component {n}: {} vs {fd}",
                t.b2[n]
            );
        }
    }

    #[test]
    fn b3_matches_finite_difference_of_b2() {
        let d = Vec3::new(-0.9, 1.6, 0.5);
        let h = 1e-6;
        let t = KernelTensors::at(d);
        for (n, (a, b, c)) in SYM3.iter().enumerate() {
            let mut dp = d;
            dp[*c] += h;
            let mut dm = d;
            dm[*c] -= h;
            let tp = KernelTensors::at(dp);
            let tm = KernelTensors::at(dm);
            // B2 component index for (a, b):
            let n2 = SYM2
                .iter()
                .position(|&(x, y)| (x, y) == (*a, *b) || (y, x) == (*a, *b))
                .unwrap();
            let fd = (tp.b2[n2] - tm.b2[n2]) / (2.0 * h);
            assert!(
                (t.b3[n] - fd).abs() < 1e-4 * (1.0 + fd.abs()),
                "component {n} ({a}{b}{c}): {} vs {fd}",
                t.b3[n]
            );
        }
    }

    #[test]
    fn parity_is_exact_in_floating_point() {
        // The conservation-critical property: odd tensors negate
        // *bit-exactly* under d -> -d; even tensors are identical.
        let d = Vec3::new(0.123456789, -4.56789, 2.71828);
        let t = KernelTensors::at(d);
        let tn = KernelTensors::at(-d);
        assert_eq!(t.b0.to_bits(), tn.b0.to_bits());
        for a in 0..3 {
            assert_eq!(t.b1[a].to_bits(), (-tn.b1[a]).to_bits());
        }
        for n in 0..6 {
            assert_eq!(t.b2[n].to_bits(), tn.b2[n].to_bits());
        }
        for n in 0..10 {
            assert_eq!(t.b3[n].to_bits(), (-tn.b3[n]).to_bits());
        }
    }

    #[test]
    fn b2_is_trace_free() {
        let d = Vec3::new(2.0, -1.0, 0.5);
        let t = KernelTensors::at(d);
        let trace = t.b2[0] + t.b2[1] + t.b2[2];
        assert!(trace.abs() < 1e-14, "Laplacian of 1/r must vanish, got {trace}");
    }

    #[test]
    fn sym3_index_table_is_complete_and_consistent() {
        for a in 0..3 {
            for b in 0..3 {
                for c in 0..3 {
                    let n = SYM3_INDEX[a][b][c];
                    assert!(n < 10, "missing entry for ({a},{b},{c})");
                    let mut lhs = [a, b, c];
                    lhs.sort_unstable();
                    let (p, q, r) = SYM3[n];
                    let mut rhs = [p, q, r];
                    rhs.sort_unstable();
                    assert_eq!(lhs, rhs, "wrong entry for ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn b3_full_index_lookup_is_symmetric() {
        let d = Vec3::new(1.0, 2.0, 3.0);
        let t = KernelTensors::at(d);
        assert_eq!(t.b3_at(0, 1, 2), t.b3_at(2, 1, 0));
        assert_eq!(t.b3_at(0, 0, 1), t.b3_at(1, 0, 0));
        assert_eq!(t.b3_at(0, 1, 0), t.b3_at(0, 0, 1));
    }

    #[test]
    #[should_panic(expected = "zero separation")]
    fn zero_separation_panics() {
        let _ = KernelTensors::at(Vec3::ZERO);
    }

    proptest! {
        #[test]
        fn contraction_matches_full_sum(dx in 0.5f64..3.0, dy in -3.0f64..3.0, dz in -3.0f64..3.0,
                                        q in proptest::array::uniform6(-2.0f64..2.0)) {
            let t = KernelTensors::at(Vec3::new(dx, dy, dz));
            // Expand q into a full symmetric 3x3 and contract by hand.
            let mut full = [[0.0; 3]; 3];
            for (n, (a, b)) in SYM2.iter().enumerate() {
                full[*a][*b] = q[n];
                full[*b][*a] = q[n];
            }
            let mut s = 0.0;
            for a in 0..3 {
                for b in 0..3 {
                    let n2 = SYM2.iter().position(|&(x, y)| (x, y) == (a.min(b), a.max(b))).unwrap();
                    s += full[a][b] * t.b2[n2];
                }
            }
            prop_assert!((t.contract_q_b2(&q) - s).abs() < 1e-10 * (1.0 + s.abs()));

            let v = t.contract_q_b3(&q);
            for a in 0..3 {
                let mut expect = 0.0;
                for b in 0..3 {
                    for c in 0..3 {
                        expect += full[b][c] * t.b3_at(a, b, c);
                    }
                }
                prop_assert!((v[a] - expect).abs() < 1e-9 * (1.0 + expect.abs()));
            }
        }
    }
}
