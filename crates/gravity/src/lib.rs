//! The grid-based fast multipole method (FMM) gravity solver — the
//! computational hotspot of Octo-Tiger (paper §4.3).
//!
//! "Our FMM variant operates on the grid cells directly since each grid
//! cell has a density value which determines its mass. ... We further
//! differ from other (cell-based) FMM variants ... by conserving not
//! only linear momentum, but also angular momentum, down to machine
//! precision."
//!
//! The three FMM steps of §4.3 map onto:
//!
//! 1. **Bottom-up** ([`solver`]): multipole moments and centres of mass
//!    of every cell at every level (leaf cells are locally homogeneous —
//!    point masses; coarser cells aggregate 2×2×2 finer cells by M2M).
//! 2. **Same-level** ([`kernels`], [`stencil`]): each cell interacts
//!    with its stencil of close neighbors. Two compute kernels, exactly
//!    as in the paper: monopole–monopole (12 flops/interaction) and the
//!    combined multipole kernel (455 flops/interaction). The stencil is
//!    generated from the two-level opening criterion; with θ = 0.5 it
//!    has 982 elements (the paper's geometric details give 1074 — same
//!    structure, slightly different counts; see DESIGN.md).
//! 3. **Top-down** ([`expansion`]): Taylor expansions pass from parent
//!    to child cells (L2L) and accumulate.
//!
//! **Conservation.** Linear momentum is conserved to machine precision
//! because every pair interaction is evaluated with exactly mirrored
//! arithmetic (odd derivative tensors negate exactly in IEEE floating
//! point). Angular momentum is conserved to machine precision by the
//! Marcello-style correction: the torque residual of each pair's
//! multipole force (the part not parallel to the separation) is
//! accumulated, split exactly in half, into the two cells' evolved spin
//! fields — the same spin fields the hydro solver uses (§4.2). Property
//! tests assert both.
//!
//! [`interaction_list`] is the array-of-structs interaction-list
//! baseline that §4.3 reports the stencil/SoA rewrite is 1.9–2.2×
//! faster than; `benches` regenerates that ablation.

pub mod direct;
pub mod expansion;
pub mod gpu;
pub mod interaction_list;
pub mod kernels;
pub mod multipole;
pub mod scratch;
pub mod solver;
pub mod stencil;
pub mod tensors;

pub use expansion::LocalExpansion;
pub use gpu::GpuContext;
pub use multipole::Multipole;
pub use scratch::ScratchPool;
pub use solver::{FmmSolver, GravityField};
pub use stencil::Stencil;

/// Floating point ops per monopole–monopole interaction (paper §4.3).
pub const MONO_MONO_FLOPS: u64 = 12;
/// Floating point ops per multipole interaction (paper §4.3).
pub const MULTI_FLOPS: u64 = 455;
/// Interactions per kernel launch: 512 cells × 1074 stencil elements
/// (paper §4.3). Used by the node-level performance model.
pub const INTERACTIONS_PER_LAUNCH: u64 = 549_888;
