//! Routing FMM kernel launches through the simulated GPU (§5.1), with
//! work aggregation (arXiv:2210.06438) batching them into fused
//! launches.
//!
//! "Each CPU thread manages a certain number of CUDA streams. When
//! launching a kernel, a thread first checks whether all of the CUDA
//! streams it manages are busy. If not, the kernel will be launched on
//! the GPU using an idle stream. Otherwise, the kernel will be executed
//! on the CPU by the current CPU worker thread."
//!
//! [`GpuContext`] owns the per-worker [`StreamPool`]s of one device,
//! plus one [`AggregationRegion`] per pool. Kernels are *typed work
//! items* — a [`KernelKind`] plus the input-slab descriptor
//! ([`SlabDesc`]) and the compute closure — submitted through
//! [`GpuContext::submit`], which buffers them in the caller's region.
//! When a slot window fills (or [`GpuContext::flush`] declares the
//! producer idle) the batch goes out as *one* launch on an idle stream
//! of the caller's pool; when every stream is busy, the §5.1 fallback
//! runs each item per-item on the CPU, exactly as an unaggregated
//! launch would have. The kernel closure is identical on both paths,
//! so where — and how batched — a launch lands never changes the
//! numbers, only the `fmm/kernels/gpu` vs `fmm/kernels/cpu` split (the
//! §6.1.2 observable, still counted per item) and the batching
//! counters.
//!
//! Non-worker threads (the main thread helping the scheduler, like in
//! HPX) submit through a dedicated *overflow* pool + region instead of
//! silently contending with worker 0's streams; such submissions are
//! counted in [`GpuContext::overflow_submits`].

use amt::trace::{self, TraceCategory};
use amt::{Future, Promise};
use gpusim::aggregation::{AggItem, AggregationRegion};
use gpusim::device::Device;
use gpusim::launch_policy::{LaunchStats, QueuePolicy, StreamPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use util::morton::MortonKey;

pub use gpusim::aggregation::{
    AggregationConfig, AggregationStats, DEFAULT_AGG_SLOTS, DEFAULT_AGG_WINDOW, HIST_LABELS,
};

/// Where one kernel launch was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchSite {
    Gpu,
    Cpu,
}

/// The kernel kinds the FMM solver submits; items of one kind aggregate
/// together (a fused launch runs one kernel body over many slabs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Same-level multipole-to-local over a target-cell slab.
    SameLevel,
    /// Leaf-only near-field P2P over a target-cell slab.
    NearField,
}

impl KernelKind {
    /// Every kind, in lane order.
    pub const ALL: [KernelKind; 2] = [KernelKind::SameLevel, KernelKind::NearField];

    /// The aggregation-lane index of this kind.
    pub fn index(self) -> usize {
        match self {
            KernelKind::SameLevel => 0,
            KernelKind::NearField => 1,
        }
    }

    /// Stable name for counters and labels.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::SameLevel => "same-level",
            KernelKind::NearField => "near-field",
        }
    }
}

/// The input-slab descriptor of one typed work item: which node's
/// gathered grid, and which target-cell range of it, the kernel reads.
#[derive(Debug, Clone, Copy)]
pub struct SlabDesc {
    /// The node whose gathered moment grid the kernel consumes.
    pub node: MortonKey,
    /// First target cell (inclusive).
    pub start: usize,
    /// Last target cell (exclusive).
    pub end: usize,
}

/// Per-worker stream pools + aggregation regions plus the shared launch
/// statistics for one simulated device.
pub struct GpuContext {
    /// `n_workers + 1` pools: index `w` belongs to worker `w`, the last
    /// one is the overflow pool for non-worker threads.
    pools: Vec<StreamPool>,
    /// One region per pool (same indexing).
    regions: Vec<AggregationRegion>,
    stats: Arc<LaunchStats>,
    agg_stats: Arc<AggregationStats>,
    overflow_submits: AtomicU64,
    n_workers: usize,
}

impl GpuContext {
    /// Partition `device`'s streams across `n_workers` CPU workers (the
    /// paper's static stream-to-thread assignment) plus one overflow
    /// pool for non-worker threads. Aggregation thresholds come from
    /// the environment ([`AggregationConfig::from_env`]).
    pub fn new(device: &Arc<Device>, n_workers: usize, policy: QueuePolicy) -> GpuContext {
        Self::with_aggregation(device, n_workers, policy, AggregationConfig::from_env())
    }

    /// [`GpuContext::new`] with explicit aggregation thresholds.
    pub fn with_aggregation(
        device: &Arc<Device>,
        n_workers: usize,
        policy: QueuePolicy,
        cfg: AggregationConfig,
    ) -> GpuContext {
        assert!(n_workers > 0, "need at least one worker");
        let stats = Arc::new(LaunchStats::new());
        let pools =
            StreamPool::partition(device.streams(), n_workers + 1, policy, Arc::clone(&stats));
        let agg_stats = Arc::new(AggregationStats::new(KernelKind::ALL.len()));
        let regions = pools
            .iter()
            .map(|_| AggregationRegion::new(KernelKind::ALL.len(), cfg, Arc::clone(&agg_stats)))
            .collect();
        GpuContext {
            pools,
            regions,
            stats,
            agg_stats,
            overflow_submits: AtomicU64::new(0),
            n_workers,
        }
    }

    /// The cumulative GPU/CPU launch split (per kernel item).
    pub fn stats(&self) -> &Arc<LaunchStats> {
        &self.stats
    }

    /// The cumulative aggregation counters (batches, histogram,
    /// flush-trigger breakdown).
    pub fn agg_stats(&self) -> &Arc<AggregationStats> {
        &self.agg_stats
    }

    /// Retune the aggregation thresholds of every region.
    pub fn set_aggregation(&self, cfg: AggregationConfig) {
        for r in &self.regions {
            r.set_config(cfg);
        }
    }

    /// The current aggregation thresholds.
    pub fn agg_config(&self) -> AggregationConfig {
        self.regions[0].config()
    }

    /// Submissions that arrived from non-worker threads (routed to the
    /// overflow pool).
    pub fn overflow_submits(&self) -> u64 {
        self.overflow_submits.load(Ordering::Relaxed)
    }

    /// Streams owned by the overflow pool (may be zero on small
    /// devices — its submissions then always degrade to the CPU).
    pub fn overflow_pool_len(&self) -> usize {
        self.pools[self.pools.len() - 1].len()
    }

    /// The pool/region index of `worker` (`None` = a non-worker thread
    /// → the overflow slot).
    fn lane(&self, worker: Option<usize>) -> usize {
        match worker {
            Some(w) => w % self.n_workers,
            None => self.pools.len() - 1,
        }
    }

    /// Submit one typed work item: buffer `f` on the calling worker's
    /// aggregation region, to be executed inside a fused launch on an
    /// idle stream of that worker's pool — or per-item on the CPU when
    /// no stream frees up (§5.1). The returned future fires with `f`'s
    /// result and where it ran; a submit may execute batches inline
    /// (CPU degradation) before returning. Call [`GpuContext::flush`]
    /// after the last submit of a burst, or buffered items wait for
    /// another producer to trip a threshold.
    pub fn submit<T: Send + 'static>(
        &self,
        worker: Option<usize>,
        kind: KernelKind,
        desc: SlabDesc,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<(T, LaunchSite)> {
        let lane = self.lane(worker);
        if worker.is_none() {
            self.overflow_submits.fetch_add(1, Ordering::Relaxed);
        }
        let (promise, fut) = Promise::new();
        let item: AggItem = Box::new(move |on_gpu| {
            let value = if on_gpu {
                let _span = trace::span_labeled(TraceCategory::GpuLaunch, || {
                    format!("{}:{:?} [{}..{})", kind.as_str(), desc.node, desc.start, desc.end)
                });
                f()
            } else {
                f()
            };
            let site = if on_gpu { LaunchSite::Gpu } else { LaunchSite::Cpu };
            promise.set_value((value, site));
        });
        self.regions[lane].submit(&self.pools[lane], kind.index(), item);
        fut
    }

    /// Producer-idle flush of the calling worker's region: every
    /// buffered batch goes out now (fused on an idle stream, or
    /// per-item on the CPU).
    pub fn flush(&self, worker: Option<usize>) {
        let lane = self.lane(worker);
        self.regions[lane].flush(&self.pools[lane]);
    }

    /// Flush every region (teardown / tests).
    pub fn flush_all(&self) {
        for (region, pool) in self.regions.iter().zip(&self.pools) {
            region.flush(pool);
        }
    }

    /// Block until every stream of every pool has drained (tests and
    /// benches that inspect device-side counters).
    pub fn synchronize(&self) {
        for pool in &self.pools {
            pool.synchronize();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::device::DeviceSpec;

    fn desc() -> SlabDesc {
        SlabDesc { node: MortonKey::root(), start: 0, end: 8 }
    }

    #[test]
    fn submit_flush_executes_on_gpu_when_idle() {
        let dev = Device::new(DeviceSpec::p100(), 6);
        let ctx = GpuContext::new(&dev, 2, QueuePolicy::CpuFallback);
        let fut = ctx.submit(Some(0), KernelKind::SameLevel, desc(), || 41 + 1);
        ctx.flush(Some(0));
        let (value, site) = fut.get();
        assert_eq!(value, 42);
        assert_eq!(site, LaunchSite::Gpu);
        assert_eq!(ctx.stats().gpu_launches(), 1);
        assert_eq!(ctx.agg_stats().batches_gpu(), 1);
    }

    #[test]
    fn full_slot_window_fuses_one_launch() {
        let dev = Device::new(DeviceSpec::p100(), 6);
        let ctx = GpuContext::with_aggregation(
            &dev,
            2,
            QueuePolicy::CpuFallback,
            AggregationConfig::new(4, 64),
        );
        let futs: Vec<_> = (0..4)
            .map(|i| ctx.submit(Some(0), KernelKind::SameLevel, desc(), move || i))
            .collect();
        // The 4th submit tripped the slot threshold — no flush needed.
        for (i, f) in futs.into_iter().enumerate() {
            let (value, site) = f.get();
            assert_eq!(value, i);
            assert_eq!(site, LaunchSite::Gpu);
        }
        assert_eq!(ctx.agg_stats().batches_gpu(), 1, "one fused launch");
        assert_eq!(ctx.agg_stats().items_gpu(), 4);
        assert_eq!(ctx.stats().gpu_launches(), 4, "items counted per kernel");
    }

    #[test]
    fn submit_falls_back_per_item_with_no_streams() {
        // 1 stream over 2 workers + overflow: worker 1's pool is empty
        // → every batch from it degrades to per-item CPU execution.
        let dev = Device::new(DeviceSpec::p100(), 1);
        let ctx = GpuContext::new(&dev, 2, QueuePolicy::CpuFallback);
        let fut = ctx.submit(Some(1), KernelKind::NearField, desc(), || 7);
        ctx.flush(Some(1));
        let (value, site) = fut.get();
        assert_eq!(value, 7);
        assert_eq!(site, LaunchSite::Cpu);
        assert_eq!(ctx.stats().cpu_launches(), 1);
        assert_eq!(ctx.agg_stats().items_cpu(), 1);
    }

    #[test]
    fn non_worker_threads_use_the_overflow_pool() {
        // 6 streams over 2 workers + overflow: 2 each — the overflow
        // pool has its own streams, so a helper-thread submission runs
        // on the GPU without touching worker 0's pool.
        let dev = Device::new(DeviceSpec::p100(), 6);
        let ctx = GpuContext::new(&dev, 2, QueuePolicy::CpuFallback);
        assert_eq!(ctx.overflow_pool_len(), 2);
        let fut = ctx.submit(None, KernelKind::SameLevel, desc(), || 1);
        ctx.flush(None);
        let (_, site) = fut.get();
        assert_eq!(site, LaunchSite::Gpu);
        assert_eq!(ctx.overflow_submits(), 1);
        // Worker pools were never involved.
        assert_eq!(ctx.stats().gpu_launches(), 1);
    }

    #[test]
    fn kinds_aggregate_in_separate_lanes() {
        let dev = Device::new(DeviceSpec::p100(), 6);
        let ctx = GpuContext::with_aggregation(
            &dev,
            1,
            QueuePolicy::CpuFallback,
            AggregationConfig::new(2, 64),
        );
        let a = ctx.submit(Some(0), KernelKind::SameLevel, desc(), || 0);
        let b = ctx.submit(Some(0), KernelKind::NearField, desc(), || 0);
        // Neither lane is full; an idle flush drains both as separate
        // (same-kind) batches.
        ctx.flush(Some(0));
        a.get();
        b.get();
        assert_eq!(ctx.agg_stats().batches_gpu(), 2);
        assert_eq!(ctx.agg_stats().flush_idle(), 2);
    }
}
