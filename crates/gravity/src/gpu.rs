//! Routing FMM kernel launches through the simulated GPU (§5.1).
//!
//! "Each CPU thread manages a certain number of CUDA streams. When
//! launching a kernel, a thread first checks whether all of the CUDA
//! streams it manages are busy. If not, the kernel will be launched on
//! the GPU using an idle stream. Otherwise, the kernel will be executed
//! on the CPU by the current CPU worker thread."
//!
//! [`GpuContext`] owns the per-worker [`StreamPool`]s of one device and
//! makes that decision for each FMM kernel launch of
//! [`crate::FmmSolver::solve_parallel`]. The kernel closure itself is
//! identical on both paths, so where a launch lands never changes the
//! numbers — only the `fmm/kernels/gpu` vs `fmm/kernels/cpu` split, the
//! §6.1.2 observable.

use gpusim::device::Device;
use gpusim::launch_policy::{LaunchOutcome, LaunchStats, QueuePolicy, StreamPool};
use std::sync::Arc;

/// Where one kernel launch was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchSite {
    Gpu,
    Cpu,
}

/// Per-worker stream pools plus the shared launch statistics for one
/// simulated device.
pub struct GpuContext {
    pools: Vec<StreamPool>,
    stats: Arc<LaunchStats>,
}

impl GpuContext {
    /// Partition `device`'s streams across `n_workers` CPU workers (the
    /// paper's static stream-to-thread assignment).
    pub fn new(device: &Arc<Device>, n_workers: usize, policy: QueuePolicy) -> GpuContext {
        let stats = Arc::new(LaunchStats::new());
        let pools = StreamPool::partition(device.streams(), n_workers, policy, Arc::clone(&stats));
        GpuContext { pools, stats }
    }

    /// The cumulative GPU/CPU launch split.
    pub fn stats(&self) -> &Arc<LaunchStats> {
        &self.stats
    }

    /// The stream pool owned by `worker` (`None` = a non-worker thread
    /// helping out, which borrows pool 0, like the main thread in HPX).
    fn pool_for(&self, worker: Option<usize>) -> &StreamPool {
        &self.pools[worker.unwrap_or(0) % self.pools.len()]
    }

    /// Execute `kernel` via the §5.1 decision: on an idle stream of the
    /// calling worker's pool if one exists, else inline on the CPU.
    /// Blocks until the kernel has run either way and reports where.
    pub fn run(&self, worker: Option<usize>, kernel: impl FnOnce() + Send + 'static) -> LaunchSite {
        match self.pool_for(worker).launch(kernel) {
            LaunchOutcome::Gpu(event) => {
                event.get();
                LaunchSite::Gpu
            }
            LaunchOutcome::CpuFallback(kernel) => {
                kernel();
                LaunchSite::Cpu
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::device::DeviceSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn run_executes_on_gpu_when_idle() {
        let dev = Device::new(DeviceSpec::p100(), 4);
        let ctx = GpuContext::new(&dev, 2, QueuePolicy::CpuFallback);
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        let site = ctx.run(Some(0), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(site, LaunchSite::Gpu);
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(ctx.stats().gpu_launches(), 1);
    }

    #[test]
    fn run_falls_back_inline_with_no_streams() {
        // 1 stream over 2 workers: worker 1's pool is empty → every
        // launch from it is a CPU fallback executed inline.
        let dev = Device::new(DeviceSpec::p100(), 1);
        let ctx = GpuContext::new(&dev, 2, QueuePolicy::CpuFallback);
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        let site = ctx.run(Some(1), move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(site, LaunchSite::Cpu);
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert_eq!(ctx.stats().cpu_launches(), 1);
    }
}
