//! The legacy array-of-structs interaction-list implementation — the
//! ablation baseline of §4.3.
//!
//! "Originally, lookup of close neighbor cells was performed using an
//! interaction list, and data was stored in an array-of-struct format.
//! ... Compared to the old interaction-list approach, this [stencil/SoA
//! rewrite] led to a speedup of the total application runtime between
//! 1.90 and 2.22 on AVX512 CPUs and between 1.23 and 1.35 on AVX2 CPUs."
//!
//! This module reproduces the *old* structure faithfully so the
//! `fmm_kernels` bench can regenerate the ablation: per-cell explicit
//! interaction lists of (target, source) index pairs, and moments stored
//! as an array of [`Multipole`] structs (AoS). Results are identical to
//! the stencil kernels (asserted by tests); only the memory access
//! pattern differs.

use crate::expansion::LocalExpansion;
use crate::kernels::MomentGrid;
use crate::stencil::Stencil;
use octree::subgrid::N_SUB;

use crate::multipole::Multipole;

/// Array-of-structs moment storage plus per-cell interaction lists.
pub struct InteractionList {
    /// Extended-grid moments, AoS.
    pub cells: Vec<Option<Multipole>>,
    /// For each interior cell: the flattened extended indices of its
    /// interaction partners.
    pub lists: Vec<Vec<u32>>,
    width: i32,
    dim: usize,
}

impl InteractionList {
    /// Build from an extended SoA grid and a stencil (the lists are what
    /// the old Octo-Tiger precomputed per cell).
    pub fn build(grid: &MomentGrid, stencil: &Stencil) -> InteractionList {
        let width = grid.width();
        let dim = N_SUB + 2 * width as usize;
        let w = width as isize;
        let n = N_SUB as isize;
        let mut cells = vec![None; dim * dim * dim];
        for i in -w..n + w {
            for j in -w..n + w {
                for k in -w..n + w {
                    cells[grid.idx(i, j, k)] = grid.get(i, j, k);
                }
            }
        }
        let mut lists = Vec::with_capacity((n * n * n) as usize);
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let mut list = Vec::with_capacity(stencil.len());
                    if cells[grid.idx(i, j, k)].is_some() {
                        for &(dx, dy, dz) in stencil.offsets() {
                            let idx =
                                grid.idx(i + dx as isize, j + dy as isize, k + dz as isize);
                            if cells[idx].is_some() {
                                list.push(idx as u32);
                            }
                        }
                    }
                    lists.push(list);
                }
            }
        }
        InteractionList { cells, lists, width, dim }
    }

    /// Halo width of the underlying grid.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Extended-grid index of interior cell (i, j, k).
    fn ext_idx(&self, i: isize, j: isize, k: isize) -> usize {
        let w = self.width as isize;
        (((i + w) as usize * self.dim) + (j + w) as usize) * self.dim + (k + w) as usize
    }

    /// Run the interaction lists: same math as
    /// [`crate::kernels::multipole_kernel`], AoS access pattern.
    pub fn run(&self) -> (Vec<LocalExpansion>, u64) {
        let n = N_SUB as isize;
        let mut out = vec![LocalExpansion::default(); (n * n * n) as usize];
        let mut interactions = 0u64;
        let mut cell_no = 0usize;
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let Some(tgt) = &self.cells[self.ext_idx(i, j, k)] else {
                        cell_no += 1;
                        continue;
                    };
                    let e = &mut out[cell_no];
                    for &s in &self.lists[cell_no] {
                        let src = self.cells[s as usize]
                            .as_ref()
                            .expect("lists only reference present cells");
                        e.accumulate(tgt, src, tgt.com - src.com);
                        interactions += 1;
                    }
                    cell_no += 1;
                }
            }
        }
        (out, interactions)
    }
}

/// Convenience: run the monopole-style lists on point masses (the AoS
/// counterpart of [`crate::kernels::monopole_kernel`]).
pub fn run_monopole(il: &InteractionList) -> (Vec<LocalExpansion>, u64) {
    let n = N_SUB as isize;
    let mut out = vec![LocalExpansion::default(); (n * n * n) as usize];
    let mut interactions = 0u64;
    let mut cell_no = 0usize;
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                let Some(tgt) = &il.cells[il.ext_idx(i, j, k)] else {
                    cell_no += 1;
                    continue;
                };
                let e = &mut out[cell_no];
                for &s in &il.lists[cell_no] {
                    let src = il.cells[s as usize].as_ref().expect("present");
                    let d = tgt.com - src.com;
                    let r2 = d.norm2();
                    let u = 1.0 / r2.sqrt();
                    let u3 = u / r2;
                    e.phi += src.m * (-u);
                    e.dphi += d * (src.m * u3);
                    e.force += d * (u3 * (-(tgt.m * src.m)));
                    interactions += 1;
                }
                cell_no += 1;
            }
        }
    }
    (out, interactions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gather_moments, monopole_kernel, multipole_kernel};
    use util::vec3::Vec3;

    fn sample_grid() -> MomentGrid {
        let s = Stencil::octotiger();
        gather_moments(s.width(), |i, j, k| {
            let n = N_SUB as isize;
            let inside = (-2..n + 2).contains(&i)
                && (-2..n + 2).contains(&j)
                && (-2..n + 2).contains(&k);
            if !inside {
                return None;
            }
            let m = 1.0 + ((i * 5 + j * 2 + k) % 4) as f64 * 0.3;
            Some(Multipole {
                m,
                com: Vec3::new(i as f64, j as f64 + 0.05, k as f64 - 0.05),
                q: [0.02, 0.01, 0.03, 0.0, 0.004, -0.003],
            })
        })
    }

    #[test]
    fn aos_and_soa_multipole_agree_exactly() {
        let s = Stencil::octotiger();
        let grid = sample_grid();
        let soa = multipole_kernel(&grid, s.offsets());
        let il = InteractionList::build(&grid, &s);
        let (aos, n_aos) = il.run();
        assert_eq!(soa.interactions, n_aos);
        for (a, b) in soa.expansions.iter().zip(aos.iter()) {
            assert!((a.phi - b.phi).abs() <= 1e-12 * a.phi.abs().max(1.0));
            assert!((a.dphi - b.dphi).norm() <= 1e-12 * a.dphi.norm().max(1.0));
            assert!((a.force - b.force).norm() <= 1e-12 * a.force.norm().max(1.0));
        }
    }

    #[test]
    fn aos_and_soa_monopole_agree_exactly() {
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            Some(Multipole::monopole(
                1.0 + ((i + j + k).rem_euclid(3)) as f64,
                Vec3::new(i as f64, j as f64, k as f64),
            ))
        });
        let soa = monopole_kernel(&grid, s.offsets());
        let il = InteractionList::build(&grid, &s);
        let (aos, n_aos) = run_monopole(&il);
        assert_eq!(soa.interactions, n_aos);
        for (a, b) in soa.expansions.iter().zip(aos.iter()) {
            // Identical arithmetic, identical order: bit-exact.
            assert_eq!(a.phi.to_bits(), b.phi.to_bits());
            for axis in 0..3 {
                assert_eq!(a.force[axis].to_bits(), b.force[axis].to_bits());
            }
        }
    }

    #[test]
    fn lists_skip_absent_cells() {
        let s = Stencil::octotiger();
        let grid = gather_moments(s.width(), |i, j, k| {
            if (i, j, k) == (0, 0, 0) || (i, j, k) == (5, 5, 5) {
                Some(Multipole::monopole(1.0, Vec3::new(i as f64, j as f64, k as f64)))
            } else {
                None
            }
        });
        let il = InteractionList::build(&grid, &s);
        let total: usize = il.lists.iter().map(|l| l.len()).sum();
        // (0,0,0) and (5,5,5) are within stencil range of each other
        // (offset (5,5,5) has |d|² = 75 — beyond the stencil), so in
        // fact no interaction: check consistency with the SoA kernel.
        let soa = monopole_kernel(&grid, s.offsets());
        assert_eq!(total as u64, soa.interactions);
    }
}
