//! The full FMM tree walk over an AMR octree (§4.3's three steps).
//!
//! 1. **Up**: per-cell multipole moments at every level — leaf cells are
//!    point masses (`m = ρ V` at the cell centre, locally homogeneous
//!    density), refined nodes aggregate 2×2×2 child cells by M2M.
//! 2. **Same-level**: every node runs the stencil kernels over its own
//!    cells plus the gathered neighbor halo; leaves additionally run the
//!    near-field pass (offsets inside the opening criterion).
//! 3. **Down**: each refined node's per-cell expansions translate (L2L)
//!    to its children's cells and accumulate; conservation ledgers
//!    (force corrections and torques) are distributed mass-weighted.
//!
//! Neighbor gathering across refinement jumps: when a same-level
//! neighbor node does not exist (the region is one level coarser, by
//! 2:1 balance), its cells are synthesized by splitting the coarse
//! cell's mass into equal monopoles at the fine sub-cell centres. This
//! keeps interactions complete; the reaction on the coarse side is
//! carried at the coarse level, so conservation across AMR interfaces
//! is approximate (round-off level on uniform grids, truncation level
//! at refinement jumps — measured in EXPERIMENTS.md).
//!
//! **Futurization** (§4.1): [`FmmSolver::solve_parallel`] runs the same
//! walk as a task graph on the [`amt`] runtime — one task per node for
//! the moment (per level, bottom-up), downward (per level, top-down)
//! and leaf-assembly passes, joined by `when_all` barriers.
//! Every per-node computation is the *same function* the serial path
//! calls, and per-node results are merged into maps by key (never by
//! arrival order), so the parallel field is bit-identical to the serial
//! one at any thread count — the invariant `fmm_parallel_matches_serial`
//! pins down. Scratch buffers come from the solver's [`ScratchPool`]
//! and kernel launches are routed through the optional [`GpuContext`]
//! (§5.1 stream-idle decision).
//!
//! **Chunking** (DESIGN.md "Chunking & SIMD"): the same-level pass is
//! *cache-blocked* rather than one monolithic task per node. Each node
//! pipelines through three stages — a halo-gather task, one kernel task
//! per target-cell slab of [`FmmSolver::chunk_cells`] cells (same-level
//! M2L plus, on leaves, the near-field P2P), and a merge continuation
//! that concatenates the slabs in index order. A cell's accumulation
//! order over its offset list never changes and slabs are disjoint, so
//! the chunked field is bit-identical to the serial walk at any chunk
//! size and worker count. A bounded window of nodes is in flight at a
//! time (grids are ~0.8 MB each), refilled from each merge, and all
//! buffers lease from the [`ScratchPool`] so steady-state solves
//! allocate nothing. The chunk size comes from the `FMM_CHUNK_CELLS`
//! environment variable or [`FmmSolver::with_chunk_cells`].

use crate::expansion::LocalExpansion;
use crate::gpu::{AggregationConfig, GpuContext, KernelKind, LaunchSite, SlabDesc, HIST_LABELS};
use crate::kernels::{
    gather_moments_into, monopole_kernel_into, monopole_kernel_range_into,
    monopole_kernel_stencil_into, monopole_kernel_stencil_range_into, multipole_kernel_into,
    multipole_kernel_range_into, multipole_kernel_stencil_into,
    multipole_kernel_stencil_range_into, MomentGrid, N_CELLS,
};
use crate::multipole::Multipole;
use crate::scratch::ScratchPool;
use crate::stencil::Stencil;
use amt::trace::{self, TraceCategory};
use amt::{when_all, Future, Promise, Runtime, Scheduler};
use octree::subgrid::{Field, N_SUB};
use octree::tree::Octree;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use util::morton::MortonKey;
use util::vec3::Vec3;

/// Per-cell multipole moments of every node, keyed by node. Values are
/// `Arc`ed so per-level snapshots taken by the parallel moment pass are
/// O(nodes) pointer bumps, not deep copies.
pub type MomentMap = HashMap<MortonKey, Arc<Vec<Multipole>>>;

/// Inherited per-cell data handed from parent to child in the downward
/// pass: (translated expansion, force-correction share, torque share).
type Inherited = (LocalExpansion, Vec3, Vec3);

/// Gravity data for one cell of a leaf sub-grid.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellGravity {
    /// Gravitational potential φ.
    pub phi: f64,
    /// Acceleration −∇φ (all levels combined) — for energy coupling and
    /// diagnostics.
    pub g: Vec3,
    /// Conservation-grade force density for the momentum update
    /// (same-level exact pair forces / V + inherited field force).
    pub force_density: Vec3,
    /// Torque density to deposit into the spin fields (angular momentum
    /// bookkeeping).
    pub torque_density: Vec3,
}

/// The solved gravitational field on all leaves.
pub struct GravityField {
    cells: HashMap<MortonKey, Vec<CellGravity>>,
    /// Total same-level + near-field interactions executed.
    pub interactions: u64,
    /// Same-level (M2L) interactions only.
    pub interactions_same_level: u64,
    /// Near-field (P2P, leaves only) interactions only.
    pub interactions_near_field: u64,
    /// Number of kernel launches (one per chunk per pass on the chunked
    /// path, one per node per pass on the serial walk).
    pub kernel_launches: u64,
    /// Launches executed inline on a CPU worker.
    pub kernel_launches_cpu: u64,
    /// Launches executed on an idle stream of the simulated GPU.
    pub kernel_launches_gpu: u64,
}

impl GravityField {
    /// Per-cell data of leaf `key` (row-major interior order).
    pub fn leaf(&self, key: MortonKey) -> Option<&[CellGravity]> {
        self.cells.get(&key).map(|v| v.as_slice())
    }

    /// Single-cell accessor.
    pub fn at(&self, key: MortonKey, i: isize, j: isize, k: isize) -> CellGravity {
        let n = N_SUB as isize;
        self.cells[&key][((i * n + j) * n + k) as usize]
    }

    /// Leaf keys present.
    pub fn leaves(&self) -> impl Iterator<Item = MortonKey> + '_ {
        self.cells.keys().copied()
    }
}

#[inline]
fn cell_index(i: isize, j: isize, k: isize) -> usize {
    let n = N_SUB as isize;
    ((i * n + j) * n + k) as usize
}

/// Step-1 work of a single node: per-cell multipole moments. Leaf cells
/// are point masses; refined nodes aggregate their 8 children by M2M.
/// Children (at `key.level + 1`) must already be present in `moments`.
fn compute_node_moments(tree: &Octree, moments: &MomentMap, key: MortonKey) -> Vec<Multipole> {
    let domain = tree.domain();
    let level = key.level;
    let node = tree.node(key).expect("key exists in tree");
    let mut cells = vec![Multipole::default(); N_SUB * N_SUB * N_SUB];
    if !node.refined {
        let grid = node.grid.as_ref().expect("leaf grid");
        let vol = domain.cell_volume(level);
        for (i, j, k) in grid.indexer().interior() {
            let m = grid.at(Field::Rho, i, j, k).max(0.0) * vol;
            let c = domain.cell_center(key, i, j, k);
            cells[cell_index(i, j, k)] = Multipole::monopole(m, c);
        }
    } else {
        // M2M from the 8 children, cell by cell.
        for i in 0..N_SUB as isize {
            for j in 0..N_SUB as isize {
                for k in 0..N_SUB as isize {
                    let h = N_SUB as isize / 2;
                    let octant = ((i / h) | ((j / h) << 1) | ((k / h) << 2)) as u8;
                    let child_key = key.child(octant);
                    let child_cells = &moments[&child_key];
                    let (bi, bj, bk) = (2 * (i % h), 2 * (j % h), 2 * (k % h));
                    let mut parts = [Multipole::default(); 8];
                    for d in 0..8u8 {
                        let (di, dj, dk) =
                            ((d & 1) as isize, ((d >> 1) & 1) as isize, ((d >> 2) & 1) as isize);
                        parts[d as usize] = child_cells[cell_index(bi + di, bj + dj, bk + dk)];
                    }
                    cells[cell_index(i, j, k)] = Multipole::combine(&parts);
                }
            }
        }
    }
    cells
}

/// Step-3 work of a single refined node: translate its total expansion
/// to each child's cells (L2L) and split the conservation ledgers
/// mass-weighted. Returns the 8 children's inherited vectors; each
/// child has exactly one parent, so the caller can insert them by key
/// without any cross-task accumulation.
fn downward_node(
    moments: &MomentMap,
    same: &HashMap<MortonKey, Vec<LocalExpansion>>,
    key: MortonKey,
    own_inh: Option<&Vec<Inherited>>,
) -> Vec<(MortonKey, Vec<Inherited>)> {
    let own_same = &same[&key];
    let own_moments = &moments[&key];
    let h = N_SUB as isize / 2;
    let mut children: Vec<(MortonKey, Vec<Inherited>)> = (0..8u8)
        .map(|o| {
            (
                key.child(o),
                vec![(LocalExpansion::default(), Vec3::ZERO, Vec3::ZERO); N_SUB * N_SUB * N_SUB],
            )
        })
        .collect();
    for i in 0..N_SUB as isize {
        for j in 0..N_SUB as isize {
            for k in 0..N_SUB as isize {
                let ci = cell_index(i, j, k);
                let mut total = own_same[ci];
                let (inh_fc, inh_tq) = match own_inh {
                    Some(v) => {
                        total.add(&v[ci].0);
                        (v[ci].1, v[ci].2)
                    }
                    None => (Vec3::ZERO, Vec3::ZERO),
                };
                let parent_mp = own_moments[ci];
                // Ledger to distribute to children, mass weighted.
                let ledger_f = total.f_corr + inh_fc;
                let ledger_t = total.torque + inh_tq;
                let octant = ((i / h) | ((j / h) << 1) | ((k / h) << 2)) as u8;
                let (child_key, entry) = &mut children[octant as usize];
                let child_moments = &moments[child_key];
                for d in 0..8u8 {
                    let (di, dj, dk) =
                        ((d & 1) as isize, ((d >> 1) & 1) as isize, ((d >> 2) & 1) as isize);
                    let cci = cell_index(2 * (i % h) + di, 2 * (j % h) + dj, 2 * (k % h) + dk);
                    let cmp = child_moments[cci];
                    let delta = cmp.com - parent_mp.com;
                    let translated = total.translated(delta);
                    entry[cci].0.add(&translated);
                    let share = if parent_mp.m > 0.0 {
                        cmp.m / parent_mp.m
                    } else {
                        0.125
                    };
                    entry[cci].1 += ledger_f * share;
                    entry[cci].2 += ledger_t * share;
                }
            }
        }
    }
    children
}

/// Final assembly of one leaf: combine same-level and inherited data
/// into per-cell outputs.
fn assemble_leaf(
    vol: f64,
    own_same: &[LocalExpansion],
    own_inh: Option<&Vec<Inherited>>,
    own_moments: &[Multipole],
) -> Vec<CellGravity> {
    let mut out = vec![CellGravity::default(); N_SUB * N_SUB * N_SUB];
    for ci in 0..out.len() {
        let s = &own_same[ci];
        let (inh_exp, inh_fc, inh_tq) = match own_inh {
            Some(v) => (v[ci].0, v[ci].1, v[ci].2),
            None => (LocalExpansion::default(), Vec3::ZERO, Vec3::ZERO),
        };
        let m = own_moments[ci].m;
        let phi = s.phi + inh_exp.phi;
        let g = -(s.dphi + inh_exp.dphi);
        let inherited_force = -inh_exp.dphi * m + inh_fc;
        out[ci] = CellGravity {
            phi,
            g,
            force_density: (s.force + inherited_force) / vol,
            torque_density: (s.torque + inh_tq) / vol,
        };
    }
    out
}

/// P2M moments of a single *leaf* — the per-leaf unit of work the
/// distributed driver computes locally and broadcasts as parcels. Runs
/// the exact same code path as the full moment pass, so replicated M2M
/// from these values is bit-identical to a local
/// [`FmmSolver::compute_moments`].
pub fn leaf_moments(tree: &Octree, key: MortonKey) -> Vec<Multipole> {
    assert!(
        !tree.node(key).expect("key exists in tree").refined,
        "leaf_moments called on a refined node"
    );
    // The leaf branch of compute_node_moments never reads the map.
    compute_node_moments(tree, &MomentMap::new(), key)
}

/// Bottom-up M2M from a *complete* per-leaf moment map (own leaves plus
/// every remote leaf's broadcast moments): fills in all refined
/// ancestors. Refined nodes read only their children's moments — never
/// grids — so the result is bit-identical to
/// [`FmmSolver::compute_moments`] on the reference tree whenever the
/// leaf moments are.
pub fn moments_from_leaf_moments(
    tree: &Octree,
    leaf_moments: HashMap<MortonKey, Arc<Vec<Multipole>>>,
) -> MomentMap {
    let mut moments = leaf_moments;
    for level in (0..=tree.max_level()).rev() {
        for key in tree.level_keys(level) {
            if tree.node(key).expect("node exists").refined {
                let cells = compute_node_moments(tree, &moments, key);
                moments.insert(key, Arc::new(cells));
            }
        }
    }
    moments
}

/// Default same-level chunk size in target cells (a cache-blocking
/// sweep over {8..512} picked this; see EXPERIMENTS.md §E13).
pub const DEFAULT_CHUNK_CELLS: usize = 32;

/// Normalize a chunk size: round up to whole 8-cell rows (the SIMD
/// lane groups of the parity kernels need complete rows) and clamp to
/// `[8, 512]`. `1` therefore means "one row slab".
pub fn normalize_chunk_cells(n: usize) -> usize {
    ((n.max(1) + N_SUB - 1) / N_SUB * N_SUB).min(N_CELLS)
}

/// The chunk size the `FMM_CHUNK_CELLS` environment variable selects
/// (normalized), or [`DEFAULT_CHUNK_CELLS`] when unset or unparsable.
pub fn default_chunk_cells() -> usize {
    match std::env::var("FMM_CHUNK_CELLS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .map(normalize_chunk_cells)
            .unwrap_or(DEFAULT_CHUNK_CELLS),
        Err(_) => DEFAULT_CHUNK_CELLS,
    }
}

/// What one typed kernel work item computes: `(kernel kind, slab
/// start, slab expansions, interactions)`.
type ItemResult = (KernelKind, usize, Vec<LocalExpansion>, u64);

/// What the fan's per-item futures resolve to: the item result plus
/// where the launch landed (§5.1 decision, per item even inside a
/// fused batch).
type ChunkItem = (ItemResult, LaunchSite);

/// Everything the merge continuation of one node hands back through
/// its promise.
struct NodeOutcome {
    key: MortonKey,
    out: Vec<LocalExpansion>,
    interactions_same: u64,
    interactions_near: u64,
    gpu_launches: u64,
    cpu_launches: u64,
    chunks: u64,
}

/// Summed counters of one chunked same-level pass.
#[derive(Default, Clone, Copy)]
struct PassTotals {
    interactions_same: u64,
    interactions_near: u64,
    gpu_launches: u64,
    cpu_launches: u64,
    chunks: u64,
}

/// Shared state of one chunked same-level pass: the node queue plus
/// everything a gather/fan/merge closure needs to capture. Lives behind
/// an `Arc` threaded through every continuation.
struct ChunkedPass {
    solver: Arc<FmmSolver>,
    tree: Arc<Octree>,
    moments: Arc<MomentMap>,
    rt: Arc<Runtime>,
    sched: Arc<Scheduler>,
    queue: Mutex<VecDeque<(MortonKey, Promise<NodeOutcome>)>>,
}

impl ChunkedPass {
    /// Launch the pipeline of the next queued node (no-op on an empty
    /// queue): a gather task, then a continuation fanning out one
    /// kernel task per target-cell slab, then a merge continuation that
    /// concatenates the slabs *by slab index* (never arrival order),
    /// recycles the buffers, refills the window, and fulfils the
    /// node's promise.
    fn launch_next(pass: &Arc<ChunkedPass>) {
        let Some((key, promise)) = pass.queue.lock().pop_front() else {
            return;
        };
        let p = Arc::clone(pass);
        let gather = pass.rt.async_call(move || {
            let _span = trace::span_labeled(TraceCategory::FmmGather, || format!("{key:?}"));
            let mut grid = p.solver.scratch.take_grid(p.solver.gather_width());
            let any_quad = p.solver.gather_into(&p.tree, &p.moments, key, &mut grid);
            (Arc::new(grid), any_quad)
        });
        let p = Arc::clone(pass);
        // Dropping the continuation futures is fine: completion is
        // observed through the node promise, not through them.
        let _fan = gather.then(&pass.sched, move |(grid, any_quad)| {
            let is_leaf = p.tree.is_leaf(key);
            let chunk_cells = p.solver.chunk_cells;
            let worker = p.sched.current_worker();
            let n_slabs = (N_CELLS + chunk_cells - 1) / chunk_cells;
            let mut item_futs: Vec<Future<ChunkItem>> =
                Vec::with_capacity(if is_leaf { 2 * n_slabs } else { n_slabs });
            let mut chunks = 0u64;
            let mut start = 0;
            while start < N_CELLS {
                let end = (start + chunk_cells).min(N_CELLS);
                item_futs.push(ChunkedPass::submit_item(
                    &p,
                    worker,
                    &grid,
                    key,
                    any_quad,
                    KernelKind::SameLevel,
                    start,
                    end,
                ));
                chunks += 1;
                if is_leaf {
                    item_futs.push(ChunkedPass::submit_item(
                        &p,
                        worker,
                        &grid,
                        key,
                        any_quad,
                        KernelKind::NearField,
                        start,
                        end,
                    ));
                }
                start = end;
            }
            // This producer is now idle: whatever the slot/window
            // thresholds left buffered goes out as fused batches (or
            // degrades per item on the CPU) before the fan returns.
            if let Some(ctx) = p.solver.gpu.as_ref() {
                ctx.flush(worker);
            }
            let p2 = Arc::clone(&p);
            let _merge = when_all(&p.sched, item_futs).then(&p.sched, move |results| {
                let mut out = p2.solver.scratch.take_expansions();
                out.clear();
                out.resize(N_CELLS, LocalExpansion::default());
                let mut o = NodeOutcome {
                    key,
                    out,
                    interactions_same: 0,
                    interactions_near: 0,
                    gpu_launches: 0,
                    cpu_launches: 0,
                    chunks,
                };
                // Place the same-level slabs first and stash the
                // near-field ones, then fold near-field in per cell —
                // the same single `add` per cell the pre-aggregation
                // chunk task performed, so the accumulation order (and
                // every bit) is unchanged.
                let mut near_slabs = Vec::new();
                for ((kind, start, buf, n), site) in results {
                    o.gpu_launches += (site == LaunchSite::Gpu) as u64;
                    o.cpu_launches += (site == LaunchSite::Cpu) as u64;
                    match kind {
                        KernelKind::SameLevel => {
                            o.out[start..start + buf.len()].copy_from_slice(&buf);
                            o.interactions_same += n;
                            p2.solver.scratch.put_expansions(buf);
                        }
                        KernelKind::NearField => {
                            o.interactions_near += n;
                            near_slabs.push((start, buf));
                        }
                    }
                }
                for (start, buf) in near_slabs {
                    for (i, ne) in buf.iter().enumerate() {
                        o.out[start + i].add(ne);
                    }
                    p2.solver.scratch.put_expansions(buf);
                }
                // Every work item drops its grid clone before setting
                // its promise, so by now we deterministically hold the
                // last reference.
                if let Ok(grid) = Arc::try_unwrap(grid) {
                    p2.solver.scratch.put_grid(grid);
                }
                // Refill the window only after the grid went back, so
                // the next gather reuses it instead of allocating.
                ChunkedPass::launch_next(&p2);
                promise.set_value(o);
            });
        });
    }

    /// Submit one typed kernel work item for the slab `[start, end)` of
    /// `key`: through the GPU context's aggregating
    /// [`GpuContext::submit`] when one is attached, as a plain
    /// scheduler task otherwise. Either way the body is
    /// [`FmmSolver::chunk_kernel`] on a leased scratch buffer, so the
    /// result is bit-identical across paths.
    #[allow(clippy::too_many_arguments)]
    fn submit_item(
        pass: &Arc<ChunkedPass>,
        worker: Option<usize>,
        grid: &Arc<MomentGrid>,
        key: MortonKey,
        any_quad: bool,
        kind: KernelKind,
        start: usize,
        end: usize,
    ) -> Future<ChunkItem> {
        let solver = Arc::clone(&pass.solver);
        let grid = Arc::clone(grid);
        let buf = pass.solver.scratch.take_expansions();
        let compute = move || solver.chunk_kernel(&grid, key, any_quad, kind, start, end, buf);
        match pass.solver.gpu.as_ref() {
            Some(ctx) => ctx.submit(worker, kind, SlabDesc { node: key, start, end }, compute),
            None => pass.rt.async_call(move || (compute(), LaunchSite::Cpu)),
        }
    }
}

/// The FMM gravity solver.
pub struct FmmSolver {
    stencil: Stencil,
    near_field: Vec<(i32, i32, i32)>,
    /// Root-level offsets: at the coarsest level there is no parent to
    /// defer to, so *every* separated pair inside the root node (offsets
    /// up to ±(N_SUB − 1)) interacts here.
    root_offsets: Vec<(i32, i32, i32)>,
    /// Recycled kernel staging buffers (see [`ScratchPool`]).
    scratch: ScratchPool,
    /// When present, kernel launches go through the §5.1 stream-idle
    /// decision; when absent every launch is a CPU launch.
    gpu: Option<GpuContext>,
    /// Target cells per same-level chunk task (normalized to whole
    /// rows). 512 restores the one-task-per-node behaviour.
    chunk_cells: usize,
    /// Work-aggregation thresholds (slots per kind, total window).
    /// Mirrors the attached context's configuration; kept here too so
    /// CPU-only solvers still report the knobs they were built with.
    agg: AggregationConfig,
}

impl FmmSolver {
    /// Build a solver with opening parameter `theta` (0.5 = Octo-Tiger).
    pub fn new(theta: f64) -> FmmSolver {
        Self::build(theta, None)
    }

    /// Build a solver whose kernel launches are routed through the
    /// simulated GPU `ctx` (idle stream → GPU, otherwise CPU).
    pub fn with_gpu(theta: f64, ctx: GpuContext) -> FmmSolver {
        Self::build(theta, Some(ctx))
    }

    /// Override the same-level chunk size (builder style). The value is
    /// normalized through [`normalize_chunk_cells`]; the default comes
    /// from `FMM_CHUNK_CELLS` via [`default_chunk_cells`].
    pub fn with_chunk_cells(mut self, n: usize) -> FmmSolver {
        self.chunk_cells = normalize_chunk_cells(n);
        self
    }

    /// The effective same-level chunk size in target cells.
    pub fn chunk_cells(&self) -> usize {
        self.chunk_cells
    }

    /// Override the work-aggregation thresholds (builder style):
    /// `slots` items of one kind fuse into one batch, `window` bounds
    /// the total buffered items before everything flushes. `(1, 1)`
    /// disables batching (every item is its own launch). Normalized
    /// through [`AggregationConfig::new`] and applied to the attached
    /// GPU context when one is present.
    pub fn with_aggregation(mut self, slots: usize, window: usize) -> FmmSolver {
        self.agg = AggregationConfig::new(slots, window);
        if let Some(ctx) = &self.gpu {
            ctx.set_aggregation(self.agg);
        }
        self
    }

    /// The effective work-aggregation thresholds.
    pub fn agg_config(&self) -> AggregationConfig {
        self.agg
    }

    fn build(theta: f64, gpu: Option<GpuContext>) -> FmmSolver {
        let sep2 = crate::stencil::separation2(theta);
        let reach = N_SUB as i32 - 1;
        let mut root_offsets = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if ((dx * dx + dy * dy + dz * dz) as f64) > sep2 {
                        root_offsets.push((dx, dy, dz));
                    }
                }
            }
        }
        let agg = gpu
            .as_ref()
            .map(|c| c.agg_config())
            .unwrap_or_else(AggregationConfig::from_env);
        FmmSolver {
            stencil: Stencil::generate(theta),
            near_field: Stencil::near_field(theta),
            root_offsets,
            scratch: ScratchPool::new(),
            gpu,
            chunk_cells: default_chunk_cells(),
            agg,
        }
    }

    /// The same-level stencil in use.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// The scratch pool (hit/miss counters for tests and benches).
    pub fn scratch(&self) -> &ScratchPool {
        &self.scratch
    }

    /// The GPU launch context, if kernel routing is enabled.
    pub fn gpu(&self) -> Option<&GpuContext> {
        self.gpu.as_ref()
    }

    /// Halo width of the gathered moment grid.
    fn gather_width(&self) -> i32 {
        self.stencil.width().max(N_SUB as i32 - 1)
    }

    /// Solve the gravitational field of `tree` (which must carry grids).
    pub fn solve(&self, tree: &Octree) -> GravityField {
        let moments = self.compute_moments(tree);
        self.solve_with_moments(tree, &moments)
    }

    /// Futurized solve: same tree walk as [`FmmSolver::solve`], run as
    /// one task per node per pass on `rt`. Bit-identical output.
    pub fn solve_parallel(self: &Arc<Self>, tree: &Arc<Octree>, rt: &Arc<Runtime>) -> GravityField {
        let moments = Arc::new(self.compute_moments_parallel(tree, rt));
        self.solve_with_moments_parallel(tree, &moments, rt)
    }

    /// Step 1: per-cell multipole moments for every node, bottom-up.
    pub fn compute_moments(&self, tree: &Octree) -> MomentMap {
        assert!(tree.has_grids(), "FMM needs grid data");
        let mut moments: MomentMap = HashMap::new();
        for level in (0..=tree.max_level()).rev() {
            for key in tree.level_keys(level) {
                let cells = compute_node_moments(tree, &moments, key);
                moments.insert(key, Arc::new(cells));
            }
        }
        moments
    }

    /// Step 1, futurized: one task per node, level by level bottom-up
    /// (a level's tasks only read the finished levels below, snapshotted
    /// behind an `Arc`).
    pub fn compute_moments_parallel(&self, tree: &Arc<Octree>, rt: &Arc<Runtime>) -> MomentMap {
        assert!(tree.has_grids(), "FMM needs grid data");
        let sched = Arc::clone(rt.scheduler());
        let mut moments: MomentMap = HashMap::new();
        for level in (0..=tree.max_level()).rev() {
            // Cheap snapshot: clones Arcs, not moment vectors.
            let snapshot = Arc::new(moments.clone());
            let mut futs = Vec::new();
            for key in tree.level_keys(level) {
                let tree = Arc::clone(tree);
                let snap = Arc::clone(&snapshot);
                futs.push(rt.async_call(move || {
                    // Leaves run P2M (point masses from grid cells),
                    // refined nodes reduce child moments (M2M).
                    let refined = tree.node(key).map(|n| n.refined).unwrap_or(false);
                    let cat = if refined { TraceCategory::FmmM2M } else { TraceCategory::FmmP2M };
                    let _span = trace::span_labeled(cat, || format!("{key:?}"));
                    (key, Arc::new(compute_node_moments(&tree, &snap, key)))
                }));
            }
            for (key, cells) in when_all(&sched, futs).get_help(&sched) {
                moments.insert(key, cells);
            }
        }
        moments
    }

    /// Gather the extended moment grid of node `key` into `grid`.
    /// Returns whether any gathered cell carries quadrupole moments.
    fn gather_into(
        &self,
        tree: &Octree,
        moments: &MomentMap,
        key: MortonKey,
        grid: &mut MomentGrid,
    ) -> bool {
        debug_assert_eq!(grid.width(), self.gather_width());
        let level = key.level;
        let domain = tree.domain();
        let n = N_SUB as i64;
        let max_global = n << level;
        let (kx, ky, kz) = key.coords();
        let base = (kx as i64 * n, ky as i64 * n, kz as i64 * n);
        let any_quad = Cell::new(false);
        gather_moments_into(grid, |i, j, k| {
            let g = (base.0 + i as i64, base.1 + j as i64, base.2 + k as i64);
            if g.0 < 0 || g.1 < 0 || g.2 < 0 || g.0 >= max_global || g.1 >= max_global || g.2 >= max_global {
                return None;
            }
            let node_key = MortonKey::new(
                level,
                (g.0 / n) as u32,
                (g.1 / n) as u32,
                (g.2 / n) as u32,
            );
            if let Some(cells) = moments.get(&node_key) {
                let (nx, ny, nz) = node_key.coords();
                let local = (
                    (g.0 - nx as i64 * n) as isize,
                    (g.1 - ny as i64 * n) as isize,
                    (g.2 - nz as i64 * n) as isize,
                );
                let mp = cells[cell_index(local.0, local.1, local.2)];
                if !mp.is_monopole() {
                    any_quad.set(true);
                }
                return Some(mp);
            }
            // Region coarser than `level`: synthesize from the first
            // existing ancestor (2:1 balance ⇒ usually one level up).
            let mut lvl = level;
            let mut cg = g;
            let mut nk = node_key;
            while lvl > 0 && !moments.contains_key(&nk) {
                lvl -= 1;
                cg = (cg.0 / 2, cg.1 / 2, cg.2 / 2);
                nk = MortonKey::new(lvl, (cg.0 / n) as u32, (cg.1 / n) as u32, (cg.2 / n) as u32);
            }
            let cells = moments.get(&nk)?;
            let (nx, ny, nz) = nk.coords();
            let local = (
                (cg.0 - nx as i64 * n) as isize,
                (cg.1 - ny as i64 * n) as isize,
                (cg.2 - nz as i64 * n) as isize,
            );
            let coarse = cells[cell_index(local.0, local.1, local.2)];
            // Split the coarse cell's mass evenly onto the fine sub-cell
            // centre we need: 8^(level difference) sub-cells.
            let depth = (level - lvl) as u32;
            let frac = 1.0 / 8f64.powi(depth as i32);
            let center = {
                // Fine cell centre at `level` from global coords.
                let dx = domain.cell_dx(level);
                let half = domain.edge / 2.0;
                Vec3::new(
                    (g.0 as f64 + 0.5) * dx - half,
                    (g.1 as f64 + 0.5) * dx - half,
                    (g.2 as f64 + 0.5) * dx - half,
                )
            };
            Some(Multipole::monopole(coarse.m * frac, center))
        });
        any_quad.get()
    }

    /// Same-level kernel of one node. The root has no parent level: run
    /// all separated pairs there; other levels use the parity-exact
    /// stencils.
    fn same_level_kernel_into(
        &self,
        grid: &MomentGrid,
        level: u8,
        any_quad: bool,
        out: &mut Vec<LocalExpansion>,
    ) -> u64 {
        if level == 0 {
            if any_quad {
                multipole_kernel_into(grid, &self.root_offsets, out)
            } else {
                monopole_kernel_into(grid, &self.root_offsets, out)
            }
        } else if any_quad {
            multipole_kernel_stencil_into(grid, &self.stencil, out)
        } else {
            monopole_kernel_stencil_into(grid, &self.stencil, out)
        }
    }

    /// Near-field kernel of one leaf (pairs inside the opening
    /// criterion).
    fn near_field_kernel_into(
        &self,
        grid: &MomentGrid,
        any_quad: bool,
        out: &mut Vec<LocalExpansion>,
    ) -> u64 {
        if any_quad {
            multipole_kernel_into(grid, &self.near_field, out)
        } else {
            monopole_kernel_into(grid, &self.near_field, out)
        }
    }

    /// [`FmmSolver::same_level_kernel_into`] restricted to the
    /// target-cell slab `[start, end)` — the per-chunk kernel launch.
    fn same_level_kernel_range_into(
        &self,
        grid: &MomentGrid,
        level: u8,
        any_quad: bool,
        start: usize,
        end: usize,
        out: &mut Vec<LocalExpansion>,
    ) -> u64 {
        if level == 0 {
            if any_quad {
                multipole_kernel_range_into(grid, &self.root_offsets, start, end, out)
            } else {
                monopole_kernel_range_into(grid, &self.root_offsets, start, end, out)
            }
        } else if any_quad {
            multipole_kernel_stencil_range_into(grid, &self.stencil, start, end, out)
        } else {
            monopole_kernel_stencil_range_into(grid, &self.stencil, start, end, out)
        }
    }

    /// [`FmmSolver::near_field_kernel_into`] restricted to the
    /// target-cell slab `[start, end)`.
    fn near_field_kernel_range_into(
        &self,
        grid: &MomentGrid,
        any_quad: bool,
        start: usize,
        end: usize,
        out: &mut Vec<LocalExpansion>,
    ) -> u64 {
        if any_quad {
            multipole_kernel_range_into(grid, &self.near_field, start, end, out)
        } else {
            monopole_kernel_range_into(grid, &self.near_field, start, end, out)
        }
    }

    /// One typed kernel work item: run `kind`'s range kernel over the
    /// target-cell slab `[start, end)` into the leased `buf`. This body
    /// is what executes — identically — inside a fused GPU batch and
    /// on the per-item CPU fallback, which is why batching can never
    /// change a bit of the output.
    #[allow(clippy::too_many_arguments)]
    fn chunk_kernel(
        &self,
        grid: &MomentGrid,
        key: MortonKey,
        any_quad: bool,
        kind: KernelKind,
        start: usize,
        end: usize,
        mut buf: Vec<LocalExpansion>,
    ) -> ItemResult {
        let n = match kind {
            KernelKind::SameLevel => {
                let _span = trace::span_labeled(TraceCategory::FmmSameLevel, || {
                    format!("{key:?} [{start}..{end})")
                });
                self.same_level_kernel_range_into(grid, key.level, any_quad, start, end, &mut buf)
            }
            KernelKind::NearField => {
                let _span = trace::span_labeled(TraceCategory::FmmNearField, || {
                    format!("{key:?} [{start}..{end})")
                });
                self.near_field_kernel_range_into(grid, any_quad, start, end, &mut buf)
            }
        };
        (kind, start, buf, n)
    }

    /// The chunked same-level pass over `keys` (see the module docs):
    /// a pipelined window of nodes, each gathered once, fanned out into
    /// per-slab kernel tasks, and merged by slab index. Returns the
    /// per-node expansion map plus the pass totals.
    fn same_level_pass_chunked(
        self: &Arc<Self>,
        tree: &Arc<Octree>,
        moments: &Arc<MomentMap>,
        rt: &Arc<Runtime>,
        keys: Vec<MortonKey>,
    ) -> (HashMap<MortonKey, Vec<LocalExpansion>>, PassTotals) {
        let sched = Arc::clone(rt.scheduler());
        let n_nodes = keys.len();
        let concurrency = sched.n_threads() + 1;
        let window = concurrency.min(n_nodes.max(1));
        let chunks_per_node = (N_CELLS + self.chunk_cells - 1) / self.chunk_cells;
        // Pre-warm the pool so steady-state solves never allocate.
        // Grids: at most `window` nodes are gathered-but-unmerged (the
        // next gather is only launched from a merge). Expansions: one
        // long-lived buffer per node (held until the downward pass is
        // done) + every work-item buffer of the in-flight window (up
        // to two per slab — same-level and near-field — leased at
        // submit time and returned by the merge).
        self.scratch.ensure(
            window,
            self.gather_width(),
            n_nodes + 2 * window * chunks_per_node,
        );

        let mut node_futs: Vec<Future<NodeOutcome>> = Vec::with_capacity(n_nodes);
        let mut queue = VecDeque::with_capacity(n_nodes);
        for key in keys {
            let (promise, fut) = Promise::new();
            node_futs.push(fut);
            queue.push_back((key, promise));
        }
        let pass = Arc::new(ChunkedPass {
            solver: Arc::clone(self),
            tree: Arc::clone(tree),
            moments: Arc::clone(moments),
            rt: Arc::clone(rt),
            sched: Arc::clone(&sched),
            queue: Mutex::new(queue),
        });
        for _ in 0..window {
            ChunkedPass::launch_next(&pass);
        }

        let mut same: HashMap<MortonKey, Vec<LocalExpansion>> = HashMap::with_capacity(n_nodes);
        let mut totals = PassTotals::default();
        for o in when_all(&sched, node_futs).get_help(&sched) {
            same.insert(o.key, o.out);
            totals.interactions_same += o.interactions_same;
            totals.interactions_near += o.interactions_near;
            totals.gpu_launches += o.gpu_launches;
            totals.cpu_launches += o.cpu_launches;
            totals.chunks += o.chunks;
        }
        (same, totals)
    }

    /// Run the full solve given precomputed moments (serial reference
    /// path — same per-node functions as the parallel path).
    pub fn solve_with_moments(&self, tree: &Octree, moments: &MomentMap) -> GravityField {
        let domain = tree.domain();
        let mut interactions_same = 0u64;
        let mut interactions_near = 0u64;
        let mut kernel_launches = 0u64;
        // Same-level pass for every node, keyed per node.
        let mut same: HashMap<MortonKey, Vec<LocalExpansion>> = HashMap::new();
        for (&key, _) in moments {
            let mut grid = self.scratch.take_grid(self.gather_width());
            let any_quad = self.gather_into(tree, moments, key, &mut grid);
            let mut out = self.scratch.take_expansions();
            interactions_same += self.same_level_kernel_into(&grid, key.level, any_quad, &mut out);
            kernel_launches += 1;
            if tree.is_leaf(key) {
                let mut near = self.scratch.take_expansions();
                interactions_near += self.near_field_kernel_into(&grid, any_quad, &mut near);
                kernel_launches += 1;
                for (e, ne) in out.iter_mut().zip(near.iter()) {
                    e.add(ne);
                }
                self.scratch.put_expansions(near);
            }
            self.scratch.put_grid(grid);
            same.insert(key, out);
        }
        // Top-down: inherited (field, f_corr share, torque share).
        let mut inherited: HashMap<MortonKey, Vec<Inherited>> = HashMap::new();
        for level in 0..=tree.max_level() {
            for key in tree.level_keys(level) {
                if !tree.node(key).expect("node exists").refined {
                    continue;
                }
                let own_inh = inherited.remove(&key);
                for (child_key, v) in downward_node(moments, &same, key, own_inh.as_ref()) {
                    inherited.insert(child_key, v);
                }
            }
        }
        // Assemble leaf outputs.
        let mut cells = HashMap::new();
        for key in tree.leaves() {
            let vol = domain.cell_volume(key.level);
            cells.insert(
                key,
                assemble_leaf(vol, &same[&key], inherited.get(&key), &moments[&key]),
            );
        }
        // Recycle the expansion buffers.
        for (_, buf) in same {
            self.scratch.put_expansions(buf);
        }
        GravityField {
            cells,
            interactions: interactions_same + interactions_near,
            interactions_same_level: interactions_same,
            interactions_near_field: interactions_near,
            kernel_launches,
            kernel_launches_cpu: kernel_launches,
            kernel_launches_gpu: 0,
        }
    }

    /// Futurized steps 2–3 + assembly: one task per node per pass with
    /// `when_all` barriers between levels of the downward pass. Results
    /// are merged by key, so scheduling order never affects the output.
    pub fn solve_with_moments_parallel(
        self: &Arc<Self>,
        tree: &Arc<Octree>,
        moments: &Arc<MomentMap>,
        rt: &Arc<Runtime>,
    ) -> GravityField {
        let sched = Arc::clone(rt.scheduler());
        let domain = tree.domain();
        let n_nodes = moments.len();

        // Same-level pass: chunked node pipelines (gather → per-slab
        // kernels → index-ordered merge) over every node.
        let keys: Vec<MortonKey> = moments.keys().copied().collect();
        let (same, totals) = self.same_level_pass_chunked(tree, moments, rt, keys);

        // Downward pass, level by level: one task per refined node.
        // Each child has exactly one parent, so tasks of one level
        // write disjoint children — merged by key at the barrier.
        let same = Arc::new(same);
        let mut inherited: HashMap<MortonKey, Vec<Inherited>> = HashMap::new();
        for level in 0..=tree.max_level() {
            let mut futs = Vec::new();
            for key in tree.level_keys(level) {
                if !tree.node(key).expect("node exists").refined {
                    continue;
                }
                let own_inh = inherited.remove(&key);
                let moments = Arc::clone(moments);
                let same = Arc::clone(&same);
                futs.push(rt.async_call(move || {
                    let _span =
                        trace::span_labeled(TraceCategory::FmmL2L, || format!("{key:?}"));
                    downward_node(&moments, &same, key, own_inh.as_ref())
                }));
            }
            for children in when_all(&sched, futs).get_help(&sched) {
                for (child_key, v) in children {
                    inherited.insert(child_key, v);
                }
            }
        }

        // Leaf assembly: one task per leaf.
        let leaves = tree.leaves();
        let mut futs = Vec::with_capacity(leaves.len());
        for key in leaves {
            let own_inh = inherited.remove(&key);
            let moments = Arc::clone(moments);
            let same = Arc::clone(&same);
            futs.push(rt.async_call(move || {
                let _span =
                    trace::span_labeled(TraceCategory::FmmLeafAssembly, || format!("{key:?}"));
                let vol = domain.cell_volume(key.level);
                (
                    key,
                    assemble_leaf(vol, &same[&key], own_inh.as_ref(), &moments[&key]),
                )
            }));
        }
        let mut cells = HashMap::with_capacity(n_nodes);
        for (key, out) in when_all(&sched, futs).get_help(&sched) {
            cells.insert(key, out);
        }

        // Let every task finish dropping its Arc clones, then recycle
        // the long-lived expansion buffers.
        rt.wait_quiescent();
        if let Ok(map) = Arc::try_unwrap(same) {
            for (_, buf) in map {
                self.scratch.put_expansions(buf);
            }
        }

        self.publish_counters(rt, &totals);

        GravityField {
            cells,
            interactions: totals.interactions_same + totals.interactions_near,
            interactions_same_level: totals.interactions_same,
            interactions_near_field: totals.interactions_near,
            kernel_launches: totals.gpu_launches + totals.cpu_launches,
            kernel_launches_cpu: totals.cpu_launches,
            kernel_launches_gpu: totals.gpu_launches,
        }
    }

    /// Publish solver counters through the runtime's [`amt::Metrics`]
    /// facade (same registry the legacy `counters()` API reads, so the
    /// `fmm/*` names are stable).
    fn publish_counters(&self, rt: &Arc<Runtime>, totals: &PassTotals) {
        let metrics = rt.metrics();
        metrics.counter("fmm/scratch_hits").store(self.scratch.hits());
        metrics.counter("fmm/scratch_misses").store(self.scratch.misses());
        metrics.counter("fmm/kernels/gpu").add(totals.gpu_launches);
        metrics.counter("fmm/kernels/cpu").add(totals.cpu_launches);
        metrics.counter("fmm/chunks").add(totals.chunks);
        metrics
            .counter("fmm/interactions/same_level")
            .add(totals.interactions_same);
        metrics
            .counter("fmm/interactions/near_field")
            .add(totals.interactions_near);
        // Aggregation observability (cumulative over the context's
        // lifetime, hence `store` not `add`): how many kernels went up
        // fused, the batch-size histogram per kind, the flush-trigger
        // breakdown, and the slot-window occupancy.
        if let Some(ctx) = &self.gpu {
            let agg = ctx.agg_stats();
            metrics.counter("fmm/kernels/batched").store(agg.items_gpu());
            metrics.counter("fmm/agg/batches").store(agg.batches());
            metrics.counter("fmm/agg/items_cpu").store(agg.items_cpu());
            metrics.counter("fmm/agg/flush_full").store(agg.flush_full());
            metrics
                .counter("fmm/agg/flush_window")
                .store(agg.flush_window());
            metrics.counter("fmm/agg/flush_idle").store(agg.flush_idle());
            metrics
                .counter("fmm/agg/occupancy_permille")
                .store(agg.occupancy_permille(ctx.agg_config().slots));
            metrics
                .counter("fmm/agg/overflow_submits")
                .store(ctx.overflow_submits());
            for kind in KernelKind::ALL {
                for (bucket, label) in HIST_LABELS.iter().enumerate() {
                    metrics
                        .counter(&format!("fmm/agg/hist/{}/{label}", kind.as_str()))
                        .store(agg.hist(kind.index(), bucket));
                }
            }
        }
    }

    /// Futurized steps 2–3 + assembly *restricted to a shard*: run the
    /// same-level pass only for `targets` (leaves owned by one locality)
    /// and their refined ancestors, the downward pass only through those
    /// ancestors, and assembly only for `targets`. `moments` must be the
    /// complete (globally replicated) moment map, so gathered neighbor
    /// halos are identical to the full solve's — which makes every
    /// per-target output bit-identical to the corresponding entry of
    /// [`FmmSolver::solve_with_moments_parallel`].
    pub fn solve_restricted_parallel(
        self: &Arc<Self>,
        tree: &Arc<Octree>,
        moments: &Arc<MomentMap>,
        targets: &[MortonKey],
        rt: &Arc<Runtime>,
    ) -> GravityField {
        use std::collections::BTreeSet;
        let sched = Arc::clone(rt.scheduler());
        let domain = tree.domain();
        // Closure over ancestors: every target leaf needs the downward
        // contributions of its whole refined ancestor chain.
        let mut needed: BTreeSet<MortonKey> = BTreeSet::new();
        for &key in targets {
            needed.insert(key);
            let mut cur = key;
            while let Some(parent) = cur.parent() {
                if !needed.insert(parent) {
                    break;
                }
                cur = parent;
            }
        }

        // Same-level pass (chunked node pipelines) over the needed
        // closure only.
        let keys: Vec<MortonKey> = needed.iter().copied().collect();
        let (same, totals) = self.same_level_pass_chunked(tree, moments, rt, keys);

        // Downward pass through the refined needed nodes (= ancestors),
        // level by level. A needed node's parent is always needed, so
        // inherited data flows down the full chain.
        let same = Arc::new(same);
        let mut inherited: HashMap<MortonKey, Vec<Inherited>> = HashMap::new();
        for level in 0..=tree.max_level() {
            let mut futs = Vec::new();
            for &key in needed.iter().filter(|k| k.level == level) {
                if !tree.node(key).expect("node exists").refined {
                    continue;
                }
                let own_inh = inherited.remove(&key);
                let moments = Arc::clone(moments);
                let same = Arc::clone(&same);
                futs.push(rt.async_call(move || {
                    let _span =
                        trace::span_labeled(TraceCategory::FmmL2L, || format!("{key:?}"));
                    downward_node(&moments, &same, key, own_inh.as_ref())
                }));
            }
            for children in when_all(&sched, futs).get_help(&sched) {
                for (child_key, v) in children {
                    inherited.insert(child_key, v);
                }
            }
        }

        // Assemble only the owned leaves.
        let mut futs = Vec::with_capacity(targets.len());
        for &key in targets {
            let own_inh = inherited.remove(&key);
            let moments = Arc::clone(moments);
            let same = Arc::clone(&same);
            futs.push(rt.async_call(move || {
                let _span =
                    trace::span_labeled(TraceCategory::FmmLeafAssembly, || format!("{key:?}"));
                let vol = domain.cell_volume(key.level);
                (
                    key,
                    assemble_leaf(vol, &same[&key], own_inh.as_ref(), &moments[&key]),
                )
            }));
        }
        let mut cells = HashMap::with_capacity(targets.len());
        for (key, out) in when_all(&sched, futs).get_help(&sched) {
            cells.insert(key, out);
        }

        rt.wait_quiescent();
        if let Ok(map) = Arc::try_unwrap(same) {
            for (_, buf) in map {
                self.scratch.put_expansions(buf);
            }
        }

        self.publish_counters(rt, &totals);

        GravityField {
            cells,
            interactions: totals.interactions_same + totals.interactions_near,
            interactions_same_level: totals.interactions_same,
            interactions_near_field: totals.interactions_near,
            kernel_launches: totals.gpu_launches + totals.cpu_launches,
            kernel_launches_cpu: totals.cpu_launches,
            kernel_launches_gpu: totals.gpu_launches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::{direct_sum, PointMass};
    use octree::geometry::Domain;
    use octree::subgrid::Field;

    /// Build a uniformly refined tree (all leaves at `level`) with a
    /// density field.
    fn uniform_tree(level: u8, rho: impl Fn(Vec3) -> f64) -> Octree {
        let mut t = Octree::new(Domain::new(16.0));
        t.refine_where(level, |_d, _k| true);
        let domain = t.domain();
        for key in t.leaves() {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, rho(c));
            }
        }
        t
    }

    fn blob_density(c: Vec3) -> f64 {
        let b1 = Vec3::new(-3.0, 0.0, 0.0);
        let b2 = Vec3::new(3.0, 1.0, 0.0);
        let d1 = (c - b1).norm2();
        let d2 = (c - b2).norm2();
        2.0 * (-d1).exp() + 1.0 * (-d2 / 2.0).exp() + 1e-8
    }

    /// Direct reference over all leaf cells.
    fn direct_reference(tree: &Octree) -> (Vec<PointMass>, Vec<(f64, Vec3)>) {
        let domain = tree.domain();
        let mut pts = Vec::new();
        for key in tree.leaves() {
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            let vol = domain.cell_volume(key.level);
            for (i, j, k) in grid.indexer().interior() {
                pts.push(PointMass {
                    m: grid.at(Field::Rho, i, j, k) * vol,
                    pos: domain.cell_center(key, i, j, k),
                });
            }
        }
        let field = direct_sum(&pts);
        (pts, field)
    }

    #[test]
    fn fmm_matches_direct_sum_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let (pts, reference) = direct_reference(&tree);
        // Walk leaves in the same order as direct_reference.
        let mut idx = 0;
        let mut max_rel_g = 0.0f64;
        let mut max_rel_phi = 0.0f64;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let got = cg[cell_index(i, j, k)];
                let (phi_ref, g_ref) = reference[idx];
                let _ = pts[idx];
                if g_ref.norm() > 1e-8 {
                    max_rel_g = max_rel_g.max((got.g - g_ref).norm() / g_ref.norm());
                }
                max_rel_phi = max_rel_phi.max((got.phi - phi_ref).abs() / phi_ref.abs());
                idx += 1;
            }
        }
        assert!(max_rel_phi < 2e-2, "phi error {max_rel_phi}");
        assert!(max_rel_g < 2e-1, "g error {max_rel_g}");
    }

    #[test]
    fn momentum_conserved_to_machine_precision_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let vol = tree.domain().cell_volume(1);
        let mut total = Vec3::ZERO;
        let mut scale = 0.0;
        for key in tree.leaves() {
            for cg in field.leaf(key).unwrap() {
                total += cg.force_density * vol;
                scale += (cg.force_density * vol).norm();
            }
        }
        assert!(
            total.norm() <= 1e-12 * scale.max(1.0),
            "momentum residual {total:?} at scale {scale}"
        );
    }

    #[test]
    fn angular_momentum_closed_by_torque_ledger_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let moments = solver.compute_moments(&tree);
        let field = solver.solve_with_moments(&tree, &moments);
        let domain = tree.domain();
        let vol = domain.cell_volume(1);
        let mut orbital = Vec3::ZERO;
        let mut spin = Vec3::ZERO;
        let mut scale = 0.0;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let mom = &moments[&key];
            for ci in 0..cg.len() {
                let f = cg[ci].force_density * vol;
                orbital += mom[ci].com.cross(f);
                spin += cg[ci].torque_density * vol;
                scale += mom[ci].com.cross(f).norm();
            }
        }
        let residual = (orbital + spin).norm();
        // Same-level passes close the budget to round-off (see the
        // kernel tests); distributing coarse-level ledgers through L2L
        // moves force application points, so the multi-level residual is
        // truncation-order, not round-off. Bound it tightly relative to
        // the total torque scale.
        assert!(
            residual <= 1e-3 * scale.max(1.0),
            "angular momentum residual {residual} at scale {scale}"
        );
    }

    #[test]
    fn deeper_uniform_tree_improves_direct_agreement() {
        // At level 2 the stencil is exercised across node boundaries and
        // the L2L path is active (level-1 nodes are refined).
        let tree = uniform_tree(2, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let (_, reference) = direct_reference(&tree);
        let mut idx = 0;
        let mut max_rel_phi = 0.0f64;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let got = cg[cell_index(i, j, k)];
                let (phi_ref, _) = reference[idx];
                max_rel_phi = max_rel_phi.max((got.phi - phi_ref).abs() / phi_ref.abs());
                idx += 1;
            }
        }
        // Order-2 multipoles at theta = 0.5: a few percent in the far
        // field of a compact blob is the expected truncation error.
        assert!(max_rel_phi < 5e-2, "phi error {max_rel_phi}");
    }

    #[test]
    fn amr_tree_solves_and_counts_kernels() {
        let mut t = Octree::new(Domain::new(16.0));
        // Refine the centre one extra level.
        t.refine(MortonKey::root());
        t.refine(MortonKey::new(1, 0, 0, 0));
        let domain = t.domain();
        for key in t.leaves() {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, blob_density(c));
            }
        }
        t.restrict_all();
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&t);
        assert!(field.interactions > 0);
        assert!(field.kernel_launches > 0);
        assert_eq!(field.kernel_launches_cpu, field.kernel_launches);
        assert_eq!(field.kernel_launches_gpu, 0);
        // Every leaf present, all values finite.
        for key in t.leaves() {
            let cg = field.leaf(key).expect("leaf output");
            for c in cg {
                assert!(c.phi.is_finite());
                assert!(c.g.norm().is_finite());
            }
        }
    }

    #[test]
    fn parallel_solve_is_bit_identical_to_serial() {
        let tree = Arc::new(uniform_tree(2, blob_density));
        let solver = Arc::new(FmmSolver::new(0.5));
        let serial = solver.solve(&tree);
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let par = solver.solve_parallel(&tree, &rt);
            assert_eq!(par.interactions, serial.interactions);
            for key in tree.leaves() {
                let a = serial.leaf(key).unwrap();
                let b = par.leaf(key).unwrap();
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.phi.to_bits(), y.phi.to_bits());
                    assert_eq!(x.g.x.to_bits(), y.g.x.to_bits());
                    assert_eq!(x.force_density.x.to_bits(), y.force_density.x.to_bits());
                    assert_eq!(x.torque_density.x.to_bits(), y.torque_density.x.to_bits());
                }
            }
        }
    }

    #[test]
    fn chunk_size_never_changes_bits() {
        // Bit-identity must hold at every chunk size (1 → one row slab,
        // 512 → one task per node) and worker count.
        let tree = Arc::new(uniform_tree(1, blob_density));
        let solver = Arc::new(FmmSolver::new(0.5));
        let serial = solver.solve(&tree);
        for chunk in [1usize, 32, 64, 512] {
            let solver = Arc::new(FmmSolver::new(0.5).with_chunk_cells(chunk));
            for threads in [1usize, 2] {
                let rt = Runtime::new(threads);
                let par = solver.solve_parallel(&tree, &rt);
                assert_eq!(par.interactions, serial.interactions);
                assert_eq!(par.interactions_same_level, serial.interactions_same_level);
                assert_eq!(par.interactions_near_field, serial.interactions_near_field);
                for key in tree.leaves() {
                    let a = serial.leaf(key).unwrap();
                    let b = par.leaf(key).unwrap();
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert_eq!(x.phi.to_bits(), y.phi.to_bits(), "chunk {chunk} threads {threads}");
                        assert_eq!(x.g.x.to_bits(), y.g.x.to_bits());
                        assert_eq!(x.force_density.y.to_bits(), y.force_density.y.to_bits());
                        assert_eq!(x.torque_density.z.to_bits(), y.torque_density.z.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_counters_and_launches_add_up() {
        let tree = Arc::new(uniform_tree(1, blob_density));
        let n_nodes = 9u64; // root + 8 level-1 leaves
        let solver = Arc::new(FmmSolver::new(0.5).with_chunk_cells(64));
        let rt = Runtime::new(2);
        let field = solver.solve_parallel(&tree, &rt);
        let chunks_per_node = (N_CELLS as u64) / 64;
        let chunks = rt.metrics().counter("fmm/chunks").get();
        assert_eq!(chunks, n_nodes * chunks_per_node);
        // One launch per chunk, plus one near-field launch per leaf
        // chunk (the root is the only non-leaf here).
        assert_eq!(field.kernel_launches, chunks + 8 * chunks_per_node);
        assert_eq!(
            rt.metrics().counter("fmm/interactions/same_level").get(),
            field.interactions_same_level
        );
        assert_eq!(
            rt.metrics().counter("fmm/interactions/near_field").get(),
            field.interactions_near_field
        );
        assert!(field.interactions_near_field > 0);
    }

    #[test]
    fn chunk_cells_normalizes_and_reads_env() {
        assert_eq!(normalize_chunk_cells(1), 8);
        assert_eq!(normalize_chunk_cells(8), 8);
        assert_eq!(normalize_chunk_cells(9), 16);
        assert_eq!(normalize_chunk_cells(64), 64);
        assert_eq!(normalize_chunk_cells(100_000), N_CELLS);
        assert_eq!(FmmSolver::new(0.5).with_chunk_cells(3).chunk_cells(), 8);
        std::env::set_var("FMM_CHUNK_CELLS", "24");
        assert_eq!(default_chunk_cells(), 24);
        assert_eq!(FmmSolver::new(0.5).chunk_cells(), 24);
        std::env::set_var("FMM_CHUNK_CELLS", "not-a-number");
        assert_eq!(default_chunk_cells(), DEFAULT_CHUNK_CELLS);
        std::env::remove_var("FMM_CHUNK_CELLS");
        assert_eq!(default_chunk_cells(), DEFAULT_CHUNK_CELLS);
    }

    #[test]
    fn replicated_m2m_from_leaf_moments_is_bit_identical() {
        let tree = uniform_tree(2, blob_density);
        let solver = FmmSolver::new(0.5);
        let reference = solver.compute_moments(&tree);
        // Simulate the distributed exchange: per-leaf P2M, then M2M.
        let leaf_map: HashMap<MortonKey, Arc<Vec<Multipole>>> = tree
            .leaves()
            .into_iter()
            .map(|k| (k, Arc::new(leaf_moments(&tree, k))))
            .collect();
        let rebuilt = moments_from_leaf_moments(&tree, leaf_map);
        assert_eq!(rebuilt.len(), reference.len());
        for (key, cells) in &reference {
            let got = &rebuilt[key];
            for (a, b) in cells.iter().zip(got.iter()) {
                assert_eq!(a.m.to_bits(), b.m.to_bits());
                assert_eq!(a.com.x.to_bits(), b.com.x.to_bits());
                for (qa, qb) in a.q.iter().zip(b.q.iter()) {
                    assert_eq!(qa.to_bits(), qb.to_bits());
                }
            }
        }
    }

    #[test]
    fn restricted_solve_matches_full_solve_per_leaf() {
        let tree = Arc::new(uniform_tree(2, blob_density));
        let solver = Arc::new(FmmSolver::new(0.5));
        let rt = Runtime::new(2);
        let moments = Arc::new(solver.compute_moments_parallel(&tree, &rt));
        let full = solver.solve_with_moments_parallel(&tree, &moments, &rt);
        // Split the leaves into two "shards" and solve each restricted.
        let leaves = tree.leaves();
        let mid = leaves.len() / 2;
        for shard in [&leaves[..mid], &leaves[mid..]] {
            let part = solver.solve_restricted_parallel(&tree, &moments, shard, &rt);
            assert_eq!(part.leaves().count(), shard.len());
            for &key in shard {
                let a = full.leaf(key).unwrap();
                let b = part.leaf(key).unwrap();
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.phi.to_bits(), y.phi.to_bits());
                    assert_eq!(x.g.x.to_bits(), y.g.x.to_bits());
                    assert_eq!(x.g.y.to_bits(), y.g.y.to_bits());
                    assert_eq!(x.g.z.to_bits(), y.g.z.to_bits());
                    assert_eq!(x.force_density.x.to_bits(), y.force_density.x.to_bits());
                    assert_eq!(x.torque_density.x.to_bits(), y.torque_density.x.to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_solve_reuses_scratch_in_steady_state() {
        let tree = Arc::new(uniform_tree(1, blob_density));
        let solver = Arc::new(FmmSolver::new(0.5));
        let rt = Runtime::new(2);
        solver.solve_parallel(&tree, &rt); // cold: misses allowed
        let misses_after_first = solver.scratch().misses();
        solver.solve_parallel(&tree, &rt);
        solver.solve_parallel(&tree, &rt);
        assert_eq!(
            solver.scratch().misses(),
            misses_after_first,
            "steady-state solves must not allocate scratch buffers"
        );
        assert!(solver.scratch().hits() > 0);
        assert_eq!(rt.counters().get("fmm/scratch_misses"), misses_after_first);
    }
}
