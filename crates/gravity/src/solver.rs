//! The full FMM tree walk over an AMR octree (§4.3's three steps).
//!
//! 1. **Up**: per-cell multipole moments at every level — leaf cells are
//!    point masses (`m = ρ V` at the cell centre, locally homogeneous
//!    density), refined nodes aggregate 2×2×2 child cells by M2M.
//! 2. **Same-level**: every node runs the stencil kernels over its own
//!    cells plus the gathered neighbor halo; leaves additionally run the
//!    near-field pass (offsets inside the opening criterion).
//! 3. **Down**: each refined node's per-cell expansions translate (L2L)
//!    to its children's cells and accumulate; conservation ledgers
//!    (force corrections and torques) are distributed mass-weighted.
//!
//! Neighbor gathering across refinement jumps: when a same-level
//! neighbor node does not exist (the region is one level coarser, by
//! 2:1 balance), its cells are synthesized by splitting the coarse
//! cell's mass into equal monopoles at the fine sub-cell centres. This
//! keeps interactions complete; the reaction on the coarse side is
//! carried at the coarse level, so conservation across AMR interfaces
//! is approximate (round-off level on uniform grids, truncation level
//! at refinement jumps — measured in EXPERIMENTS.md).

use crate::expansion::LocalExpansion;
use crate::kernels::{
    gather_moments, monopole_kernel, monopole_kernel_stencil, multipole_kernel,
    multipole_kernel_stencil, MomentGrid,
};
use crate::multipole::Multipole;
use crate::stencil::Stencil;
use octree::subgrid::{Field, N_SUB};
use octree::tree::Octree;
use std::cell::Cell;
use std::collections::HashMap;
use util::morton::MortonKey;
use util::vec3::Vec3;

/// Gravity data for one cell of a leaf sub-grid.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellGravity {
    /// Gravitational potential φ.
    pub phi: f64,
    /// Acceleration −∇φ (all levels combined) — for energy coupling and
    /// diagnostics.
    pub g: Vec3,
    /// Conservation-grade force density for the momentum update
    /// (same-level exact pair forces / V + inherited field force).
    pub force_density: Vec3,
    /// Torque density to deposit into the spin fields (angular momentum
    /// bookkeeping).
    pub torque_density: Vec3,
}

/// The solved gravitational field on all leaves.
pub struct GravityField {
    cells: HashMap<MortonKey, Vec<CellGravity>>,
    /// Total same-level + near-field interactions executed.
    pub interactions: u64,
    /// Number of kernel launches (one per node per pass).
    pub kernel_launches: u64,
}

impl GravityField {
    /// Per-cell data of leaf `key` (row-major interior order).
    pub fn leaf(&self, key: MortonKey) -> Option<&[CellGravity]> {
        self.cells.get(&key).map(|v| v.as_slice())
    }

    /// Single-cell accessor.
    pub fn at(&self, key: MortonKey, i: isize, j: isize, k: isize) -> CellGravity {
        let n = N_SUB as isize;
        self.cells[&key][((i * n + j) * n + k) as usize]
    }

    /// Leaf keys present.
    pub fn leaves(&self) -> impl Iterator<Item = MortonKey> + '_ {
        self.cells.keys().copied()
    }
}

#[inline]
fn cell_index(i: isize, j: isize, k: isize) -> usize {
    let n = N_SUB as isize;
    ((i * n + j) * n + k) as usize
}

/// The FMM gravity solver.
pub struct FmmSolver {
    stencil: Stencil,
    near_field: Vec<(i32, i32, i32)>,
    /// Root-level offsets: at the coarsest level there is no parent to
    /// defer to, so *every* separated pair inside the root node (offsets
    /// up to ±(N_SUB − 1)) interacts here.
    root_offsets: Vec<(i32, i32, i32)>,
}

impl FmmSolver {
    /// Build a solver with opening parameter `theta` (0.5 = Octo-Tiger).
    pub fn new(theta: f64) -> FmmSolver {
        let sep2 = crate::stencil::separation2(theta);
        let reach = N_SUB as i32 - 1;
        let mut root_offsets = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if ((dx * dx + dy * dy + dz * dz) as f64) > sep2 {
                        root_offsets.push((dx, dy, dz));
                    }
                }
            }
        }
        FmmSolver {
            stencil: Stencil::generate(theta),
            near_field: Stencil::near_field(theta),
            root_offsets,
        }
    }

    /// The same-level stencil in use.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// Solve the gravitational field of `tree` (which must carry grids).
    pub fn solve(&self, tree: &Octree) -> GravityField {
        let moments = self.compute_moments(tree);
        self.solve_with_moments(tree, &moments)
    }

    /// Step 1: per-cell multipole moments for every node, bottom-up.
    pub fn compute_moments(&self, tree: &Octree) -> HashMap<MortonKey, Vec<Multipole>> {
        assert!(tree.has_grids(), "FMM needs grid data");
        let domain = tree.domain();
        let mut moments: HashMap<MortonKey, Vec<Multipole>> = HashMap::new();
        let mut levels: Vec<u8> = (0..=tree.max_level()).collect();
        levels.reverse();
        for &level in &levels {
            for key in tree.level_keys(level) {
                let node = tree.node(key).expect("key from level_keys");
                let mut cells = vec![Multipole::default(); N_SUB * N_SUB * N_SUB];
                if !node.refined {
                    let grid = node.grid.as_ref().expect("leaf grid");
                    let vol = domain.cell_volume(level);
                    for (i, j, k) in grid.indexer().interior() {
                        let m = grid.at(Field::Rho, i, j, k).max(0.0) * vol;
                        let c = domain.cell_center(key, i, j, k);
                        cells[cell_index(i, j, k)] = Multipole::monopole(m, c);
                    }
                } else {
                    // M2M from the 8 children, cell by cell.
                    for i in 0..N_SUB as isize {
                        for j in 0..N_SUB as isize {
                            for k in 0..N_SUB as isize {
                                let h = N_SUB as isize / 2;
                                let octant =
                                    ((i / h) | ((j / h) << 1) | ((k / h) << 2)) as u8;
                                let child_key = key.child(octant);
                                let child_cells = &moments[&child_key];
                                let (bi, bj, bk) =
                                    (2 * (i % h), 2 * (j % h), 2 * (k % h));
                                let mut parts = [Multipole::default(); 8];
                                for d in 0..8u8 {
                                    let (di, dj, dk) =
                                        ((d & 1) as isize, ((d >> 1) & 1) as isize, ((d >> 2) & 1) as isize);
                                    parts[d as usize] =
                                        child_cells[cell_index(bi + di, bj + dj, bk + dk)];
                                }
                                cells[cell_index(i, j, k)] = Multipole::combine(&parts);
                            }
                        }
                    }
                }
                moments.insert(key, cells);
            }
        }
        moments
    }

    /// Gather the extended moment grid of node `key`. Returns the grid
    /// and whether any gathered cell carries quadrupole moments.
    fn gather(
        &self,
        tree: &Octree,
        moments: &HashMap<MortonKey, Vec<Multipole>>,
        key: MortonKey,
    ) -> (MomentGrid, bool) {
        let width = self.stencil.width().max(N_SUB as i32 - 1);
        let level = key.level;
        let domain = tree.domain();
        let n = N_SUB as i64;
        let max_global = n << level;
        let (kx, ky, kz) = key.coords();
        let base = (kx as i64 * n, ky as i64 * n, kz as i64 * n);
        let any_quad = Cell::new(false);
        let grid = gather_moments(width, |i, j, k| {
            let g = (base.0 + i as i64, base.1 + j as i64, base.2 + k as i64);
            if g.0 < 0 || g.1 < 0 || g.2 < 0 || g.0 >= max_global || g.1 >= max_global || g.2 >= max_global {
                return None;
            }
            let node_key = MortonKey::new(
                level,
                (g.0 / n) as u32,
                (g.1 / n) as u32,
                (g.2 / n) as u32,
            );
            if let Some(cells) = moments.get(&node_key) {
                let (nx, ny, nz) = node_key.coords();
                let local = (
                    (g.0 - nx as i64 * n) as isize,
                    (g.1 - ny as i64 * n) as isize,
                    (g.2 - nz as i64 * n) as isize,
                );
                let mp = cells[cell_index(local.0, local.1, local.2)];
                if !mp.is_monopole() {
                    any_quad.set(true);
                }
                return Some(mp);
            }
            // Region coarser than `level`: synthesize from the first
            // existing ancestor (2:1 balance ⇒ usually one level up).
            let mut lvl = level;
            let mut cg = g;
            let mut nk = node_key;
            while lvl > 0 && !moments.contains_key(&nk) {
                lvl -= 1;
                cg = (cg.0 / 2, cg.1 / 2, cg.2 / 2);
                nk = MortonKey::new(lvl, (cg.0 / n) as u32, (cg.1 / n) as u32, (cg.2 / n) as u32);
            }
            let cells = moments.get(&nk)?;
            let (nx, ny, nz) = nk.coords();
            let local = (
                (cg.0 - nx as i64 * n) as isize,
                (cg.1 - ny as i64 * n) as isize,
                (cg.2 - nz as i64 * n) as isize,
            );
            let coarse = cells[cell_index(local.0, local.1, local.2)];
            // Split the coarse cell's mass evenly onto the fine sub-cell
            // centre we need: 8^(level difference) sub-cells.
            let depth = (level - lvl) as u32;
            let frac = 1.0 / 8f64.powi(depth as i32);
            let center = {
                // Fine cell centre at `level` from global coords.
                let dx = domain.cell_dx(level);
                let half = domain.edge / 2.0;
                Vec3::new(
                    (g.0 as f64 + 0.5) * dx - half,
                    (g.1 as f64 + 0.5) * dx - half,
                    (g.2 as f64 + 0.5) * dx - half,
                )
            };
            Some(Multipole::monopole(coarse.m * frac, center))
        });
        (grid, any_quad.get())
    }

    /// Run the full solve given precomputed moments.
    pub fn solve_with_moments(
        &self,
        tree: &Octree,
        moments: &HashMap<MortonKey, Vec<Multipole>>,
    ) -> GravityField {
        let domain = tree.domain();
        let mut interactions = 0u64;
        let mut kernel_launches = 0u64;
        // Same-level pass for every node, keyed per node.
        let mut same: HashMap<MortonKey, Vec<LocalExpansion>> = HashMap::new();
        for (&key, _) in moments {
            let (grid, any_quad) = self.gather(tree, moments, key);
            let is_leaf = tree.is_leaf(key);
            // The root has no parent level: run all separated pairs
            // there; other levels use the parity-exact stencils.
            let mut result = if key.level == 0 {
                if any_quad {
                    multipole_kernel(&grid, &self.root_offsets)
                } else {
                    monopole_kernel(&grid, &self.root_offsets)
                }
            } else if any_quad {
                multipole_kernel_stencil(&grid, &self.stencil)
            } else {
                monopole_kernel_stencil(&grid, &self.stencil)
            };
            kernel_launches += 1;
            interactions += result.interactions;
            if is_leaf {
                // Near-field pass (pairs inside the opening criterion).
                let near = if any_quad {
                    multipole_kernel(&grid, &self.near_field)
                } else {
                    monopole_kernel(&grid, &self.near_field)
                };
                kernel_launches += 1;
                interactions += near.interactions;
                for (e, ne) in result.expansions.iter_mut().zip(near.expansions.iter()) {
                    e.add(ne);
                }
            }
            same.insert(key, result.expansions);
        }
        // Top-down: inherited (field, f_corr share, torque share).
        type Inherited = (LocalExpansion, Vec3, Vec3);
        let mut inherited: HashMap<MortonKey, Vec<Inherited>> = HashMap::new();
        let mut levels: Vec<u8> = (0..=tree.max_level()).collect();
        levels.sort_unstable();
        for &level in &levels {
            for key in tree.level_keys(level) {
                let node = tree.node(key).expect("node exists");
                if !node.refined {
                    continue;
                }
                let own_same = &same[&key];
                let own_inh = inherited.get(&key).cloned();
                let own_moments = &moments[&key];
                let h = N_SUB as isize / 2;
                for i in 0..N_SUB as isize {
                    for j in 0..N_SUB as isize {
                        for k in 0..N_SUB as isize {
                            let ci = cell_index(i, j, k);
                            let mut total = own_same[ci];
                            let (inh_fc, inh_tq) = match &own_inh {
                                Some(v) => {
                                    total.add(&v[ci].0);
                                    (v[ci].1, v[ci].2)
                                }
                                None => (Vec3::ZERO, Vec3::ZERO),
                            };
                            let parent_mp = own_moments[ci];
                            // Ledger to distribute to children, mass
                            // weighted.
                            let ledger_f = total.f_corr + inh_fc;
                            let ledger_t = total.torque + inh_tq;
                            let octant = ((i / h) | ((j / h) << 1) | ((k / h) << 2)) as u8;
                            let child_key = key.child(octant);
                            let child_moments = &moments[&child_key];
                            let entry = inherited
                                .entry(child_key)
                                .or_insert_with(|| {
                                    vec![
                                        (LocalExpansion::default(), Vec3::ZERO, Vec3::ZERO);
                                        N_SUB * N_SUB * N_SUB
                                    ]
                                });
                            for d in 0..8u8 {
                                let (di, dj, dk) = (
                                    (d & 1) as isize,
                                    ((d >> 1) & 1) as isize,
                                    ((d >> 2) & 1) as isize,
                                );
                                let cci = cell_index(
                                    2 * (i % h) + di,
                                    2 * (j % h) + dj,
                                    2 * (k % h) + dk,
                                );
                                let cmp = child_moments[cci];
                                let delta = cmp.com - parent_mp.com;
                                let translated = total.translated(delta);
                                entry[cci].0.add(&translated);
                                let share = if parent_mp.m > 0.0 {
                                    cmp.m / parent_mp.m
                                } else {
                                    0.125
                                };
                                entry[cci].1 += ledger_f * share;
                                entry[cci].2 += ledger_t * share;
                            }
                        }
                    }
                }
            }
        }
        // Assemble leaf outputs.
        let mut cells = HashMap::new();
        for key in tree.leaves() {
            let vol = domain.cell_volume(key.level);
            let own_same = &same[&key];
            let own_inh = inherited.get(&key);
            let mut out = vec![CellGravity::default(); N_SUB * N_SUB * N_SUB];
            let own_moments = &moments[&key];
            for ci in 0..out.len() {
                let s = &own_same[ci];
                let (inh_exp, inh_fc, inh_tq) = match own_inh {
                    Some(v) => (v[ci].0, v[ci].1, v[ci].2),
                    None => (LocalExpansion::default(), Vec3::ZERO, Vec3::ZERO),
                };
                let m = own_moments[ci].m;
                let phi = s.phi + inh_exp.phi;
                let g = -(s.dphi + inh_exp.dphi);
                let inherited_force = -inh_exp.dphi * m + inh_fc;
                out[ci] = CellGravity {
                    phi,
                    g,
                    force_density: (s.force + inherited_force) / vol,
                    torque_density: (s.torque + inh_tq) / vol,
                };
            }
            cells.insert(key, out);
        }
        GravityField { cells, interactions, kernel_launches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::{direct_sum, PointMass};
    use octree::geometry::Domain;
    use octree::subgrid::Field;

    /// Build a uniformly refined tree (all leaves at `level`) with a
    /// density field.
    fn uniform_tree(level: u8, rho: impl Fn(Vec3) -> f64) -> Octree {
        let mut t = Octree::new(Domain::new(16.0));
        t.refine_where(level, |_d, _k| true);
        let domain = t.domain();
        for key in t.leaves() {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, rho(c));
            }
        }
        t
    }

    fn blob_density(c: Vec3) -> f64 {
        let b1 = Vec3::new(-3.0, 0.0, 0.0);
        let b2 = Vec3::new(3.0, 1.0, 0.0);
        let d1 = (c - b1).norm2();
        let d2 = (c - b2).norm2();
        2.0 * (-d1).exp() + 1.0 * (-d2 / 2.0).exp() + 1e-8
    }

    /// Direct reference over all leaf cells.
    fn direct_reference(tree: &Octree) -> (Vec<PointMass>, Vec<(f64, Vec3)>) {
        let domain = tree.domain();
        let mut pts = Vec::new();
        for key in tree.leaves() {
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            let vol = domain.cell_volume(key.level);
            for (i, j, k) in grid.indexer().interior() {
                pts.push(PointMass {
                    m: grid.at(Field::Rho, i, j, k) * vol,
                    pos: domain.cell_center(key, i, j, k),
                });
            }
        }
        let field = direct_sum(&pts);
        (pts, field)
    }

    #[test]
    fn fmm_matches_direct_sum_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let (pts, reference) = direct_reference(&tree);
        // Walk leaves in the same order as direct_reference.
        let mut idx = 0;
        let mut max_rel_g = 0.0f64;
        let mut max_rel_phi = 0.0f64;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let got = cg[cell_index(i, j, k)];
                let (phi_ref, g_ref) = reference[idx];
                let _ = pts[idx];
                if g_ref.norm() > 1e-8 {
                    max_rel_g = max_rel_g.max((got.g - g_ref).norm() / g_ref.norm());
                }
                max_rel_phi = max_rel_phi.max((got.phi - phi_ref).abs() / phi_ref.abs());
                idx += 1;
            }
        }
        assert!(max_rel_phi < 2e-2, "phi error {max_rel_phi}");
        assert!(max_rel_g < 2e-1, "g error {max_rel_g}");
    }

    #[test]
    fn momentum_conserved_to_machine_precision_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let vol = tree.domain().cell_volume(1);
        let mut total = Vec3::ZERO;
        let mut scale = 0.0;
        for key in tree.leaves() {
            for cg in field.leaf(key).unwrap() {
                total += cg.force_density * vol;
                scale += (cg.force_density * vol).norm();
            }
        }
        assert!(
            total.norm() <= 1e-12 * scale.max(1.0),
            "momentum residual {total:?} at scale {scale}"
        );
    }

    #[test]
    fn angular_momentum_closed_by_torque_ledger_on_uniform_tree() {
        let tree = uniform_tree(1, blob_density);
        let solver = FmmSolver::new(0.5);
        let moments = solver.compute_moments(&tree);
        let field = solver.solve_with_moments(&tree, &moments);
        let domain = tree.domain();
        let vol = domain.cell_volume(1);
        let mut orbital = Vec3::ZERO;
        let mut spin = Vec3::ZERO;
        let mut scale = 0.0;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let mom = &moments[&key];
            for ci in 0..cg.len() {
                let f = cg[ci].force_density * vol;
                orbital += mom[ci].com.cross(f);
                spin += cg[ci].torque_density * vol;
                scale += mom[ci].com.cross(f).norm();
            }
        }
        let residual = (orbital + spin).norm();
        // Same-level passes close the budget to round-off (see the
        // kernel tests); distributing coarse-level ledgers through L2L
        // moves force application points, so the multi-level residual is
        // truncation-order, not round-off. Bound it tightly relative to
        // the total torque scale.
        assert!(
            residual <= 1e-3 * scale.max(1.0),
            "angular momentum residual {residual} at scale {scale}"
        );
    }

    #[test]
    fn deeper_uniform_tree_improves_direct_agreement() {
        // At level 2 the stencil is exercised across node boundaries and
        // the L2L path is active (level-1 nodes are refined).
        let tree = uniform_tree(2, blob_density);
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&tree);
        let (_, reference) = direct_reference(&tree);
        let mut idx = 0;
        let mut max_rel_phi = 0.0f64;
        for key in tree.leaves() {
            let cg = field.leaf(key).unwrap();
            let grid = tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let got = cg[cell_index(i, j, k)];
                let (phi_ref, _) = reference[idx];
                max_rel_phi = max_rel_phi.max((got.phi - phi_ref).abs() / phi_ref.abs());
                idx += 1;
            }
        }
        // Order-2 multipoles at theta = 0.5: a few percent in the far
        // field of a compact blob is the expected truncation error.
        assert!(max_rel_phi < 5e-2, "phi error {max_rel_phi}");
    }

    #[test]
    fn amr_tree_solves_and_counts_kernels() {
        let mut t = Octree::new(Domain::new(16.0));
        // Refine the centre one extra level.
        t.refine(MortonKey::root());
        t.refine(MortonKey::new(1, 0, 0, 0));
        let domain = t.domain();
        for key in t.leaves() {
            let node = t.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, blob_density(c));
            }
        }
        t.restrict_all();
        let solver = FmmSolver::new(0.5);
        let field = solver.solve(&t);
        assert!(field.interactions > 0);
        assert!(field.kernel_launches > 0);
        // Every leaf present, all values finite.
        for key in t.leaves() {
            let cg = field.leaf(key).expect("leaf output");
            for c in cg {
                assert!(c.phi.is_finite());
                assert!(c.g.norm().is_finite());
            }
        }
    }
}
