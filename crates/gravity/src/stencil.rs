//! The same-level interaction stencil.
//!
//! "How many cells are considered as 'neighboring' is determined by the
//! so-called opening criteria. However, their number is constant on
//! each level" (§4.3). A cell pair at offset `d` interacts at this
//! level iff the pair is *separated* under the opening criterion here
//! (|d| > 1/θ) but its parent pair is *not* separated (so the coarser
//! level could not have handled it). The parent offset depends on the
//! cell's parity within its parent, so the stencil is the union over
//! parities — one fixed list applied to every cell, exactly the
//! structure the paper's SoA kernels exploit.
//!
//! With θ = 0.5 this yields **982** offsets; the paper's geometry
//! (different separation metric details) gives 1074 — same order, same
//! shape (a thick spherical shell), slightly different count.
//! DESIGN.md documents the substitution; the flop-count constants used
//! by the performance models are the paper's own.

/// Squared separation threshold of the opening criterion: two cells at
/// integer offset `d` are *separated* (safe for M2L at this level) iff
/// `|d|² > 2/θ²`. With θ = 0.5 the threshold is 8.
pub fn separation2(theta: f64) -> f64 {
    2.0 / (theta * theta)
}

/// The fixed same-level stencil.
///
/// Whether a given pair is handled at this level depends on its *actual*
/// parent offset, which varies with the cell's parity within its parent
/// (position mod 2 per axis). The stencil therefore carries eight
/// parity-specific offset lists (whose union is the single list the
/// paper's kernels apply with masking); using the parity lists makes
/// each pair interact exactly once across all levels.
#[derive(Debug, Clone)]
pub struct Stencil {
    /// Union over parities (the "1074-element stencil" analogue).
    offsets: Vec<(i32, i32, i32)>,
    /// Per-parity exact lists; parity index = (i&1) | ((j&1)<<1) | ((k&1)<<2).
    by_parity: [Vec<(i32, i32, i32)>; 8],
    /// Largest |component| over all offsets (halo width needed).
    width: i32,
}

impl Stencil {
    /// Generate the stencil for opening parameter `theta` (interact at
    /// this level iff `|d|² > (1/θ)²` and the parent pair is closer
    /// than its own threshold).
    pub fn generate(theta: f64) -> Stencil {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let inv2 = separation2(theta);
        let reach = (2.0 * inv2.sqrt()).ceil() as i32 + 2;
        let mut by_parity: [Vec<(i32, i32, i32)>; 8] = Default::default();
        let mut union = std::collections::BTreeSet::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let d2 = (dx * dx + dy * dy + dz * dz) as f64;
                    if d2 <= inv2 {
                        continue; // not separated here: handled closer in
                    }
                    for parity in 0..8u8 {
                        let (px, py, pz) =
                            ((parity & 1) as i32, ((parity >> 1) & 1) as i32, ((parity >> 2) & 1) as i32);
                        let pd = (
                            (px + dx).div_euclid(2),
                            (py + dy).div_euclid(2),
                            (pz + dz).div_euclid(2),
                        );
                        let pd2 = (pd.0 * pd.0 + pd.1 * pd.1 + pd.2 * pd.2) as f64;
                        if pd2 <= inv2 {
                            // Parent pair not separated: this level owns it.
                            by_parity[parity as usize].push((dx, dy, dz));
                            union.insert((dx, dy, dz));
                        }
                    }
                }
            }
        }
        let offsets: Vec<(i32, i32, i32)> = union.into_iter().collect();
        let width = offsets
            .iter()
            .map(|&(x, y, z)| x.abs().max(y.abs()).max(z.abs()))
            .max()
            .unwrap_or(0);
        Stencil { offsets, by_parity, width }
    }

    /// The default Octo-Tiger opening parameter.
    pub fn octotiger() -> Stencil {
        Stencil::generate(0.5)
    }

    /// The near-field offsets *not* covered by the same-level stencil
    /// (|d|² ≤ (1/θ)², d ≠ 0): these pairs are closer than the opening
    /// criterion allows and are evaluated as direct cell-cell
    /// (monopole–monopole) interactions at the leaf level.
    pub fn near_field(theta: f64) -> Vec<(i32, i32, i32)> {
        let inv2 = separation2(theta);
        let reach = inv2.sqrt().ceil() as i32;
        let mut out = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if ((dx * dx + dy * dy + dz * dz) as f64) <= inv2 {
                        out.push((dx, dy, dz));
                    }
                }
            }
        }
        out
    }

    pub fn offsets(&self) -> &[(i32, i32, i32)] {
        &self.offsets
    }

    /// The exact offset list for cells of `parity`
    /// (= `(i&1) | ((j&1)<<1) | ((k&1)<<2)`).
    pub fn for_parity(&self, parity: u8) -> &[(i32, i32, i32)] {
        &self.by_parity[parity as usize]
    }

    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Halo width (max |component|) the stencil requires.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Whether the stencil is symmetric (d ∈ S ⟺ −d ∈ S) — required
    /// for pairwise conservation.
    pub fn is_symmetric(&self) -> bool {
        use std::collections::HashSet;
        let set: HashSet<_> = self.offsets.iter().copied().collect();
        self.offsets
            .iter()
            .all(|&(x, y, z)| set.contains(&(-x, -y, -z)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octotiger_stencil_size_and_shape() {
        let s = Stencil::octotiger();
        // Our opening rule yields a 982-offset union (paper: 1074).
        assert_eq!(s.len(), 982, "stencil size changed: {}", s.len());
        // Parity lists are nonempty subsets whose union is the union.
        let mut union = std::collections::BTreeSet::new();
        for parity in 0..8 {
            let list = s.for_parity(parity);
            assert!(!list.is_empty());
            for d in list {
                assert!(s.offsets().contains(d));
                union.insert(*d);
            }
        }
        assert_eq!(union.len(), s.len());
        assert!(s.is_symmetric());
        // Thick shell: no offsets inside |d|² <= 8, all within the reach.
        for &(x, y, z) in s.offsets() {
            let d2 = x * x + y * y + z * z;
            assert!(d2 > 8, "offset ({x},{y},{z}) inside the near field");
        }
        assert!(s.width() >= 4 && s.width() <= 8, "width = {}", s.width());
    }

    #[test]
    fn near_field_is_small_and_symmetric() {
        let nf = Stencil::near_field(0.5);
        // |d|² <= 8, d != 0: 92 offsets.
        assert_eq!(nf.len(), 92);
        for &(x, y, z) in &nf {
            assert!(nf.contains(&(-x, -y, -z)));
        }
    }

    #[test]
    fn stencil_plus_parents_cover_space() {
        // Every offset within the reach must be handled somewhere:
        // either in the near field, in the same-level stencil, or be
        // separated at the parent level (handled by a coarser pass).
        let theta = 0.5f64;
        let inv2 = separation2(theta);
        let s = Stencil::generate(theta);
        let near = Stencil::near_field(theta);
        for dx in -10i32..=10 {
            for dy in -10i32..=10 {
                for dz in -10i32..=10 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let d2 = (dx * dx + dy * dy + dz * dz) as f64;
                    let in_near = near.contains(&(dx, dy, dz));
                    let in_stencil = s.offsets().contains(&(dx, dy, dz));
                    // Parent separated for ALL parities?
                    let mut parent_sep_all = true;
                    for px in 0..2 {
                        for py in 0..2 {
                            for pz in 0..2 {
                                let pd = (
                                    (px + dx).div_euclid(2),
                                    (py + dy).div_euclid(2),
                                    (pz + dz).div_euclid(2),
                                );
                                let pd2 = (pd.0 * pd.0 + pd.1 * pd.1 + pd.2 * pd.2) as f64;
                                if pd2 <= inv2 {
                                    parent_sep_all = false;
                                }
                            }
                        }
                    }
                    assert!(
                        in_near || in_stencil || parent_sep_all || d2 <= inv2,
                        "offset ({dx},{dy},{dz}) unhandled"
                    );
                }
            }
        }
    }

    #[test]
    fn smaller_theta_means_bigger_stencil() {
        let s05 = Stencil::generate(0.5);
        let s035 = Stencil::generate(0.35);
        assert!(s035.len() > s05.len());
        assert!(s035.is_symmetric());
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn invalid_theta_rejected() {
        let _ = Stencil::generate(0.0);
    }
}
