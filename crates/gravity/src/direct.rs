//! Direct O(N²) summation — the accuracy reference for the FMM.
//!
//! SPH codes "using direct summation for gravity are limited to only a
//! few thousand particles" (§2); here direct summation serves as the
//! exact (to round-off) reference the FMM is validated against.

use util::vec3::Vec3;

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointMass {
    pub m: f64,
    pub pos: Vec3,
}

/// Potential and acceleration at each point from all other points
/// (G = 1, φ = −Σ m/r).
pub fn direct_sum(points: &[PointMass]) -> Vec<(f64, Vec3)> {
    let n = points.len();
    let mut out = vec![(0.0, Vec3::ZERO); n];
    for i in 0..n {
        let mut phi = 0.0;
        let mut g = Vec3::ZERO;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = points[i].pos - points[j].pos;
            let r2 = d.norm2();
            let u = 1.0 / r2.sqrt();
            let u3 = u / r2;
            phi -= points[j].m * u;
            g -= d * (points[j].m * u3);
        }
        out[i] = (phi, g);
    }
    out
}

/// Total gravitational potential energy ½ Σᵢ mᵢ φᵢ.
pub fn potential_energy(points: &[PointMass], phi: &[(f64, Vec3)]) -> f64 {
    0.5 * points
        .iter()
        .zip(phi)
        .map(|(p, (ph, _))| p.m * ph)
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_newton() {
        let pts = [
            PointMass { m: 3.0, pos: Vec3::ZERO },
            PointMass { m: 2.0, pos: Vec3::new(2.0, 0.0, 0.0) },
        ];
        let res = direct_sum(&pts);
        // Acceleration of body 0 toward body 1: m1/r² = 0.5 in +x.
        assert!((res[0].1.x - 0.5).abs() < 1e-15);
        // Of body 1 toward body 0: 0.75 in −x.
        assert!((res[1].1.x + 0.75).abs() < 1e-15);
        // φ at 0: −2/2 = −1; at 1: −3/2.
        assert!((res[0].0 + 1.0).abs() < 1e-15);
        assert!((res[1].0 + 1.5).abs() < 1e-15);
        // Energy: ½(3·(−1) + 2·(−1.5)) = −3.
        assert!((potential_energy(&pts, &res) + 3.0).abs() < 1e-14);
    }

    #[test]
    fn forces_sum_to_zero() {
        let pts: Vec<PointMass> = (0..20)
            .map(|i| PointMass {
                m: 1.0 + (i % 5) as f64,
                pos: Vec3::new(
                    (i % 4) as f64,
                    ((i / 4) % 4) as f64 * 1.3,
                    (i % 7) as f64 * 0.7,
                ),
            })
            .collect();
        let res = direct_sum(&pts);
        let total: Vec3 = pts.iter().zip(&res).map(|(p, (_, g))| *g * p.m).sum();
        let scale: f64 = pts.iter().zip(&res).map(|(p, (_, g))| (*g * p.m).norm()).sum();
        assert!(total.norm() < 1e-12 * scale.max(1.0));
    }
}
