//! The one-sided libfabric parcelport stand-in.
//!
//! "All user/packed data buffers larger than the eager message size
//! threshold are encoded as pointers and exchanged between nodes using
//! one-sided RMA put/get operations" and "any task scheduling thread may
//! poll for completions in libfabric and set futures to received data
//! without any intervening layer" (§5.2). The mechanisms reproduced:
//!
//! * **Zero copy**: the payload [`bytes::Bytes`] handle itself is the
//!   registered memory region; delivery shares the buffer by reference
//!   count, never copying bytes.
//! * **Lock-free completion queues**: a `crossbeam_channel` per locality;
//!   any worker may poll concurrently without serializing behind a
//!   progress lock.
//! * **No tag matching**: completions map one-to-one onto ready futures.
//!
//! Memory registration is modelled by [`RmaRegion`]: payloads are
//! "pinned" on send and unpinned when the receive side drops its handle,
//! with a counter tracking outstanding registrations (the future
//! user-controlled RMA buffer work of §7 would amortize these).

use crate::cluster::{DeliveryFn, Transport};
use crate::netmodel::TransportKind;
use crate::parcel::Parcel;
use amt::CounterRegistry;
use bytes::Bytes;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A registered ("pinned") memory region holding a payload. Dropping the
/// region unregisters it.
pub struct RmaRegion {
    bytes: Bytes,
    registrations: Arc<AtomicUsize>,
}

impl RmaRegion {
    fn pin(bytes: Bytes, registrations: &Arc<AtomicUsize>) -> RmaRegion {
        registrations.fetch_add(1, Ordering::SeqCst);
        RmaRegion { bytes, registrations: Arc::clone(registrations) }
    }

    /// Read access to the pinned payload (zero-copy).
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }
}

impl Drop for RmaRegion {
    fn drop(&mut self) {
        self.registrations.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Completion {
    parcel_meta: Parcel, // payload field empty; real payload in the region
    region: RmaRegion,
}

struct PerLocality {
    cq_tx: Sender<Completion>,
    cq_rx: Receiver<Completion>,
    delivery: Mutex<Option<DeliveryFn>>,
}

/// The one-sided transport.
pub struct LibfabricTransport {
    locs: Vec<PerLocality>,
    in_flight: AtomicUsize,
    registrations: Arc<AtomicUsize>,
    counters: Arc<CounterRegistry>,
}

impl LibfabricTransport {
    pub fn new(n_localities: usize) -> LibfabricTransport {
        LibfabricTransport {
            locs: (0..n_localities)
                .map(|_| {
                    let (cq_tx, cq_rx) = unbounded();
                    PerLocality { cq_tx, cq_rx, delivery: Mutex::new(None) }
                })
                .collect(),
            in_flight: AtomicUsize::new(0),
            registrations: Arc::new(AtomicUsize::new(0)),
            counters: Arc::new(CounterRegistry::new()),
        }
    }

    /// Number of currently pinned memory regions.
    pub fn pinned_regions(&self) -> usize {
        self.registrations.load(Ordering::SeqCst)
    }
}

impl Transport for LibfabricTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Libfabric
    }

    fn send(&self, _from: u32, parcel: Parcel) {
        assert!((parcel.dest_locality as usize) < self.locs.len(), "bad destination");
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        // Pin the payload; ship only the descriptor. Delivery performs
        // the RMA "get" by taking the refcounted handle.
        let region = RmaRegion::pin(parcel.payload.clone(), &self.registrations);
        let meta = Parcel { payload: Bytes::new(), ..parcel };
        self.counters.increment("libfabric/rma_puts");
        self.locs[meta.dest_locality as usize]
            .cq_tx
            .send(Completion { parcel_meta: meta, region })
            .expect("completion queue closed");
    }

    fn progress(&self, locality: u32) -> bool {
        // Lock-free: any number of workers may poll concurrently.
        let loc = &self.locs[locality as usize];
        let mut progressed = false;
        for _ in 0..64 {
            let Ok(completion) = loc.cq_rx.try_recv() else { break };
            progressed = true;
            self.counters.increment("parcels/received");
            // Zero-copy: hand the pinned bytes straight to the parcel.
            let payload = completion.region.bytes().clone();
            let mut parcel = completion.parcel_meta;
            parcel.payload = payload;
            drop(completion.region); // unregister
            let delivery = loc
                .delivery
                .lock()
                .clone()
                .expect("delivery callback not installed");
            delivery(parcel);
            // Decrement only after delivery has handed the parcel to the
            // destination runtime: a quiescence check must never observe
            // both this counter and the scheduler's at zero while the
            // parcel sits in a poller's hands.
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        progressed
    }

    fn set_delivery(&self, locality: u32, delivery: DeliveryFn) {
        *self.locs[locality as usize].delivery.lock() = Some(delivery);
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parcel::ActionId;
    use amt::GlobalId;
    use parking_lot::Mutex as PMutex;

    fn parcel(to: u32, payload: Bytes) -> Parcel {
        Parcel {
            dest_locality: to,
            dest_component: GlobalId(1),
            action: ActionId(1),
            payload,
        }
    }

    #[test]
    fn delivery_is_zero_copy() {
        let t = LibfabricTransport::new(2);
        let payload = Bytes::from(vec![1u8; 1 << 20]);
        let src_ptr = payload.as_ptr();
        let got: Arc<PMutex<Vec<Parcel>>> = Arc::new(PMutex::new(Vec::new()));
        let g = Arc::clone(&got);
        t.set_delivery(1, Arc::new(move |p| g.lock().push(p)));
        t.send(0, parcel(1, payload));
        assert!(t.progress(1));
        let got = got.lock();
        assert_eq!(got.len(), 1);
        // Same backing allocation: the pointer must be identical.
        assert_eq!(got[0].payload.as_ptr(), src_ptr);
        assert_eq!(t.counters().get("parcels/payload_copies"), 0);
    }

    #[test]
    fn regions_are_unpinned_after_delivery() {
        let t = LibfabricTransport::new(2);
        t.set_delivery(1, Arc::new(|_p| {}));
        for _ in 0..10 {
            t.send(0, parcel(1, Bytes::from(vec![0u8; 128])));
        }
        assert_eq!(t.pinned_regions(), 10);
        while t.in_flight() > 0 {
            t.progress(1);
        }
        assert_eq!(t.pinned_regions(), 0);
    }

    #[test]
    fn concurrent_polling_is_safe() {
        let t = Arc::new(LibfabricTransport::new(2));
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        t.set_delivery(
            1,
            Arc::new(move |_p| {
                c.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let n = 10_000;
        for _ in 0..n {
            t.send(0, parcel(1, Bytes::from_static(&[9; 16])));
        }
        let pollers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || while t.progress(1) {})
            })
            .collect();
        for p in pollers {
            p.join().unwrap();
        }
        // A final single-threaded sweep in case a poller exited early.
        while t.progress(1) {}
        assert_eq!(count.load(Ordering::SeqCst), n);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn progress_on_empty_queue_is_false() {
        let t = LibfabricTransport::new(1);
        t.set_delivery(0, Arc::new(|_p| {}));
        assert!(!t.progress(0));
    }
}
