//! Deterministic fault injection for the simulated parcelports.
//!
//! A real libfabric parcelport on 5400 Piz Daint nodes lives in a world
//! where packets are dropped, duplicated, reordered, and delayed, and
//! where whole nodes stall or die mid-run. The clean simulated
//! transports assume all of that away; [`FaultyTransport`] puts it
//! back. It decorates any [`Transport`] (either sim backend) and
//! consults a seeded [`FaultPlan`] on every send and progress call:
//!
//! * **parcel faults** — drop, duplicate, delay (release after a number
//!   of progress ticks), and reorder (swap with the next parcel to the
//!   same destination);
//! * **locality faults** — *stall* (the locality stops making progress
//!   for a window of ticks, then recovers) and *crash* (the locality
//!   goes dark forever: inbound parcels are delivered to a dead sink,
//!   outbound sends are swallowed, and the locality is reported through
//!   [`Transport::failed_localities`]).
//!
//! Decisions are pure functions of the plan seed and a global send
//! index (splitmix64), so a plan is reproducible. Parcel faults require
//! the reliable-delivery layer above this one
//! ([`crate::reliable::ReliableTransport`]) — without retransmission a
//! dropped parcel would hang quiescence forever; the cluster builder
//! enforces that pairing.
//!
//! Everything the layer does is counted under its own registry
//! (mounted at `parcelport/faults` by the cluster): `dropped`,
//! `duplicated`, `delayed`, `reordered`, `dead_dropped`,
//! `dead_delivered`, `crashes`, `stalls`.

use crate::cluster::{DeliveryFn, Transport};
use crate::netmodel::TransportKind;
use crate::parcel::Parcel;
use amt::CounterRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Mix a seed and a counter into a pseudo-random `u64` (splitmix64).
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Map a `u64` onto `[0, 1)`.
fn unit(r: u64) -> f64 {
    (r >> 11) as f64 / (1u64 << 53) as f64
}

/// A whole-locality failure scheduled by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// After `locality` has issued `after_sends` parcels, it goes dark
    /// forever: no progress, inbound traffic dead-sinked, outbound
    /// swallowed.
    Crash {
        /// The locality that dies.
        locality: u32,
        /// Outbound parcel count that triggers the crash.
        after_sends: u64,
    },
    /// After `locality` has issued `after_sends` parcels, it makes no
    /// progress for `ticks` progress calls, then recovers.
    Stall {
        /// The locality that hangs.
        locality: u32,
        /// Outbound parcel count that triggers the stall.
        after_sends: u64,
        /// Length of the stall in progress ticks.
        ticks: u64,
    },
}

/// A seeded, deterministic description of the faults to inject.
///
/// ```
/// use parcelport::fault::FaultPlan;
///
/// let plan = FaultPlan::seeded(42).drop(0.05).duplicate(0.05).delay(0.1, 32);
/// assert!(!plan.has_crash());
/// let lossy = plan.crash(1, 200);
/// assert!(lossy.has_crash());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    max_delay_ticks: u64,
    reorder_p: f64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing until probabilities or events are
    /// added. `seed` fixes every probabilistic decision.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay_ticks: 16,
            reorder_p: 0.0,
            events: Vec::new(),
        }
    }

    /// Drop each parcel with probability `p`.
    pub fn drop(mut self, p: f64) -> FaultPlan {
        self.drop_p = p;
        self
    }

    /// Duplicate each parcel with probability `p`.
    pub fn duplicate(mut self, p: f64) -> FaultPlan {
        self.dup_p = p;
        self
    }

    /// Delay each parcel with probability `p` by 1..=`max_ticks`
    /// progress ticks.
    pub fn delay(mut self, p: f64, max_ticks: u64) -> FaultPlan {
        self.delay_p = p;
        self.max_delay_ticks = max_ticks.max(1);
        self
    }

    /// With probability `p`, hold a parcel and release it *after* the
    /// next parcel to the same destination (an adjacent swap).
    pub fn reorder(mut self, p: f64) -> FaultPlan {
        self.reorder_p = p;
        self
    }

    /// Schedule a [`FaultEvent::Crash`].
    pub fn crash(mut self, locality: u32, after_sends: u64) -> FaultPlan {
        self.events.push(FaultEvent::Crash { locality, after_sends });
        self
    }

    /// Schedule a [`FaultEvent::Stall`].
    pub fn stall(mut self, locality: u32, after_sends: u64, ticks: u64) -> FaultPlan {
        self.events.push(FaultEvent::Stall { locality, after_sends, ticks });
        self
    }

    /// Whether the plan contains a crash event (plans without one must
    /// be survivable without data loss).
    pub fn has_crash(&self) -> bool {
        self.events.iter().any(|e| matches!(e, FaultEvent::Crash { .. }))
    }

    /// Whether the plan can perturb parcels at all (used by the cluster
    /// builder to require the reliable layer).
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.reorder_p > 0.0
            || !self.events.is_empty()
    }
}

/// A parcel parked by the delay/reorder machinery.
struct Held {
    release_tick: u64,
    from: u32,
    parcel: Parcel,
}

/// The fault-injecting transport decorator.
pub struct FaultyTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    /// Global progress-tick clock (every `progress` call advances it).
    ticks: AtomicU64,
    /// Global send index: the RNG stream position.
    rolls: AtomicU64,
    /// Per-locality outbound parcel counts (event triggers).
    sends_by_loc: Vec<AtomicU64>,
    /// Shared per-locality crash flags (shared with the wrapped
    /// delivery closures, which dead-sink inbound traffic once set).
    crashed: Vec<Arc<AtomicBool>>,
    /// Tick until which each locality is stalled (0 = not stalled).
    stalled_until: Vec<AtomicU64>,
    /// Delayed parcels waiting for their release tick.
    held: Mutex<Vec<Held>>,
    /// Reorder holds: one parked parcel per destination, released
    /// (swapped) by the next send to that destination.
    swap_hold: Mutex<HashMap<u32, Held>>,
    counters: Arc<CounterRegistry>,
}

/// Ticks after which a reorder hold is force-flushed even if no second
/// parcel to the same destination ever arrives.
const SWAP_FLUSH_TICKS: u64 = 64;

impl FaultyTransport {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan, n_localities: usize) -> FaultyTransport {
        FaultyTransport {
            inner,
            plan,
            ticks: AtomicU64::new(1),
            rolls: AtomicU64::new(0),
            sends_by_loc: (0..n_localities).map(|_| AtomicU64::new(0)).collect(),
            crashed: (0..n_localities).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            stalled_until: (0..n_localities).map(|_| AtomicU64::new(0)).collect(),
            held: Mutex::new(Vec::new()),
            swap_hold: Mutex::new(HashMap::new()),
            counters: Arc::new(CounterRegistry::new()),
        }
    }

    /// The fault-event counters (`dropped`, `duplicated`, ...). The
    /// cluster mounts these under `parcelport/faults`.
    pub fn fault_counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// The plan this transport injects.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `locality` has crashed.
    pub fn is_crashed(&self, locality: u32) -> bool {
        self.crashed[locality as usize].load(Ordering::SeqCst)
    }

    /// Crash `locality` right now (test/driver hook; the planned
    /// [`FaultEvent::Crash`] path routes through here too).
    pub fn crash_now(&self, locality: u32) {
        if !self.crashed[locality as usize].swap(true, Ordering::SeqCst) {
            self.counters.increment("crashes");
        }
    }

    /// Outbound parcels issued by `locality` so far (crash-point probes
    /// in tests use this to place a crash mid-step).
    pub fn sends_from(&self, locality: u32) -> u64 {
        self.sends_by_loc[locality as usize].load(Ordering::SeqCst)
    }

    fn now(&self) -> u64 {
        self.ticks.load(Ordering::SeqCst)
    }

    /// Apply any events triggered by `from` reaching `n` sends.
    fn trigger_events(&self, from: u32, n: u64) {
        for e in &self.plan.events {
            match *e {
                FaultEvent::Crash { locality, after_sends } if locality == from && after_sends == n => {
                    self.crash_now(locality);
                }
                FaultEvent::Stall { locality, after_sends, ticks } if locality == from && after_sends == n => {
                    self.stalled_until[locality as usize]
                        .store(self.now() + ticks, Ordering::SeqCst);
                    self.counters.increment("stalls");
                }
                _ => {}
            }
        }
    }

    /// Release every delayed parcel whose tick has come, and any
    /// overdue reorder holds.
    fn release_due(&self, now: u64) -> bool {
        let due: Vec<Held> = {
            let mut held = self.held.lock();
            let mut due = Vec::new();
            held.retain_mut(|h| {
                if h.release_tick <= now {
                    due.push(Held {
                        release_tick: h.release_tick,
                        from: h.from,
                        parcel: h.parcel.clone(),
                    });
                    false
                } else {
                    true
                }
            });
            due
        };
        let overdue: Vec<Held> = {
            let mut swap = self.swap_hold.lock();
            let keys: Vec<u32> = swap
                .iter()
                .filter(|(_, h)| h.release_tick + SWAP_FLUSH_TICKS <= now)
                .map(|(&k, _)| k)
                .collect();
            keys.into_iter().filter_map(|k| swap.remove(&k)).collect()
        };
        let progressed = !due.is_empty() || !overdue.is_empty();
        for h in due.into_iter().chain(overdue) {
            self.forward(h.from, h.parcel);
        }
        progressed
    }

    /// Hand a parcel to the inner transport unless its endpoints died.
    fn forward(&self, from: u32, parcel: Parcel) {
        if self.is_crashed(parcel.dest_locality) || self.is_crashed(from) {
            self.counters.increment("dead_dropped");
            return;
        }
        self.inner.send(from, parcel);
    }
}

impl Transport for FaultyTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn send(&self, from: u32, parcel: Parcel) {
        if self.is_crashed(from) || self.is_crashed(parcel.dest_locality) {
            self.counters.increment("dead_dropped");
            return;
        }
        let n = self.sends_by_loc[from as usize].fetch_add(1, Ordering::SeqCst) + 1;
        self.trigger_events(from, n);
        // The event may just have killed the sender: this send dies
        // with it (the node crashed while the parcel sat in its NIC).
        if self.is_crashed(from) {
            self.counters.increment("dead_dropped");
            return;
        }

        // A reorder hold for this destination is released *behind* the
        // current parcel: adjacent swap.
        let parked = self.swap_hold.lock().remove(&parcel.dest_locality);

        let r = mix(self.plan.seed, self.rolls.fetch_add(1, Ordering::SeqCst));
        let roll = unit(r);
        if roll < self.plan.drop_p {
            self.counters.increment("dropped");
        } else if roll < self.plan.drop_p + self.plan.dup_p {
            self.counters.increment("duplicated");
            self.forward(from, parcel.clone());
            self.forward(from, parcel);
        } else if roll < self.plan.drop_p + self.plan.dup_p + self.plan.delay_p {
            self.counters.increment("delayed");
            let d = 1 + mix(self.plan.seed ^ 0xD31A, r) % self.plan.max_delay_ticks;
            self.held.lock().push(Held {
                release_tick: self.now() + d,
                from,
                parcel,
            });
        } else if parked.is_none()
            && roll < self.plan.drop_p + self.plan.dup_p + self.plan.delay_p + self.plan.reorder_p
        {
            self.counters.increment("reordered");
            self.swap_hold.lock().insert(
                parcel.dest_locality,
                Held { release_tick: self.now(), from, parcel },
            );
        } else {
            self.forward(from, parcel);
        }
        if let Some(h) = parked {
            self.forward(h.from, h.parcel);
        }
    }

    fn progress(&self, locality: u32) -> bool {
        let now = self.ticks.fetch_add(1, Ordering::SeqCst);
        let mut progressed = self.release_due(now);
        if self.is_crashed(locality) {
            // Drain the dead locality's inbound queue into the dead
            // sink (the wrapped delivery callback below swallows), so
            // the fabric's in-flight accounting still reaches zero.
            self.inner.progress(locality);
            return progressed;
        }
        if self.stalled_until[locality as usize].load(Ordering::SeqCst) > now {
            return progressed;
        }
        progressed |= self.inner.progress(locality);
        progressed
    }

    fn set_delivery(&self, locality: u32, delivery: DeliveryFn) {
        let counters = Arc::clone(&self.counters);
        let flag = Arc::clone(&self.crashed[locality as usize]);
        self.inner.set_delivery(
            locality,
            Arc::new(move |parcel| {
                if flag.load(Ordering::SeqCst) {
                    counters.increment("dead_delivered");
                    return;
                }
                delivery(parcel)
            }),
        );
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight() + self.held.lock().len() + self.swap_hold.lock().len()
    }

    fn counters(&self) -> &Arc<CounterRegistry> {
        self.inner.counters()
    }

    fn failed_localities(&self) -> Vec<u32> {
        self.crashed
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::SeqCst))
            .map(|(i, _)| i as u32)
            .collect()
    }
}
