//! Active messages and parcelports (paper §5.2).
//!
//! HPX transfers work between localities with *parcels*: active messages
//! that carry a serialized function id ("action") plus bound arguments,
//! and trigger that function on the destination. This crate reproduces
//! the two parcelports compared in the paper over a simulated in-process
//! cluster:
//!
//! * [`mpi_sim`] — the default **two-sided MPI** backend: tag matching of
//!   sends and receives, an eager/rendezvous protocol with extra copies,
//!   and a *progress engine guarded by a global lock* (modelling MPI's
//!   "internal progress/scheduling management and locking mechanisms that
//!   interfere with the smooth running of the HPX runtime").
//! * [`libfabric_sim`] — the **one-sided libfabric** backend: registered
//!   memory regions, RMA get of large payloads with zero copies (payload
//!   buffers are shared, not copied), and lock-free completion queues
//!   that "any task scheduling thread may poll ... and set futures to
//!   received data without any intervening layer".
//!
//! Two decorators can be stacked on either backend by the cluster
//! builder: [`fault`] injects seeded, deterministic parcel and locality
//! faults (drop/duplicate/delay/reorder, stall/crash), and [`reliable`]
//! adds ack/retransmit sequencing with duplicate suppression so every
//! action still runs effectively once under those faults.
//!
//! [`netmodel`] captures the quantitative cost model of both transports
//! (latency, bandwidth, per-message CPU overhead, progress contention),
//! which the `perfmodel` crate uses to regenerate Figures 2 and 3.
//! [`cluster`] wires several [`amt::Runtime`] localities together with
//! either backend; [`serialize`] is a compact binary serde codec used for
//! parcel payloads.

pub mod cluster;
pub mod collectives;
pub mod fault;
pub mod libfabric_sim;
pub mod mpi_sim;
pub mod netmodel;
pub mod parcel;
pub mod reliable;
pub mod serialize;

pub use cluster::{Cluster, ClusterBuilder, Locality};
pub use fault::{FaultEvent, FaultPlan, FaultyTransport};
pub use netmodel::{NetParams, TransportKind};
pub use parcel::{ActionHandle, ActionId, ActionRegistry, CallHandle, Parcel};
pub use reliable::{ReliablePolicy, ReliableTransport};
pub use serialize::{from_bytes, to_bytes, CodecError};
