//! Parcels and the action registry.
//!
//! "We refer to the triggering of remote functions with bound arguments
//! as actions and the messages containing the serialized data and remote
//! function as parcels" (§5.2). A [`Parcel`] carries the destination
//! component's [`GlobalId`], the [`ActionId`] naming the function to run
//! there, and the serialized argument payload. On arrival, the
//! destination locality looks the action up in its [`ActionRegistry`] and
//! spawns the handler as a task — the active-message model that lets HPX
//! "run functions close to the objects they operate on" and implicitly
//! overlap computation and communication.

use crate::serialize::to_bytes;
use amt::{GlobalId, Runtime};
use bytes::Bytes;
use parking_lot::RwLock;
use serde::Serialize;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Identifies a remotely executable function. Action ids must be
/// registered identically on every locality (as with HPX action
/// registration, which happens at static initialization time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActionId(pub u32);

/// An active message: run `action` on `dest_component` (which lives on
/// `dest_locality`) with the serialized `payload` as its argument.
#[derive(Debug, Clone)]
pub struct Parcel {
    pub dest_locality: u32,
    pub dest_component: GlobalId,
    pub action: ActionId,
    pub payload: Bytes,
}

impl Parcel {
    /// Total size on the wire: fixed header plus payload.
    pub fn wire_size(&self) -> usize {
        Self::HEADER_BYTES + self.payload.len()
    }

    /// Header size: locality (4) + component id (8) + action (4) +
    /// payload length (8).
    pub const HEADER_BYTES: usize = 24;
}

/// A typed handle to a registered fire-and-forget action.
///
/// Returned by `Cluster::register_action`; the only way to obtain one
/// is to register the action, so a send site holding an
/// `ActionHandle<Req>` is statically guaranteed to (a) name a
/// registered action and (b) encode the request type the handler
/// decodes — the raw `(ActionId, Bytes)` mismatch class of bugs is
/// unrepresentable.
pub struct ActionHandle<Req> {
    id: ActionId,
    _req: PhantomData<fn(&Req)>,
}

// Manual impls: `ActionHandle` is a copyable token regardless of
// whether `Req` itself is `Clone`.
impl<Req> Clone for ActionHandle<Req> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Req> Copy for ActionHandle<Req> {}

impl<Req> std::fmt::Debug for ActionHandle<Req> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActionHandle({:?})", self.id)
    }
}

impl<Req> ActionHandle<Req> {
    pub(crate) fn new(id: ActionId) -> Self {
        ActionHandle { id, _req: PhantomData }
    }

    /// The underlying action id (for metrics/trace labels).
    pub fn id(&self) -> ActionId {
        self.id
    }
}

impl<Req: Serialize> ActionHandle<Req> {
    /// Encode a request into the payload this action's handler decodes.
    /// Useful to serialize once and fan the same payload out to many
    /// destinations via `Locality::send_encoded`.
    pub fn encode(&self, req: &Req) -> util::Result<Bytes> {
        Ok(to_bytes(req)?)
    }
}

/// A typed handle to a registered request/response handler, returned by
/// `Cluster::register_request_handler`. Like [`ActionHandle`] but also
/// pins the response type, so `Locality::call_action` needs no turbofish
/// and cannot decode the reply as the wrong type.
pub struct CallHandle<Req, Resp> {
    id: ActionId,
    _sig: PhantomData<fn(&Req) -> Resp>,
}

impl<Req, Resp> Clone for CallHandle<Req, Resp> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<Req, Resp> Copy for CallHandle<Req, Resp> {}

impl<Req, Resp> std::fmt::Debug for CallHandle<Req, Resp> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CallHandle({:?})", self.id)
    }
}

impl<Req, Resp> CallHandle<Req, Resp> {
    pub(crate) fn new(id: ActionId) -> Self {
        CallHandle { id, _sig: PhantomData }
    }

    /// The underlying action id.
    pub fn id(&self) -> ActionId {
        self.id
    }
}

/// The handler type: receives the hosting runtime, the destination
/// component id, and the payload.
pub type ActionFn = Arc<dyn Fn(&Arc<Runtime>, GlobalId, Bytes) + Send + Sync>;

/// Per-locality map of action ids to handlers.
#[derive(Default, Clone)]
pub struct ActionRegistry {
    actions: Arc<RwLock<HashMap<ActionId, ActionFn>>>,
}

impl ActionRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `handler` under `id`.
    ///
    /// # Panics
    /// If `id` is already registered — silently replacing a handler is
    /// almost always a bug in scenario setup.
    pub fn register(
        &self,
        id: ActionId,
        handler: impl Fn(&Arc<Runtime>, GlobalId, Bytes) + Send + Sync + 'static,
    ) {
        let prev = self.actions.write().insert(id, Arc::new(handler));
        assert!(prev.is_none(), "action {id:?} registered twice");
    }

    /// Look up the handler for `id`.
    pub fn get(&self, id: ActionId) -> Option<ActionFn> {
        self.actions.read().get(&id).cloned()
    }

    /// Invoke the action for `parcel` on `rt`, spawning it as a task.
    ///
    /// # Panics
    /// If the action is unknown — a protocol error in the simulated
    /// cluster.
    pub fn dispatch(&self, rt: &Arc<Runtime>, parcel: Parcel) {
        let handler = self
            .get(parcel.action)
            .unwrap_or_else(|| panic!("unknown action {:?}", parcel.action));
        let rt2 = Arc::clone(rt);
        rt.spawn(move || handler(&rt2, parcel.dest_component, parcel.payload));
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.actions.read().len()
    }

    /// Whether no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn wire_size_includes_header() {
        let p = Parcel {
            dest_locality: 0,
            dest_component: GlobalId(1),
            action: ActionId(2),
            payload: Bytes::from_static(&[0u8; 100]),
        };
        assert_eq!(p.wire_size(), 124);
    }

    #[test]
    fn register_and_dispatch() {
        let rt = Runtime::new(2);
        let reg = ActionRegistry::new();
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        reg.register(ActionId(7), move |_rt, id, payload| {
            assert_eq!(id, GlobalId(42));
            assert_eq!(payload.len(), 3);
            h.fetch_add(1, Ordering::SeqCst);
        });
        reg.dispatch(
            &rt,
            Parcel {
                dest_locality: 0,
                dest_component: GlobalId(42),
                action: ActionId(7),
                payload: Bytes::from_static(&[1, 2, 3]),
            },
        );
        rt.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let reg = ActionRegistry::new();
        reg.register(ActionId(1), |_, _, _| {});
        reg.register(ActionId(1), |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "unknown action")]
    fn unknown_action_panics() {
        let rt = Runtime::new(1);
        let reg = ActionRegistry::new();
        reg.dispatch(
            &rt,
            Parcel {
                dest_locality: 0,
                dest_component: GlobalId(0),
                action: ActionId(99),
                payload: Bytes::new(),
            },
        );
    }
}
