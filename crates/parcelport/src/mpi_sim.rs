//! The two-sided MPI parcelport stand-in.
//!
//! "The default messaging layer in HPX is built on top of the
//! asynchronous two-sided MPI API and uses Isend/Irecv within the parcel
//! encoding and decoding steps" (§5.2). The mechanisms that make this
//! backend slower than libfabric — and which this simulation reproduces
//! faithfully, not as a tuned constant — are:
//!
//! * **Copies**: eager messages are packed into a send buffer and
//!   unpacked into a receive buffer (two payload copies); rendezvous
//!   transfers copy once on send.
//! * **Tag matching**: receives traverse a match queue per destination.
//! * **A locked progress engine**: "MPI ... has its own internal
//!   progress/scheduling management and locking mechanisms that interfere
//!   with the smooth running of the HPX runtime". All progress for a
//!   locality funnels through one mutex, so concurrent worker threads
//!   serialize.
//! * **Rendezvous handshake**: payloads above the eager threshold need a
//!   ready-to-send / clear-to-send round trip before data moves, so large
//!   halos pay extra latency *and* require the sender to be polled again.

use crate::cluster::{DeliveryFn, Transport};
use crate::netmodel::TransportKind;
use crate::parcel::{ActionId, Parcel};
use amt::{CounterRegistry, GlobalId};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Eager/rendezvous threshold (bytes), matching Cray MPICH's default
/// order of magnitude.
pub const EAGER_THRESHOLD: usize = 16 * 1024;

struct ParcelHeader {
    dest_locality: u32,
    dest_component: GlobalId,
    action: ActionId,
}

enum WireMsg {
    /// Small message: payload travelled packed in the envelope (copy #1);
    /// the receiver unpacks it (copy #2).
    Eager { header: ParcelHeader, data: Vec<u8> },
    /// Rendezvous step 1: sender announces a large message.
    Rts { msg_id: u64, from: u32 },
    /// Rendezvous step 2: receiver grants the transfer.
    Cts { msg_id: u64 },
    /// Rendezvous step 3: the payload (copied out of the user buffer on
    /// send; handed to the receiver without a further copy, as real MPI
    /// receives directly into the posted buffer).
    Data { header: ParcelHeader, data: Vec<u8> },
}

struct PerLocality {
    /// Inbound match queue, guarded by the "MPI internal lock".
    inbox: Mutex<VecDeque<WireMsg>>,
    delivery: Mutex<Option<DeliveryFn>>,
}

/// The two-sided transport.
pub struct MpiTransport {
    locs: Vec<PerLocality>,
    /// Sender-side payloads parked until their CTS arrives.
    held: Mutex<HashMap<u64, Parcel>>,
    next_msg_id: AtomicU64,
    in_flight: AtomicUsize,
    counters: Arc<CounterRegistry>,
}

impl MpiTransport {
    pub fn new(n_localities: usize) -> MpiTransport {
        MpiTransport {
            locs: (0..n_localities)
                .map(|_| PerLocality {
                    inbox: Mutex::new(VecDeque::new()),
                    delivery: Mutex::new(None),
                })
                .collect(),
            held: Mutex::new(HashMap::new()),
            next_msg_id: AtomicU64::new(1),
            in_flight: AtomicUsize::new(0),
            counters: Arc::new(CounterRegistry::new()),
        }
    }

    fn push(&self, to: u32, msg: WireMsg) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        self.locs[to as usize].inbox.lock().push_back(msg);
    }

    fn deliver(&self, locality: u32, parcel: Parcel) {
        let delivery = self.locs[locality as usize]
            .delivery
            .lock()
            .clone()
            .expect("delivery callback not installed");
        delivery(parcel);
    }
}

impl Transport for MpiTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::Mpi
    }

    fn send(&self, from: u32, parcel: Parcel) {
        assert!((parcel.dest_locality as usize) < self.locs.len(), "bad destination");
        if parcel.payload.len() <= EAGER_THRESHOLD {
            // Copy #1: pack the payload into the eager envelope.
            let data = parcel.payload.to_vec();
            self.counters.increment("parcels/payload_copies");
            self.push(
                parcel.dest_locality,
                WireMsg::Eager {
                    header: ParcelHeader {
                        dest_locality: parcel.dest_locality,
                        dest_component: parcel.dest_component,
                        action: parcel.action,
                    },
                    data,
                },
            );
            self.counters.increment("mpi/eager_sends");
        } else {
            let msg_id = self.next_msg_id.fetch_add(1, Ordering::Relaxed);
            self.held.lock().insert(msg_id, parcel.clone());
            self.push(parcel.dest_locality, WireMsg::Rts { msg_id, from });
            self.counters.increment("mpi/rendezvous_sends");
        }
    }

    fn progress(&self, locality: u32) -> bool {
        let loc = &self.locs[locality as usize];
        // The serialized progress engine: only one thread per locality
        // may drive MPI progress at a time; others bounce off.
        let Some(mut inbox) = loc.inbox.try_lock() else {
            return false;
        };
        let mut progressed = false;
        // Drain a bounded batch to keep poll latency fair.
        for _ in 0..64 {
            let Some(msg) = inbox.pop_front() else { break };
            // Release the lock while handling the message so handlers can
            // send (possibly back into this very inbox).
            drop(inbox);
            progressed = true;
            match msg {
                WireMsg::Eager { header, data } => {
                    // Copy #2: unpack into the receive buffer.
                    let payload = Bytes::from(data);
                    self.counters.increment("parcels/payload_copies");
                    self.counters.increment("parcels/received");
                    self.deliver(
                        locality,
                        Parcel {
                            dest_locality: header.dest_locality,
                            dest_component: header.dest_component,
                            action: header.action,
                            payload,
                        },
                    );
                }
                WireMsg::Rts { msg_id, from } => {
                    self.push(from, WireMsg::Cts { msg_id });
                }
                WireMsg::Cts { msg_id } => {
                    let parcel = self
                        .held
                        .lock()
                        .remove(&msg_id)
                        .expect("CTS for unknown message");
                    // Copy the payload out of the user buffer for the wire.
                    let data = parcel.payload.to_vec();
                    self.counters.increment("parcels/payload_copies");
                    self.push(
                        parcel.dest_locality,
                        WireMsg::Data {
                            header: ParcelHeader {
                                dest_locality: parcel.dest_locality,
                                dest_component: parcel.dest_component,
                                action: parcel.action,
                            },
                            data,
                        },
                    );
                }
                WireMsg::Data { header, data } => {
                    self.counters.increment("parcels/received");
                    self.deliver(
                        locality,
                        Parcel {
                            dest_locality: header.dest_locality,
                            dest_component: header.dest_component,
                            action: header.action,
                            payload: Bytes::from(data),
                        },
                    );
                }
            }
            // Decrement only after the message is fully handled (parcel
            // delivered to the runtime, or the follow-up wire message
            // pushed — which incremented the counter first), so a
            // quiescence check never sees a transient zero while this
            // thread still holds undelivered work.
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            inbox = match loc.inbox.try_lock() {
                Some(g) => g,
                None => return progressed,
            };
        }
        progressed
    }

    fn set_delivery(&self, locality: u32, delivery: DeliveryFn) {
        *self.locs[locality as usize].delivery.lock() = Some(delivery);
    }

    fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst) + self.held.lock().len()
    }

    fn counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    fn collecting_transport(n: usize) -> (Arc<MpiTransport>, Arc<PMutex<Vec<(u32, usize)>>>) {
        let t = Arc::new(MpiTransport::new(n));
        let got: Arc<PMutex<Vec<(u32, usize)>>> = Arc::new(PMutex::new(Vec::new()));
        for i in 0..n as u32 {
            let got = Arc::clone(&got);
            t.set_delivery(
                i,
                Arc::new(move |p: Parcel| {
                    got.lock().push((i, p.payload.len()));
                }),
            );
        }
        (t, got)
    }

    fn drain(t: &MpiTransport, n: usize) {
        let mut spins = 0;
        while t.in_flight() > 0 {
            for i in 0..n as u32 {
                t.progress(i);
            }
            spins += 1;
            assert!(spins < 10_000, "fabric did not drain");
        }
    }

    fn parcel(to: u32, len: usize) -> Parcel {
        Parcel {
            dest_locality: to,
            dest_component: GlobalId(1),
            action: ActionId(1),
            payload: Bytes::from(vec![0xAB; len]),
        }
    }

    #[test]
    fn eager_path_two_copies() {
        let (t, got) = collecting_transport(2);
        t.send(0, parcel(1, 100));
        drain(&t, 2);
        assert_eq!(got.lock().as_slice(), &[(1, 100)]);
        assert_eq!(t.counters().get("parcels/payload_copies"), 2);
        assert_eq!(t.counters().get("mpi/eager_sends"), 1);
    }

    #[test]
    fn rendezvous_path_requires_handshake() {
        let (t, got) = collecting_transport(2);
        t.send(0, parcel(1, EAGER_THRESHOLD + 1));
        // One receiver-side progress is not enough: RTS must bounce back.
        t.progress(1);
        assert!(got.lock().is_empty(), "payload cannot arrive before CTS round trip");
        t.progress(0); // sender answers CTS with the data
        t.progress(1); // receiver gets the payload
        assert_eq!(got.lock().as_slice(), &[(1, EAGER_THRESHOLD + 1)]);
        assert_eq!(t.counters().get("mpi/rendezvous_sends"), 1);
        assert_eq!(t.counters().get("parcels/payload_copies"), 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn interleaved_traffic_drains() {
        let (t, got) = collecting_transport(4);
        for i in 0..100 {
            let to = (i % 4) as u32;
            let from = ((i + 1) % 4) as u32;
            let len = if i % 3 == 0 { EAGER_THRESHOLD * 2 } else { 64 };
            t.send(from, parcel(to, len));
        }
        drain(&t, 4);
        assert_eq!(got.lock().len(), 100);
        assert_eq!(t.counters().get("parcels/received"), 100);
    }

    #[test]
    #[should_panic(expected = "bad destination")]
    fn out_of_range_destination_panics() {
        let (t, _got) = collecting_transport(2);
        t.send(0, parcel(5, 10));
    }
}
