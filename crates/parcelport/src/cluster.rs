//! A simulated multi-locality cluster.
//!
//! The paper runs Octo-Tiger on up to 5400 Piz Daint nodes; here a
//! [`Cluster`] wires `L` in-process [`amt::Runtime`] localities together
//! through one of the two transports ([`crate::mpi_sim`],
//! [`crate::libfabric_sim`]). Each locality's scheduler gets a background
//! poller that drives network progress — for the libfabric backend this
//! is literally the paper's "polling for network progress/completions
//! integrated into the HPX task scheduling loop".
//!
//! On top of raw parcels, the cluster provides the request/response
//! pattern used everywhere in Octo-Tiger (a remote action whose result
//! fulfils a future on the caller), and transparent forwarding when a
//! component has migrated (§5.2: channels keep working "even when a grid
//! cell is migrated from one node to another").
//!
//! When a trace session is active (see [`amt::trace`]), every remote
//! send and every network delivery records a `parcel/send` / `parcel/recv`
//! span labelled with the transport kind and wire byte count.
//!
//! # Example
//!
//! ```
//! use parcelport::{ActionId, Cluster, TransportKind};
//!
//! let cluster = Cluster::builder()
//!     .localities(2)
//!     .threads_per(2)
//!     .transport(TransportKind::Libfabric)
//!     .build();
//! let square = cluster.register_request_handler(ActionId(7), |_rt, _id, x: u64| x * x);
//! let loc0 = cluster.locality(0);
//! let fut = loc0.call_action(square, 1, amt::GlobalId(0), &9).unwrap();
//! assert_eq!(fut.get_help(loc0.runtime().scheduler()).unwrap(), 81);
//! ```

use crate::fault::{FaultPlan, FaultyTransport};
use crate::netmodel::{NetParams, TransportKind};
use crate::parcel::{ActionHandle, ActionId, ActionRegistry, CallHandle, Parcel};
use crate::reliable::{ReliablePolicy, ReliableTransport};
use crate::serialize::{from_bytes, to_bytes};
use amt::trace::{self, TraceCategory};
use amt::{CounterRegistry, Future, GlobalId, Metrics, Promise, Runtime};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use util::{Error, Result};

/// Reserved action id carrying responses of remote calls.
pub const RESPONSE_ACTION: ActionId = ActionId(0);

/// A live transport connecting the localities of a cluster.
pub trait Transport: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> TransportKind;
    /// Inject a parcel from locality `from`. Never blocks.
    fn send(&self, from: u32, parcel: Parcel);
    /// Drive progress for `locality`: deliver pending messages addressed
    /// to it (and, for two-sided backends, answer handshakes). Returns
    /// `true` if any progress was made.
    fn progress(&self, locality: u32) -> bool;
    /// Install the delivery callback for `locality`.
    fn set_delivery(&self, locality: u32, delivery: DeliveryFn);
    /// Number of messages still in flight anywhere in the fabric.
    fn in_flight(&self) -> usize;
    /// The network-wide counter registry (parcels, bytes, copies, ...).
    fn counters(&self) -> &Arc<CounterRegistry>;
    /// Localities known to have failed (crashed, or declared dead by a
    /// reliability layer after its retry budget ran out). The raw
    /// simulated fabrics never fail anyone; decorators override this.
    fn failed_localities(&self) -> Vec<u32> {
        Vec::new()
    }
}

/// Callback invoked when a parcel arrives at a locality.
pub type DeliveryFn = Arc<dyn Fn(Parcel) + Send + Sync>;

struct CallEnvelope {
    request_id: u64,
    reply_to: u32,
    body: Vec<u8>,
}

serde::impl_codec_struct!(CallEnvelope { request_id, reply_to, body });

struct ResponseEnvelope {
    request_id: u64,
    body: Vec<u8>,
}

serde::impl_codec_struct!(ResponseEnvelope { request_id, body });

/// One simulated compute node: an AMT runtime plus its action registry
/// and pending remote calls.
pub struct Locality {
    rt: Arc<Runtime>,
    actions: ActionRegistry,
    index: u32,
    n_localities: usize,
    transport: Arc<dyn Transport>,
    pending_calls: Mutex<HashMap<u64, Promise<Bytes>>>,
    next_request: AtomicU64,
    /// Errors raised inside action handlers (decode failures, reply
    /// sends that bounced). Handlers run detached on scheduler threads,
    /// so there is no caller to return them to; they are parked here
    /// and counted under the transport's `handler_errors` counter.
    failures: Mutex<Vec<Error>>,
}

impl Locality {
    /// This locality's index in the cluster.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The hosted runtime.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// This locality's action registry.
    pub fn actions(&self) -> &ActionRegistry {
        &self.actions
    }

    /// Fire-and-forget: send `parcel` (local destinations dispatch
    /// without touching the network, as in HPX). Returns
    /// [`Error::BadLocality`] instead of letting an out-of-range
    /// destination panic inside the transport.
    pub fn try_send(&self, parcel: Parcel) -> Result<()> {
        if (parcel.dest_locality as usize) >= self.n_localities {
            return Err(Error::BadLocality {
                index: parcel.dest_locality,
                count: self.n_localities,
            });
        }
        if parcel.dest_locality == self.index {
            self.deliver(parcel);
        } else {
            let c = self.transport.counters();
            let wire = parcel.wire_size() as u64;
            let _span = trace::span_labeled(TraceCategory::ParcelSend, || {
                format!("{}:{}B", self.transport.kind().as_str(), wire)
            });
            c.increment("parcels/sent");
            c.add("parcels/bytes_sent", wire);
            // The namespaced aliases the metrics facade documents
            // (`parcelport/<kind>/parcels_tx`, `.../bytes_tx`).
            c.increment("parcels_tx");
            c.add("bytes_tx", wire);
            self.transport.send(self.index, parcel);
        }
        Ok(())
    }

    /// Typed fire-and-forget through an [`ActionHandle`]: encode `req`
    /// and send it to `action`'s handler on `dest_locality`.
    pub fn send_action<Req: Serialize>(
        &self,
        action: ActionHandle<Req>,
        dest_locality: u32,
        dest_component: GlobalId,
        req: &Req,
    ) -> Result<()> {
        self.send_encoded(action, dest_locality, dest_component, action.encode(req)?)
    }

    /// Like [`Locality::send_action`] with a pre-encoded payload.
    /// Broadcast-style senders encode once with [`ActionHandle::encode`]
    /// and fan the same (cheaply cloned) buffer out to every
    /// destination.
    pub fn send_encoded<Req>(
        &self,
        action: ActionHandle<Req>,
        dest_locality: u32,
        dest_component: GlobalId,
        payload: Bytes,
    ) -> Result<()> {
        self.try_send(Parcel {
            dest_locality,
            dest_component,
            action: action.id(),
            payload,
        })
    }

    /// Remote call: run `action` on `dest` with argument `req`; the
    /// returned future is fulfilled with the handler's response (or a
    /// [`Error::Codec`] if the reply fails to decode — a corrupt
    /// response resolves the future with `Err` instead of panicking a
    /// scheduler thread). The handler must have been registered with
    /// [`Cluster::register_request_handler`]. Serialization failures and
    /// bad destinations surface as `Err` before anything is enqueued.
    pub fn try_call<Req: Serialize, Resp: for<'de> Deserialize<'de> + Send + 'static>(
        &self,
        dest_locality: u32,
        dest_component: GlobalId,
        action: ActionId,
        req: &Req,
    ) -> Result<Future<Result<Resp>>> {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let envelope = CallEnvelope {
            request_id,
            reply_to: self.index,
            body: to_bytes(req)?.to_vec(),
        };
        let payload = to_bytes(&envelope)?;
        let (promise, raw) = Promise::new();
        self.pending_calls.lock().insert(request_id, promise);
        if let Err(e) = self.try_send(Parcel {
            dest_locality,
            dest_component,
            action,
            payload,
        }) {
            // Unwind the registration so the aborted call leaks nothing.
            self.pending_calls.lock().remove(&request_id);
            return Err(e);
        }
        Ok(raw.then(self.rt.scheduler(), |bytes: Bytes| {
            from_bytes(&bytes).map_err(Error::from)
        }))
    }

    /// Typed remote call through a [`CallHandle`]; response type
    /// inference comes from the handle, so no turbofish needed.
    pub fn call_action<Req, Resp>(
        &self,
        action: CallHandle<Req, Resp>,
        dest_locality: u32,
        dest_component: GlobalId,
        req: &Req,
    ) -> Result<Future<Result<Resp>>>
    where
        Req: Serialize,
        Resp: for<'de> Deserialize<'de> + Send + 'static,
    {
        self.try_call(dest_locality, dest_component, action.id(), req)
    }

    /// Park a handler-side error (see the `failures` field docs).
    pub fn record_failure(&self, e: Error) {
        self.transport.counters().increment("handler_errors");
        self.failures.lock().push(e);
    }

    /// Drain the errors recorded by action handlers on this locality.
    pub fn take_failures(&self) -> Vec<Error> {
        std::mem::take(&mut *self.failures.lock())
    }

    /// Deliver an inbound (or loopback) parcel: forward if the target
    /// component migrated away, otherwise dispatch the action as a task.
    fn deliver(&self, mut parcel: Parcel) {
        if let Some(target) = self.rt.agas().forwarding_target(parcel.dest_component) {
            self.transport.counters().increment("parcels/forwarded");
            parcel.dest_locality = target;
            if let Err(e) = self.try_send(parcel) {
                self.record_failure(e);
            }
            return;
        }
        self.actions.dispatch(&self.rt, parcel);
    }
}

/// The simulated cluster.
pub struct Cluster {
    localities: Vec<Arc<Locality>>,
    transport: Arc<dyn Transport>,
    net: NetParams,
    metrics: Arc<Metrics>,
    fault: Option<Arc<FaultyTransport>>,
    reliable: Option<Arc<ReliableTransport>>,
    fmm_chunk_cells: Option<usize>,
    fmm_agg_slots: Option<usize>,
    fmm_agg_window: Option<usize>,
}

/// Fluent construction of a [`Cluster`]:
///
/// ```
/// use parcelport::{Cluster, TransportKind};
///
/// let cluster = Cluster::builder()
///     .localities(4)
///     .threads_per(2)
///     .transport(TransportKind::Libfabric)
///     .build();
/// assert_eq!(cluster.len(), 4);
/// assert_eq!(cluster.transport().kind(), TransportKind::Libfabric);
/// ```
///
/// Defaults: 1 locality, 1 scheduler thread, MPI transport, the
/// transport's Piz-Daint-calibrated [`NetParams`] latency model.
pub struct ClusterBuilder {
    localities: usize,
    threads_per: usize,
    kind: TransportKind,
    transport: Option<Arc<dyn Transport>>,
    net: Option<NetParams>,
    fault_plan: Option<FaultPlan>,
    reliable: Option<ReliablePolicy>,
    fmm_chunk_cells: Option<usize>,
    fmm_agg_slots: Option<usize>,
    fmm_agg_window: Option<usize>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            localities: 1,
            threads_per: 1,
            kind: TransportKind::Mpi,
            transport: None,
            net: None,
            fault_plan: None,
            reliable: None,
            fmm_chunk_cells: None,
            fmm_agg_slots: None,
            fmm_agg_window: None,
        }
    }
}

impl ClusterBuilder {
    /// Number of simulated localities (compute nodes).
    pub fn localities(mut self, n: usize) -> Self {
        self.localities = n;
        self
    }

    /// Scheduler threads per locality.
    pub fn threads_per(mut self, n: usize) -> Self {
        self.threads_per = n;
        self
    }

    /// Which transport backend to instantiate.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.kind = kind;
        self
    }

    /// Use an explicit transport instance instead of instantiating one
    /// from the kind (e.g. a test double).
    pub fn transport_instance(mut self, transport: Arc<dyn Transport>) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Override the network cost model attached to the cluster (used by
    /// benches to convert measured byte counters into modeled time).
    pub fn latency_model(mut self, net: NetParams) -> Self {
        self.net = Some(net);
        self
    }

    /// Inject faults according to `plan` (see [`FaultPlan`]). A plan
    /// that can perturb parcels implicitly enables the reliable
    /// delivery layer with the default [`ReliablePolicy`] — without
    /// retransmission a single dropped parcel would hang quiescence
    /// forever.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Enable the reliable delivery layer ([`ReliableTransport`]) with
    /// an explicit policy, independent of fault injection. Benches use
    /// this to measure the fault-free overhead of the protocol.
    pub fn reliable(mut self, policy: ReliablePolicy) -> Self {
        self.reliable = Some(policy);
        self
    }

    /// Target cells per FMM same-level chunk task on every locality's
    /// solver. Unset = each driver's own default (the `FMM_CHUNK_CELLS`
    /// environment variable, then the built-in default).
    pub fn fmm_chunk_cells(mut self, n: usize) -> Self {
        self.fmm_chunk_cells = Some(n);
        self
    }

    /// Same-kind FMM work items per fused GPU batch on every
    /// locality's solver. Unset = each driver's own default (the
    /// `FMM_AGG_SLOTS` environment variable, then the built-in
    /// default).
    pub fn fmm_agg_slots(mut self, n: usize) -> Self {
        self.fmm_agg_slots = Some(n);
        self
    }

    /// Total buffered FMM work items before a forced flush on every
    /// locality's solver. Unset = each driver's own default (the
    /// `FMM_AGG_WINDOW` environment variable, then the built-in
    /// default).
    pub fn fmm_agg_window(mut self, n: usize) -> Self {
        self.fmm_agg_window = Some(n);
        self
    }

    /// Validate and build.
    pub fn try_build(self) -> Result<Cluster> {
        if self.localities == 0 {
            return Err(Error::Driver("cluster needs at least one locality".into()));
        }
        if self.threads_per == 0 {
            return Err(Error::Driver("each locality needs at least one scheduler thread".into()));
        }
        let raw: Arc<dyn Transport> = match self.transport {
            Some(t) => t,
            None => match self.kind {
                TransportKind::Mpi => {
                    Arc::new(crate::mpi_sim::MpiTransport::new(self.localities))
                }
                TransportKind::Libfabric => {
                    Arc::new(crate::libfabric_sim::LibfabricTransport::new(self.localities))
                }
            },
        };
        // Decorator stack (bottom up): raw fabric, then fault
        // injection, then reliable delivery. The default build keeps
        // the raw fabric bare — zero added overhead.
        let mut transport = raw;
        let fault = self.fault_plan.map(|plan| {
            let f = Arc::new(FaultyTransport::new(transport.clone(), plan, self.localities));
            transport = f.clone() as Arc<dyn Transport>;
            f
        });
        let reliable_policy = match (&fault, self.reliable) {
            (_, Some(p)) => Some(p),
            (Some(f), None) if f.plan().is_active() => Some(ReliablePolicy::default()),
            _ => None,
        };
        let reliable = reliable_policy.map(|policy| {
            let r = Arc::new(ReliableTransport::new(transport.clone(), policy));
            transport = r.clone() as Arc<dyn Transport>;
            r
        });
        let net = self.net.unwrap_or_else(|| NetParams::for_kind(transport.kind()));
        let mut localities = Vec::with_capacity(self.localities);
        for i in 0..self.localities {
            let rt = Runtime::with_locality(self.threads_per, i as u32);
            let loc = Arc::new(Locality {
                rt,
                actions: ActionRegistry::new(),
                index: i as u32,
                n_localities: self.localities,
                transport: Arc::clone(&transport),
                pending_calls: Mutex::new(HashMap::new()),
                next_request: AtomicU64::new(1),
                failures: Mutex::new(Vec::new()),
            });
            // Built-in handler resolving remote-call responses.
            let loc_for_resp = Arc::downgrade(&loc);
            loc.actions.register(RESPONSE_ACTION, move |_rt, _id, payload| {
                let Some(loc) = loc_for_resp.upgrade() else { return };
                let env: ResponseEnvelope = match from_bytes(&payload) {
                    Ok(env) => env,
                    Err(e) => {
                        loc.record_failure(e.into());
                        return;
                    }
                };
                let pending = loc.pending_calls.lock().remove(&env.request_id);
                if let Some(p) = pending {
                    p.set_value(Bytes::from(env.body));
                }
            });
            localities.push(loc);
        }
        // Wire delivery callbacks and progress pollers.
        for loc in &localities {
            let l = Arc::clone(loc);
            let kind = transport.kind();
            transport.set_delivery(
                loc.index,
                Arc::new(move |parcel| {
                    let _span = trace::span_labeled(TraceCategory::ParcelRecv, || {
                        format!("{}:{}B", kind.as_str(), parcel.wire_size())
                    });
                    l.deliver(parcel)
                }),
            );
            let t = Arc::clone(&transport);
            let idx = loc.index;
            loc.rt.scheduler().register_poller(move || t.progress(idx));
        }
        // One namespaced metrics view over the whole cluster: the
        // transport's counters under `parcelport/<kind>`, each
        // locality's runtime counters under `locality/<i>`.
        let metrics = Arc::new(Metrics::new());
        metrics.mount(
            &format!("parcelport/{}", transport.kind().as_str()),
            Arc::clone(transport.counters()),
        );
        // Decorator counters: reliability at `parcelport` (so
        // `parcelport/retries`, `parcelport/dup_dropped`,
        // `parcelport/acks` resolve by longest-prefix), fault events at
        // `parcelport/faults`.
        if let Some(r) = &reliable {
            metrics.mount("parcelport", Arc::clone(r.reliability_counters()));
        }
        if let Some(f) = &fault {
            metrics.mount("parcelport/faults", Arc::clone(f.fault_counters()));
        }
        for loc in &localities {
            metrics.mount(
                &format!("locality/{}", loc.index),
                Arc::clone(loc.rt.counters()),
            );
        }
        Ok(Cluster {
            localities,
            transport,
            net,
            metrics,
            fault,
            reliable,
            fmm_chunk_cells: self.fmm_chunk_cells,
            fmm_agg_slots: self.fmm_agg_slots,
            fmm_agg_window: self.fmm_agg_window,
        })
    }

    /// Infallible [`ClusterBuilder::try_build`]; panics on an invalid
    /// configuration.
    pub fn build(self) -> Cluster {
        self.try_build().expect("invalid cluster configuration")
    }
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// The cluster-wide namespaced metrics view.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The FMM chunk-size override this cluster was built with, if any.
    pub fn fmm_chunk_cells(&self) -> Option<usize> {
        self.fmm_chunk_cells
    }

    /// The FMM aggregation-slots override this cluster was built with,
    /// if any.
    pub fn fmm_agg_slots(&self) -> Option<usize> {
        self.fmm_agg_slots
    }

    /// The FMM aggregation-window override this cluster was built
    /// with, if any.
    pub fn fmm_agg_window(&self) -> Option<usize> {
        self.fmm_agg_window
    }

    /// The network cost model this cluster was built with.
    pub fn net_params(&self) -> NetParams {
        self.net
    }

    /// Number of localities.
    pub fn len(&self) -> usize {
        self.localities.len()
    }

    /// Whether the cluster has no localities (never true post-`new`).
    pub fn is_empty(&self) -> bool {
        self.localities.is_empty()
    }

    /// Access locality `i`.
    pub fn locality(&self, i: usize) -> &Arc<Locality> {
        &self.localities[i]
    }

    /// All localities.
    pub fn localities(&self) -> &[Arc<Locality>] {
        &self.localities
    }

    /// The transport (for counters and kind). This is the *outermost*
    /// layer of the decorator stack; its `counters()` always resolve to
    /// the raw fabric's registry.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The fault-injection layer, if the cluster was built with a
    /// [`ClusterBuilder::fault_plan`]. Tests use it to probe send
    /// counts and to trigger crashes at a chosen point.
    pub fn fault_layer(&self) -> Option<&Arc<FaultyTransport>> {
        self.fault.as_ref()
    }

    /// The reliable-delivery layer, if enabled (explicitly via
    /// [`ClusterBuilder::reliable`] or implied by a fault plan).
    pub fn reliable_layer(&self) -> Option<&Arc<ReliableTransport>> {
        self.reliable.as_ref()
    }

    /// Localities known to have failed — crashed by fault injection or
    /// declared dead by the reliability layer. Empty on a healthy
    /// cluster.
    pub fn failed_localities(&self) -> Vec<u32> {
        self.transport.failed_localities()
    }

    /// Register the same typed fire-and-forget action on every
    /// locality; the payload is decoded to `Req` before the handler
    /// runs. The returned [`ActionHandle`] is the key for send sites
    /// ([`Locality::send_action`] / [`Locality::send_encoded`]), tying
    /// the request type they encode to the one registered here. Decode
    /// failures are parked via [`Locality::record_failure`] instead of
    /// panicking a scheduler thread.
    pub fn register_action<Req>(
        &self,
        id: ActionId,
        handler: impl Fn(&Arc<Runtime>, GlobalId, Req) + Send + Sync + Clone + 'static,
    ) -> ActionHandle<Req>
    where
        Req: for<'de> Deserialize<'de>,
    {
        for loc in &self.localities {
            let handler = handler.clone();
            let loc_weak = Arc::downgrade(loc);
            loc.actions.register(id, move |rt, component, payload| {
                match from_bytes::<Req>(&payload) {
                    Ok(req) => handler(rt, component, req),
                    Err(e) => {
                        if let Some(loc) = loc_weak.upgrade() {
                            loc.record_failure(e.into());
                        }
                    }
                }
            });
        }
        ActionHandle::new(id)
    }

    /// Register a byte-level fire-and-forget action on every locality
    /// (no decoding; the handler sees the raw payload). For handlers
    /// that do their own framing; typed code should prefer
    /// [`Cluster::register_action`].
    pub fn register_raw_action(
        &self,
        id: ActionId,
        handler: impl Fn(&Arc<Runtime>, GlobalId, Bytes) + Send + Sync + Clone + 'static,
    ) {
        for loc in &self.localities {
            loc.actions.register(id, handler.clone());
        }
    }

    /// Register a request/response handler on every locality. The
    /// handler's return value is sent back and fulfils the caller's
    /// future. The returned [`CallHandle`] types
    /// [`Locality::call_action`] send sites. Envelope or argument
    /// decode failures and bounced replies are parked via
    /// [`Locality::record_failure`].
    pub fn register_request_handler<Req, Resp>(
        &self,
        id: ActionId,
        handler: impl Fn(&Arc<Runtime>, GlobalId, Req) -> Resp + Send + Sync + Clone + 'static,
    ) -> CallHandle<Req, Resp>
    where
        Req: for<'de> Deserialize<'de>,
        Resp: Serialize,
    {
        for loc in &self.localities {
            let handler = handler.clone();
            let loc_weak = Arc::downgrade(loc);
            loc.actions.register(id, move |rt, component, payload| {
                let Some(loc) = loc_weak.upgrade() else { return };
                let result = (|| -> Result<()> {
                    let env: CallEnvelope = from_bytes(&payload)?;
                    let req: Req = from_bytes(&Bytes::from(env.body))?;
                    let resp = handler(rt, component, req);
                    let renv = ResponseEnvelope {
                        request_id: env.request_id,
                        body: to_bytes(&resp)?.to_vec(),
                    };
                    loc.try_send(Parcel {
                        dest_locality: env.reply_to,
                        dest_component: GlobalId(0),
                        action: RESPONSE_ACTION,
                        payload: to_bytes(&renv)?,
                    })
                })();
                if let Err(e) = result {
                    loc.record_failure(e);
                }
            });
        }
        CallHandle::new(id)
    }

    /// Wait until every runtime is quiescent and the fabric is drained.
    pub fn wait_quiescent(&self) {
        let _ = self.quiesce(false);
    }

    /// Crash-aware [`Cluster::wait_quiescent`]: returns
    /// [`Error::LocalityCrashed`] as soon as a locality is reported
    /// failed, instead of waiting for a drain that may never come (the
    /// failed peer's unacked traffic only clears once the reliability
    /// layer buries it).
    pub fn try_wait_quiescent(&self) -> Result<()> {
        self.quiesce(true)
    }

    fn quiesce(&self, fail_fast: bool) -> Result<()> {
        loop {
            if fail_fast {
                if let Some(&loc) = self.transport.failed_localities().first() {
                    return Err(Error::LocalityCrashed(loc));
                }
            }
            for loc in &self.localities {
                loc.rt.wait_quiescent();
            }
            // Drive any remaining network progress from this thread too.
            let mut progressed = false;
            for loc in &self.localities {
                progressed |= self.transport.progress(loc.index);
            }
            let busy = self.transport.in_flight() > 0
                || self
                    .localities
                    .iter()
                    .any(|l| l.rt.scheduler().in_flight() > 0);
            if !busy && !progressed {
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn ping_cluster(kind: TransportKind) {
        let cluster = Cluster::builder().localities(3).threads_per(2).transport(kind).build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        cluster.register_raw_action(ActionId(1), move |_rt, _id, payload| {
            assert_eq!(&payload[..], b"ping");
            h.fetch_add(1, Ordering::SeqCst);
        });
        for dest in 0..3u32 {
            cluster
                .locality(0)
                .try_send(Parcel {
                    dest_locality: dest,
                    dest_component: GlobalId(1),
                    action: ActionId(1),
                    payload: Bytes::from_static(b"ping"),
                })
                .unwrap();
        }
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn ping_over_mpi() {
        ping_cluster(TransportKind::Mpi);
    }

    #[test]
    fn ping_over_libfabric() {
        ping_cluster(TransportKind::Libfabric);
    }

    fn call_cluster(kind: TransportKind) {
        let cluster = Cluster::builder().localities(2).threads_per(2).transport(kind).build();
        let square = cluster.register_request_handler(ActionId(5), |_rt, _id, x: u64| x * x);
        let loc0 = cluster.locality(0);
        let futs: Vec<Future<Result<u64>>> = (0..20)
            .map(|i| loc0.call_action(square, 1, GlobalId(0), &(i as u64)).unwrap())
            .collect();
        for (i, f) in futs.into_iter().enumerate() {
            let v = f.get_help(loc0.runtime().scheduler()).unwrap();
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn request_response_over_mpi() {
        call_cluster(TransportKind::Mpi);
    }

    #[test]
    fn request_response_over_libfabric() {
        call_cluster(TransportKind::Libfabric);
    }

    #[test]
    fn loopback_send_skips_network() {
        let cluster =
            Cluster::builder().localities(2).transport(TransportKind::Libfabric).build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        cluster.register_raw_action(ActionId(2), move |_rt, _id, _p| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        cluster
            .locality(1)
            .try_send(Parcel {
                dest_locality: 1,
                dest_component: GlobalId(9),
                action: ActionId(2),
                payload: Bytes::new(),
            })
            .unwrap();
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(cluster.transport().counters().get("parcels/sent"), 0);
    }

    fn migration_forwarding(kind: TransportKind) {
        let cluster = Cluster::builder().localities(3).threads_per(2).transport(kind).build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        cluster.register_raw_action(ActionId(3), move |rt, id, _p| {
            // The component must be resident wherever the parcel lands.
            assert!(rt.agas().is_local(id), "parcel landed where object is not resident");
            h.fetch_add(1, Ordering::SeqCst);
        });
        // Register a component on locality 1, then migrate it to 2.
        let agas1 = cluster.locality(1).runtime().agas();
        let id = agas1.register(Arc::new(1234u64));
        let obj = agas1.begin_migration(id, 2).unwrap();
        cluster
            .locality(2)
            .runtime()
            .agas()
            .adopt(id, obj.downcast::<u64>().unwrap());
        // Locality 0 still believes the object is on 1; the parcel must
        // be forwarded 1 -> 2.
        cluster
            .locality(0)
            .try_send(Parcel {
                dest_locality: 1,
                dest_component: id,
                action: ActionId(3),
                payload: Bytes::new(),
            })
            .unwrap();
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(cluster.transport().counters().get("parcels/forwarded"), 1);
    }

    #[test]
    fn migration_forwarding_over_mpi() {
        migration_forwarding(TransportKind::Mpi);
    }

    #[test]
    fn migration_forwarding_over_libfabric() {
        migration_forwarding(TransportKind::Libfabric);
    }

    #[test]
    fn many_parcels_all_delivered() {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let cluster =
                Cluster::builder().localities(4).threads_per(2).transport(kind).build();
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            cluster.register_raw_action(ActionId(4), move |_rt, _id, _p| {
                h.fetch_add(1, Ordering::SeqCst);
            });
            let n = 500;
            for i in 0..n {
                let from = i % 4;
                let to = (i + 1) % 4;
                cluster
                    .locality(from)
                    .try_send(Parcel {
                        dest_locality: to as u32,
                        dest_component: GlobalId(1),
                        action: ActionId(4),
                        payload: Bytes::from(vec![0u8; (i * 97) % 4096]),
                    })
                    .unwrap();
            }
            cluster.wait_quiescent();
            assert_eq!(hits.load(Ordering::SeqCst), n, "{kind}");
        }
    }

    #[test]
    fn zero_copy_vs_copies_counters() {
        // The structural difference the paper attributes the gains to:
        // MPI copies payloads, libfabric does not.
        let payload = Bytes::from(vec![7u8; 64 * 1024]);
        for (kind, expect_copies) in
            [(TransportKind::Mpi, true), (TransportKind::Libfabric, false)]
        {
            let cluster = Cluster::builder().localities(2).transport(kind).build();
            cluster.register_raw_action(ActionId(6), |_rt, _id, _p| {});
            cluster
                .locality(0)
                .try_send(Parcel {
                    dest_locality: 1,
                    dest_component: GlobalId(1),
                    action: ActionId(6),
                    payload: payload.clone(),
                })
                .unwrap();
            cluster.wait_quiescent();
            let copies = cluster.transport().counters().get("parcels/payload_copies");
            if expect_copies {
                assert!(copies > 0, "MPI backend must copy");
            } else {
                assert_eq!(copies, 0, "libfabric backend must be zero-copy");
            }
        }
    }

    #[test]
    fn builder_rejects_degenerate_configurations() {
        assert!(matches!(
            Cluster::builder().localities(0).try_build(),
            Err(Error::Driver(_))
        ));
        assert!(matches!(
            Cluster::builder().threads_per(0).try_build(),
            Err(Error::Driver(_))
        ));
    }

    #[test]
    fn builder_defaults_and_latency_model() {
        let cluster = Cluster::builder().build();
        assert_eq!(cluster.len(), 1);
        assert_eq!(cluster.transport().kind(), TransportKind::Mpi);
        assert_eq!(cluster.net_params(), NetParams::mpi_aries());
        let custom = NetParams::libfabric_aries();
        let cluster = Cluster::builder()
            .transport(TransportKind::Libfabric)
            .latency_model(custom)
            .build();
        assert_eq!(cluster.net_params(), custom);
    }

    #[test]
    fn try_send_reports_bad_destination() {
        let cluster = Cluster::builder().localities(2).build();
        let err = cluster
            .locality(0)
            .try_send(Parcel {
                dest_locality: 7,
                dest_component: GlobalId(1),
                action: ActionId(1),
                payload: Bytes::new(),
            })
            .unwrap_err();
        assert_eq!(err, Error::BadLocality { index: 7, count: 2 });
        let err = cluster
            .locality(0)
            .try_call::<u64, u64>(9, GlobalId(0), ActionId(5), &1)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, Error::BadLocality { index: 9, count: 2 });
    }

    #[test]
    fn cluster_metrics_namespace_transport_and_localities() {
        let cluster = Cluster::builder()
            .localities(2)
            .transport(TransportKind::Libfabric)
            .build();
        cluster.register_raw_action(ActionId(8), |_rt, _id, _p| {});
        cluster
            .locality(0)
            .try_send(Parcel {
                dest_locality: 1,
                dest_component: GlobalId(1),
                action: ActionId(8),
                payload: Bytes::from(vec![0u8; 256]),
            })
            .unwrap();
        cluster.wait_quiescent();
        let m = cluster.metrics();
        assert_eq!(m.get("parcelport/libfabric/parcels_tx"), 1);
        assert!(m.get("parcelport/libfabric/bytes_tx") >= 256);
        let snap = m.snapshot();
        assert!(snap.contains_key("parcelport/libfabric/parcels/sent"));
        assert!(
            snap.keys().any(|k| k.starts_with("locality/0/")),
            "scheduler counters must appear under locality/<i>"
        );
    }

    #[test]
    fn typed_action_handle_roundtrip() {
        let cluster = Cluster::builder().localities(2).threads_per(2).build();
        let sum = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&sum);
        let add = cluster.register_action(ActionId(10), move |_rt, _id, x: u64| {
            s.fetch_add(x as usize, Ordering::SeqCst);
        });
        let loc0 = cluster.locality(0);
        loc0.send_action(add, 1, GlobalId(0), &5u64).unwrap();
        // Encode once, fan out the shared buffer.
        let payload = add.encode(&7u64).unwrap();
        loc0.send_encoded(add, 0, GlobalId(0), payload.clone()).unwrap();
        loc0.send_encoded(add, 1, GlobalId(0), payload).unwrap();
        cluster.wait_quiescent();
        assert_eq!(sum.load(Ordering::SeqCst), 5 + 7 + 7);
    }

    #[test]
    fn handler_decode_failure_is_recorded_not_panicked() {
        let cluster = Cluster::builder().localities(2).threads_per(2).build();
        let _h = cluster.register_action(ActionId(11), |_rt, _id, _x: u64| {
            panic!("handler must not run on a corrupt payload");
        });
        // A 3-byte payload cannot decode as u64.
        cluster
            .locality(0)
            .try_send(Parcel {
                dest_locality: 1,
                dest_component: GlobalId(0),
                action: ActionId(11),
                payload: Bytes::from_static(&[1, 2, 3]),
            })
            .unwrap();
        cluster.wait_quiescent();
        let failures = cluster.locality(1).take_failures();
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0], Error::Codec(_)));
        assert_eq!(cluster.transport().counters().get("handler_errors"), 1);
        // Drained: a second take sees nothing.
        assert!(cluster.locality(1).take_failures().is_empty());
    }

    fn lossy_cluster_delivers_effectively_once(kind: TransportKind) {
        use crate::fault::FaultPlan;
        let plan = FaultPlan::seeded(0xBEEF)
            .drop(0.10)
            .duplicate(0.10)
            .delay(0.10, 24)
            .reorder(0.10);
        let cluster = Cluster::builder()
            .localities(3)
            .threads_per(2)
            .transport(kind)
            .fault_plan(plan)
            .reliable(crate::reliable::ReliablePolicy {
                initial_backoff_ticks: 64,
                max_backoff_ticks: 1024,
                max_retries: 64,
            })
            .build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let bump = cluster.register_action(ActionId(12), move |_rt, _id, _x: u64| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        let n = 300;
        for i in 0..n {
            let from = (i % 3) as usize;
            let to = ((i + 1) % 3) as u32;
            cluster
                .locality(from)
                .send_action(bump, to, GlobalId(0), &(i as u64))
                .unwrap();
        }
        cluster.wait_quiescent();
        // Despite drops, duplicates, delays and reordering every action
        // ran exactly once.
        assert_eq!(hits.load(Ordering::SeqCst), n, "{kind}");
        let m = cluster.metrics();
        let faults = &cluster.fault_layer().unwrap();
        let injected = faults.fault_counters().get("dropped")
            + faults.fault_counters().get("duplicated");
        assert!(injected > 0, "plan must actually have perturbed something");
        if faults.fault_counters().get("dropped") > 0 {
            assert!(m.get("parcelport/retries") > 0, "drops must cause retries");
        }
        assert!(m.get("parcelport/acks") > 0);
        assert_eq!(cluster.failed_localities(), Vec::<u32>::new());
    }

    #[test]
    fn lossy_mpi_delivers_effectively_once() {
        lossy_cluster_delivers_effectively_once(TransportKind::Mpi);
    }

    #[test]
    fn lossy_libfabric_delivers_effectively_once() {
        lossy_cluster_delivers_effectively_once(TransportKind::Libfabric);
    }

    #[test]
    fn duplicates_are_suppressed_and_counted() {
        use crate::fault::FaultPlan;
        // Only duplication: no retransmits needed, every dup must be
        // filtered by the sequence-number watermark.
        let cluster = Cluster::builder()
            .localities(2)
            .threads_per(2)
            .fault_plan(FaultPlan::seeded(7).duplicate(1.0))
            .build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let bump = cluster.register_action(ActionId(13), move |_rt, _id, _x: u8| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..50u8 {
            cluster.locality(0).send_action(bump, 1, GlobalId(0), &i).unwrap();
        }
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 50);
        assert!(cluster.metrics().get("parcelport/dup_dropped") >= 50);
    }

    fn crash_is_detected(kind: TransportKind) {
        use crate::fault::FaultPlan;
        let cluster = Cluster::builder()
            .localities(2)
            .threads_per(2)
            .transport(kind)
            .fault_plan(FaultPlan::seeded(3).crash(1, 5))
            .reliable(crate::reliable::ReliablePolicy {
                initial_backoff_ticks: 16,
                max_backoff_ticks: 64,
                max_retries: 4,
            })
            .build();
        let bump = cluster.register_action(ActionId(14), |_rt, _id, _x: u64| {});
        // Locality 1 crashes after its 5th outbound parcel (that
        // includes the acks it sends for these); keep sending until the
        // fault layer reports it dead.
        for i in 0..50u64 {
            cluster.locality(0).send_action(bump, 1, GlobalId(0), &i).unwrap();
            if !cluster.failed_localities().is_empty() {
                break;
            }
            cluster.wait_quiescent();
        }
        cluster.wait_quiescent();
        assert_eq!(cluster.failed_localities(), vec![1], "{kind}");
        let err = cluster.try_wait_quiescent().unwrap_err();
        assert_eq!(err, Error::LocalityCrashed(1));
        // The healthy part of the cluster still drains: wait_quiescent
        // terminated above rather than hanging on the dead peer.
    }

    #[test]
    fn crash_is_detected_over_mpi() {
        crash_is_detected(TransportKind::Mpi);
    }

    #[test]
    fn crash_is_detected_over_libfabric() {
        crash_is_detected(TransportKind::Libfabric);
    }

    #[test]
    fn stalled_locality_recovers() {
        use crate::fault::FaultPlan;
        let cluster = Cluster::builder()
            .localities(2)
            .threads_per(2)
            .fault_plan(FaultPlan::seeded(9).stall(1, 3, 200))
            .build();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let bump = cluster.register_action(ActionId(15), move |_rt, _id, _x: u64| {
            h.fetch_add(1, Ordering::SeqCst);
        });
        for i in 0..20u64 {
            cluster.locality(0).send_action(bump, 1, GlobalId(0), &i).unwrap();
            cluster.locality(1).send_action(bump, 0, GlobalId(0), &i).unwrap();
        }
        cluster.wait_quiescent();
        assert_eq!(hits.load(Ordering::SeqCst), 40);
        assert!(cluster.fault_layer().unwrap().fault_counters().get("stalls") >= 1);
        assert!(cluster.failed_localities().is_empty());
    }

    #[test]
    fn reliable_layer_without_faults_is_transparent() {
        let cluster = Cluster::builder()
            .localities(2)
            .threads_per(2)
            .reliable(crate::reliable::ReliablePolicy::default())
            .build();
        let square = cluster.register_request_handler(ActionId(16), |_rt, _id, x: u64| x * x);
        let loc0 = cluster.locality(0);
        let f = loc0.call_action(square, 1, GlobalId(0), &12u64).unwrap();
        assert_eq!(f.get_help(loc0.runtime().scheduler()).unwrap(), 144);
        cluster.wait_quiescent();
        let m = cluster.metrics();
        assert_eq!(m.get("parcelport/retries"), 0);
        assert!(m.get("parcelport/acks") > 0);
        assert!(cluster.reliable_layer().is_some());
        assert!(cluster.fault_layer().is_none());
    }
}
