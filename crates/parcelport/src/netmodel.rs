//! Quantitative cost models for the two parcelports.
//!
//! §6.3 attributes the libfabric gains to: explicit RMA for halo buffers,
//! lower latency on all parcels, direct control of memory copies, reduced
//! overhead between a completion event and setting the ready future, and
//! a lock-free interface between scheduling loop and network API. The
//! MPI backend by contrast pays tag matching, extra copies, and an
//! internally locked progress engine.
//!
//! [`NetParams`] encodes those differences as numbers. The absolute
//! values are calibrated for a Cray Aries-class interconnect (Piz Daint,
//! Table 3) such that the *shape* of Figures 2 and 3 is reproduced; the
//! paper does not publish raw latencies, so these are engineering
//! estimates documented here:
//!
//! * Aries one-sided RMA latency ≈ 1.3 µs; MPI pt2pt ≈ 2.5 µs.
//! * Per-message CPU overhead: matching + copies for MPI, none beyond
//!   descriptor handling for libfabric.
//! * Progress serialization: MPI progress is effectively serialized by an
//!   internal lock, so concurrent injection by the 12 worker threads of a
//!   Piz Daint node contends; libfabric completion polling is lock-free.
//! * Polling tax: libfabric polls from the scheduler loop; when all cores
//!   are busy with compute (low node counts) this steals a small slice of
//!   CPU, which is why Fig. 3 dips slightly below 1.0 there.
//!
//! # Example
//!
//! ```
//! use parcelport::netmodel::{NetParams, TransportKind};
//!
//! let mpi = NetParams::mpi_aries();
//! let lf = NetParams::libfabric_aries();
//! // One-sided RMA moves a 64 KiB halo faster than two-sided MPI...
//! assert!(lf.transfer_time_us(64 * 1024) < mpi.transfer_time_us(64 * 1024));
//! // ...and stays nearly contention-free with 12 workers injecting.
//! assert!(lf.recv_cpu_us(12) < mpi.recv_cpu_us(12));
//! assert_eq!(NetParams::for_kind(TransportKind::Libfabric).payload_copies, 0);
//! ```

/// Which backend a parameter set (or live transport) models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// Two-sided MPI (Isend/Irecv) parcelport.
    Mpi,
    /// One-sided RMA libfabric parcelport.
    Libfabric,
}

impl TransportKind {
    /// Stable lowercase name used in metric namespaces
    /// (`parcelport/<name>/...`) and benchmark JSON keys.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportKind::Mpi => "mpi",
            TransportKind::Libfabric => "libfabric",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportKind::Mpi => write!(f, "MPI"),
            TransportKind::Libfabric => write!(f, "libfabric"),
        }
    }
}

serde::impl_codec_enum_unit!(TransportKind { Mpi, Libfabric });

/// Cost model for one transport on one machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetParams {
    pub kind: TransportKind,
    /// One-way small-message latency, microseconds.
    pub latency_us: f64,
    /// Sustained point-to-point bandwidth, GB/s.
    pub bandwidth_gb_s: f64,
    /// CPU time consumed on the *receiving* side per message (matching,
    /// unpacking, future set-up), microseconds.
    pub per_msg_recv_cpu_us: f64,
    /// CPU time consumed on the *sending* side per message (packing,
    /// injection), microseconds.
    pub per_msg_send_cpu_us: f64,
    /// Number of extra payload copies on the path (0 = zero-copy RMA).
    pub payload_copies: u32,
    /// Memory copy bandwidth for those extra copies, GB/s.
    pub copy_bandwidth_gb_s: f64,
    /// Eager/rendezvous threshold in bytes; messages above it pay an
    /// extra round-trip handshake (two-sided) or an RMA-get descriptor
    /// exchange (one-sided, cheaper).
    pub rendezvous_threshold: usize,
    /// Extra one-way latencies incurred by the rendezvous handshake.
    pub rendezvous_trips: u32,
    /// Fraction of a core permanently spent on progress/polling while
    /// compute dominates (the libfabric polling tax at small scale).
    pub polling_tax: f64,
    /// Degree to which concurrent senders serialize in the progress
    /// engine: effective per-message CPU cost is multiplied by
    /// `1 + progress_contention * (threads - 1)` when all `threads`
    /// workers communicate at once.
    pub progress_contention: f64,
}

serde::impl_codec_struct!(NetParams {
    kind,
    latency_us,
    bandwidth_gb_s,
    per_msg_recv_cpu_us,
    per_msg_send_cpu_us,
    payload_copies,
    copy_bandwidth_gb_s,
    rendezvous_threshold,
    rendezvous_trips,
    polling_tax,
    progress_contention,
});

impl NetParams {
    /// The two-sided Cray-MPICH model for Piz Daint's Aries network.
    pub fn mpi_aries() -> NetParams {
        NetParams {
            kind: TransportKind::Mpi,
            latency_us: 2.5,
            bandwidth_gb_s: 9.0,
            per_msg_recv_cpu_us: 1.9,
            per_msg_send_cpu_us: 1.1,
            payload_copies: 2,
            copy_bandwidth_gb_s: 6.0,
            rendezvous_threshold: 16 * 1024,
            rendezvous_trips: 2,
            polling_tax: 0.0,
            progress_contention: 0.18,
        }
    }

    /// The one-sided libfabric/GNI model for the same network.
    pub fn libfabric_aries() -> NetParams {
        NetParams {
            kind: TransportKind::Libfabric,
            latency_us: 1.3,
            bandwidth_gb_s: 10.0,
            per_msg_recv_cpu_us: 0.45,
            per_msg_send_cpu_us: 0.35,
            payload_copies: 0,
            copy_bandwidth_gb_s: 6.0,
            rendezvous_threshold: 16 * 1024,
            rendezvous_trips: 1,
            polling_tax: 0.02,
            progress_contention: 0.02,
        }
    }

    /// Pick a model by kind.
    pub fn for_kind(kind: TransportKind) -> NetParams {
        match kind {
            TransportKind::Mpi => Self::mpi_aries(),
            TransportKind::Libfabric => Self::libfabric_aries(),
        }
    }

    /// Wire + copy time for a message of `bytes` payload, in microseconds
    /// (excludes per-message CPU overhead, which is charged to cores).
    pub fn transfer_time_us(&self, bytes: usize) -> f64 {
        let mut t = self.latency_us + bytes as f64 / (self.bandwidth_gb_s * 1e3);
        if bytes > self.rendezvous_threshold {
            t += self.rendezvous_trips as f64 * self.latency_us;
        }
        t += self.payload_copies as f64 * bytes as f64 / (self.copy_bandwidth_gb_s * 1e3);
        t
    }

    /// Per-message CPU cost on the receive side when `threads` workers
    /// are injecting/polling concurrently, in microseconds.
    pub fn recv_cpu_us(&self, threads: usize) -> f64 {
        self.per_msg_recv_cpu_us * (1.0 + self.progress_contention * (threads.saturating_sub(1)) as f64)
    }

    /// Per-message CPU cost on the send side under the same contention.
    pub fn send_cpu_us(&self, threads: usize) -> f64 {
        self.per_msg_send_cpu_us * (1.0 + self.progress_contention * (threads.saturating_sub(1)) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libfabric_beats_mpi_on_everything_but_polling_tax() {
        let m = NetParams::mpi_aries();
        let l = NetParams::libfabric_aries();
        assert!(l.latency_us < m.latency_us);
        assert!(l.per_msg_recv_cpu_us < m.per_msg_recv_cpu_us);
        assert!(l.payload_copies < m.payload_copies);
        assert!(l.progress_contention < m.progress_contention);
        // ... except the polling tax, which models the Fig. 3 dip < 1.0.
        assert!(l.polling_tax > m.polling_tax);
    }

    #[test]
    fn transfer_time_monotone_in_size() {
        for p in [NetParams::mpi_aries(), NetParams::libfabric_aries()] {
            let mut last = 0.0;
            for bytes in [0usize, 64, 4096, 16 * 1024, 64 * 1024, 1 << 20] {
                let t = p.transfer_time_us(bytes);
                assert!(t >= last, "{:?} at {} bytes", p.kind, bytes);
                last = t;
            }
        }
    }

    #[test]
    fn rendezvous_adds_trips() {
        let p = NetParams::mpi_aries();
        let below = p.transfer_time_us(p.rendezvous_threshold);
        let above = p.transfer_time_us(p.rendezvous_threshold + 1);
        assert!(above - below > p.rendezvous_trips as f64 * p.latency_us * 0.99);
    }

    #[test]
    fn contention_scales_with_threads() {
        let p = NetParams::mpi_aries();
        assert!(p.recv_cpu_us(12) > p.recv_cpu_us(1));
        assert_eq!(p.recv_cpu_us(1), p.per_msg_recv_cpu_us);
        // libfabric is nearly contention-free.
        let l = NetParams::libfabric_aries();
        assert!(l.recv_cpu_us(12) / l.recv_cpu_us(1) < p.recv_cpu_us(12) / p.recv_cpu_us(1));
    }

    #[test]
    fn for_kind_dispatch() {
        assert_eq!(NetParams::for_kind(TransportKind::Mpi).kind, TransportKind::Mpi);
        assert_eq!(
            NetParams::for_kind(TransportKind::Libfabric).kind,
            TransportKind::Libfabric
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(TransportKind::Mpi.to_string(), "MPI");
        assert_eq!(TransportKind::Libfabric.to_string(), "libfabric");
    }
}
