//! Collectives over the cluster: broadcast and all-reduce.
//!
//! Octo-Tiger's timestep needs a global reduction every step (the CFL
//! dt is the minimum over all localities) and scenario setup broadcasts
//! configuration. HPX builds these from plain actions and futures; we
//! do the same: a reduction gathers per-locality contributions at a
//! root via request/response parcels and rebroadcasts the result.
//!
//! All collectives are crash-aware: on a cluster with fault injection,
//! a participant that dies mid-collective surfaces as
//! [`util::Error::LocalityCrashed`] instead of a hang, so the driver
//! can fall back to its latest checkpoint.

use crate::cluster::Cluster;
use crate::parcel::{ActionHandle, ActionId, CallHandle};
use crate::serialize::from_bytes;
use amt::Future;
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{de::DeserializeOwned, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use util::{Error, Result};

/// A registry of reduction state hosted on locality 0.
pub struct Collectives {
    /// Pending contributions per reduction id.
    pending: Arc<Mutex<HashMap<u64, Vec<f64>>>>,
    /// Typed handle of the reduce request handler.
    reduce: CallHandle<(u64, f64), (bool, f64)>,
}

/// Action ids reserved for collectives (registered by
/// [`Collectives::register`]).
pub const REDUCE_ACTION: ActionId = ActionId(0xC01);

impl Collectives {
    /// Install the collective handlers on the cluster. Call once before
    /// using [`allreduce_wire`] / [`allreduce_host`].
    pub fn register(cluster: &Cluster) -> Arc<Collectives> {
        let pending: Arc<Mutex<HashMap<u64, Vec<f64>>>> = Arc::new(Mutex::new(HashMap::new()));
        let p = Arc::clone(&pending);
        let n = cluster.len();
        let reduce = cluster.register_request_handler(
            REDUCE_ACTION,
            move |_rt, _id, (reduction_id, value): (u64, f64)| -> (bool, f64) {
                let mut p = p.lock();
                let entry = p.entry(reduction_id).or_default();
                entry.push(value);
                if entry.len() == n {
                    // All contributions in: the caller that completes the
                    // set gets `done = true` plus the gathered values'
                    // slot; others poll.
                    (true, 0.0)
                } else {
                    (false, 0.0)
                }
            },
        );
        Arc::new(Collectives { pending, reduce })
    }

    /// Gathered values for `reduction_id` once complete (root-side).
    fn take(&self, reduction_id: u64, expect: usize) -> Option<Vec<f64>> {
        let mut p = self.pending.lock();
        if p.get(&reduction_id).map(|v| v.len()) == Some(expect) {
            p.remove(&reduction_id)
        } else {
            None
        }
    }
}

/// All-reduce a per-locality `f64` with `op` (associative/commutative),
/// driving the cluster until every locality's contribution arrived at
/// locality 0. Returns the reduced value. This is a host-driven test
/// harness variant (contributions supplied directly); the wire variant
/// below exercises the parcel path.
pub fn allreduce_host(values: &[f64], op: impl Fn(f64, f64) -> f64) -> f64 {
    values
        .iter()
        .copied()
        .reduce(|a, b| op(a, b))
        .expect("at least one locality")
}

/// Drive `future` to completion from the calling thread, aborting with
/// [`Error::LocalityCrashed`] if a locality fails while we wait (its
/// contribution would never come and the future would never resolve).
fn get_crash_aware<T: Send + 'static>(cluster: &Cluster, future: Future<T>) -> Result<T> {
    let sched = Arc::clone(cluster.locality(0).runtime().scheduler());
    sched.help_until(|| future.is_ready() || !cluster.failed_localities().is_empty());
    match future.try_take() {
        Some(v) => Ok(v),
        None => {
            let loc = cluster.failed_localities().first().copied().unwrap_or(0);
            Err(Error::LocalityCrashed(loc))
        }
    }
}

/// All-reduce over the wire: every locality sends its value to locality
/// 0 via [`REDUCE_ACTION`]; the caller then reduces the gathered vector.
pub fn allreduce_wire(
    cluster: &Cluster,
    collectives: &Arc<Collectives>,
    reduction_id: u64,
    values: &[f64],
    op: impl Fn(f64, f64) -> f64,
) -> Result<f64> {
    if values.len() != cluster.len() {
        return Err(Error::Driver(format!(
            "allreduce needs one value per locality: got {} for {}",
            values.len(),
            cluster.len()
        )));
    }
    // Each locality calls the root with its contribution.
    let futures: Vec<Future<Result<(bool, f64)>>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            cluster.locality(i).call_action(
                collectives.reduce,
                0,
                amt::GlobalId(0),
                &(reduction_id, v),
            )
        })
        .collect::<Result<_>>()?;
    for f in futures {
        get_crash_aware(cluster, f)??;
    }
    cluster.try_wait_quiescent()?;
    let gathered = collectives
        .take(reduction_id, cluster.len())
        .ok_or_else(|| Error::Driver(format!("reduction {reduction_id} incomplete")))?;
    Ok(allreduce_host(&gathered, op))
}

/// A quiescence barrier built from the reduction machinery: every
/// locality contributes `1.0` to a sum-reduce, so returning `Ok`
/// implies every locality reached the barrier *and* the fabric drained
/// (the reduce path ends in [`Cluster::try_wait_quiescent`]).
/// `barrier_id` must be fresh per use, like a `reduction_id`.
pub fn barrier(cluster: &Cluster, collectives: &Arc<Collectives>, barrier_id: u64) -> Result<()> {
    let ones = vec![1.0; cluster.len()];
    let total = allreduce_wire(cluster, collectives, barrier_id, &ones, |a, b| a + b)?;
    if total != cluster.len() as f64 {
        return Err(Error::Driver("barrier lost a contribution".into()));
    }
    Ok(())
}

/// Broadcast helper: serialize `value` once through the typed handle
/// and deliver the shared buffer to every locality.
pub fn broadcast<T: Serialize>(
    cluster: &Cluster,
    action: ActionHandle<T>,
    value: &T,
) -> Result<()> {
    let payload: Bytes = action.encode(value)?;
    for i in 0..cluster.len() {
        cluster
            .locality(0)
            .send_encoded(action, i as u32, amt::GlobalId(0), payload.clone())?;
    }
    cluster.try_wait_quiescent()
}

/// Decode a broadcast payload (receiver-side convenience for raw
/// byte-level handlers; typed handlers registered through
/// `Cluster::register_action` never need this).
pub fn decode_broadcast<T: DeserializeOwned>(payload: &Bytes) -> Result<T> {
    Ok(from_bytes(payload)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::netmodel::TransportKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn host_reduce_ops() {
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], f64::min), 1.0);
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], f64::max), 3.0);
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], |a, b| a + b), 6.0);
    }

    #[test]
    fn wire_allreduce_min_over_both_transports() {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let cluster =
                Cluster::builder().localities(4).threads_per(2).transport(kind).build();
            let coll = Collectives::register(&cluster);
            // The distributed CFL pattern: min over per-locality dts.
            let dts = [0.31, 0.12, 0.44, 0.27];
            let dt = allreduce_wire(&cluster, &coll, 1, &dts, f64::min).unwrap();
            assert_eq!(dt, 0.12, "{kind}");
            // A second, independent reduction reuses the machinery.
            let total = allreduce_wire(&cluster, &coll, 2, &dts, |a, b| a + b).unwrap();
            assert!((total - 1.14).abs() < 1e-12);
        }
    }

    #[test]
    fn wire_allreduce_rejects_bad_arity() {
        let cluster = Cluster::builder().localities(2).build();
        let coll = Collectives::register(&cluster);
        assert!(matches!(
            allreduce_wire(&cluster, &coll, 1, &[1.0], f64::min),
            Err(Error::Driver(_))
        ));
    }

    #[test]
    fn barrier_completes_on_both_transports() {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let cluster =
                Cluster::builder().localities(3).threads_per(2).transport(kind).build();
            let coll = Collectives::register(&cluster);
            for id in 1..=3 {
                barrier(&cluster, &coll, id).unwrap();
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_locality() {
        let cluster =
            Cluster::builder().localities(3).transport(TransportKind::Libfabric).build();
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        let h = cluster.register_action(ActionId(0xB0), move |_rt, _id, v: Vec<f64>| {
            assert_eq!(v, vec![1.5, 2.5]);
            s.fetch_add(1, Ordering::SeqCst);
        });
        broadcast(&cluster, h, &vec![1.5, 2.5]).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn allreduce_survives_a_lossy_fabric() {
        let cluster = Cluster::builder()
            .localities(3)
            .threads_per(2)
            .fault_plan(FaultPlan::seeded(11).drop(0.05).duplicate(0.05))
            .build();
        let coll = Collectives::register(&cluster);
        let dts = [0.9, 0.4, 0.7];
        for id in 1..=5 {
            let dt = allreduce_wire(&cluster, &coll, id, &dts, f64::min).unwrap();
            assert_eq!(dt, 0.4);
        }
    }

    #[test]
    fn allreduce_reports_crashed_participant() {
        let cluster = Cluster::builder()
            .localities(2)
            .threads_per(2)
            .fault_plan(FaultPlan::seeded(5).crash(1, 1))
            .reliable(crate::reliable::ReliablePolicy {
                initial_backoff_ticks: 16,
                max_backoff_ticks: 64,
                max_retries: 3,
            })
            .build();
        let coll = Collectives::register(&cluster);
        // Locality 1 dies after its first outbound parcel; sooner or
        // later a reduction must observe the crash.
        let mut saw_crash = false;
        for id in 1..=10 {
            match allreduce_wire(&cluster, &coll, id, &[1.0, 2.0], f64::min) {
                Err(Error::LocalityCrashed(1)) => {
                    saw_crash = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
                Ok(_) => {}
            }
        }
        assert!(saw_crash, "the crash of locality 1 must surface");
    }
}
