//! Collectives over the cluster: broadcast and all-reduce.
//!
//! Octo-Tiger's timestep needs a global reduction every step (the CFL
//! dt is the minimum over all localities) and scenario setup broadcasts
//! configuration. HPX builds these from plain actions and futures; we
//! do the same: a reduction gathers per-locality contributions at a
//! root via request/response parcels and rebroadcasts the result.

use crate::cluster::Cluster;
use crate::parcel::ActionId;
use crate::serialize::{from_bytes, to_bytes};
use amt::Future;
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{de::DeserializeOwned, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// A registry of reduction state hosted on locality 0.
pub struct Collectives {
    /// Pending contributions per reduction id.
    pending: Arc<Mutex<HashMap<u64, Vec<f64>>>>,
}

/// Action ids reserved for collectives (registered by
/// [`Collectives::register`]).
pub const REDUCE_ACTION: ActionId = ActionId(0xC01);

impl Collectives {
    /// Install the collective handlers on the cluster. Call once before
    /// using [`allreduce_wire`] / [`allreduce_host`].
    pub fn register(cluster: &Cluster) -> Arc<Collectives> {
        let me = Arc::new(Collectives { pending: Arc::new(Mutex::new(HashMap::new())) });
        let pending = Arc::clone(&me.pending);
        let n = cluster.len();
        cluster.register_request_handler(
            REDUCE_ACTION,
            move |_rt, _id, (reduction_id, value): (u64, f64)| -> (bool, f64) {
                let mut p = pending.lock();
                let entry = p.entry(reduction_id).or_default();
                entry.push(value);
                if entry.len() == n {
                    // All contributions in: the caller that completes the
                    // set gets `done = true` plus the gathered values'
                    // slot; others poll.
                    (true, 0.0)
                } else {
                    (false, 0.0)
                }
            },
        );
        me
    }

    /// Gathered values for `reduction_id` once complete (root-side).
    fn take(&self, reduction_id: u64, expect: usize) -> Option<Vec<f64>> {
        let mut p = self.pending.lock();
        if p.get(&reduction_id).map(|v| v.len()) == Some(expect) {
            p.remove(&reduction_id)
        } else {
            None
        }
    }
}

/// All-reduce a per-locality `f64` with `op` (associative/commutative),
/// driving the cluster until every locality's contribution arrived at
/// locality 0. Returns the reduced value. This is a host-driven test
/// harness variant (contributions supplied directly); the wire variant
/// below exercises the parcel path.
pub fn allreduce_host(values: &[f64], op: impl Fn(f64, f64) -> f64) -> f64 {
    values
        .iter()
        .copied()
        .reduce(|a, b| op(a, b))
        .expect("at least one locality")
}

/// All-reduce over the wire: every locality sends its value to locality
/// 0 via [`REDUCE_ACTION`]; the caller then reduces the gathered vector.
pub fn allreduce_wire(
    cluster: &Cluster,
    collectives: &Arc<Collectives>,
    reduction_id: u64,
    values: &[f64],
    op: impl Fn(f64, f64) -> f64,
) -> f64 {
    assert_eq!(values.len(), cluster.len(), "one value per locality");
    // Each locality calls the root with its contribution.
    let futures: Vec<Future<(bool, f64)>> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            cluster.locality(i).call(
                0,
                amt::GlobalId(0),
                REDUCE_ACTION,
                &(reduction_id, v),
            )
        })
        .collect();
    for f in futures {
        let sched = Arc::clone(cluster.locality(0).runtime().scheduler());
        let _ = f.get_help(&sched);
    }
    cluster.wait_quiescent();
    let gathered = collectives
        .take(reduction_id, cluster.len())
        .expect("all contributions must have arrived");
    allreduce_host(&gathered, op)
}

/// A quiescence barrier built from the reduction machinery: every
/// locality contributes `1.0` to a sum-reduce, so returning implies
/// every locality reached the barrier *and* the fabric drained (the
/// reduce path ends in [`Cluster::wait_quiescent`]). `barrier_id` must
/// be fresh per use, like a `reduction_id`.
pub fn barrier(cluster: &Cluster, collectives: &Arc<Collectives>, barrier_id: u64) {
    let ones = vec![1.0; cluster.len()];
    let total = allreduce_wire(cluster, collectives, barrier_id, &ones, |a, b| a + b);
    assert_eq!(total, cluster.len() as f64, "barrier lost a contribution");
}

/// Broadcast helper: serialize `value` once and deliver it to every
/// locality through `action` (which must be registered on all).
pub fn broadcast<T: Serialize + DeserializeOwned>(
    cluster: &Cluster,
    action: ActionId,
    value: &T,
) {
    let payload: Bytes = to_bytes(value).expect("broadcast serialization");
    for i in 0..cluster.len() {
        cluster.locality(0).send(crate::parcel::Parcel {
            dest_locality: i as u32,
            dest_component: amt::GlobalId(0),
            action,
            payload: payload.clone(),
        });
    }
    cluster.wait_quiescent();
}

/// Decode a broadcast payload (receiver-side convenience).
pub fn decode_broadcast<T: DeserializeOwned>(payload: &Bytes) -> T {
    from_bytes(payload).expect("broadcast deserialization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netmodel::TransportKind;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn host_reduce_ops() {
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], f64::min), 1.0);
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], f64::max), 3.0);
        assert_eq!(allreduce_host(&[3.0, 1.0, 2.0], |a, b| a + b), 6.0);
    }

    #[test]
    fn wire_allreduce_min_over_both_transports() {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let cluster =
                Cluster::builder().localities(4).threads_per(2).transport(kind).build();
            let coll = Collectives::register(&cluster);
            // The distributed CFL pattern: min over per-locality dts.
            let dts = [0.31, 0.12, 0.44, 0.27];
            let dt = allreduce_wire(&cluster, &coll, 1, &dts, f64::min);
            assert_eq!(dt, 0.12, "{kind}");
            // A second, independent reduction reuses the machinery.
            let total = allreduce_wire(&cluster, &coll, 2, &dts, |a, b| a + b);
            assert!((total - 1.14).abs() < 1e-12);
        }
    }

    #[test]
    fn barrier_completes_on_both_transports() {
        for kind in [TransportKind::Mpi, TransportKind::Libfabric] {
            let cluster =
                Cluster::builder().localities(3).threads_per(2).transport(kind).build();
            let coll = Collectives::register(&cluster);
            for id in 1..=3 {
                barrier(&cluster, &coll, id);
            }
        }
    }

    #[test]
    fn broadcast_reaches_every_locality() {
        let cluster =
            Cluster::builder().localities(3).transport(TransportKind::Libfabric).build();
        let seen = Arc::new(AtomicUsize::new(0));
        let s = Arc::clone(&seen);
        cluster.register_action(ActionId(0xB0), move |_rt, _id, payload| {
            let v: Vec<f64> = decode_broadcast(&payload);
            assert_eq!(v, vec![1.5, 2.5]);
            s.fetch_add(1, Ordering::SeqCst);
        });
        broadcast(&cluster, ActionId(0xB0), &vec![1.5, 2.5]);
        assert_eq!(seen.load(Ordering::SeqCst), 3);
    }
}
