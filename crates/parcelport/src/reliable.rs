//! Reliable, effectively-once parcel delivery.
//!
//! [`ReliableTransport`] decorates any [`Transport`] with the classic
//! ack/retransmit protocol HPX's resilience work assumes underneath it:
//!
//! * every data parcel is framed with the sender index and a per
//!   `(sender, receiver)` **sequence number**;
//! * the receiver **acks** every data frame (acks ride the same fabric
//!   and are themselves unreliable — a lost ack simply provokes a
//!   retransmit, which the receiver's duplicate filter re-acks and
//!   drops);
//! * unacked frames are **retransmitted** with exponential backoff,
//!   measured in progress *ticks* (one tick per [`Transport::progress`]
//!   call) so the protocol stays deterministic and wall-clock free;
//! * a per-`(sender, receiver)` **watermark + above-watermark set**
//!   suppresses duplicates, so every action dispatches *effectively
//!   once* even under duplication and retransmission;
//! * a peer whose retry budget runs out is **declared dead**: its
//!   unacked frames become dead letters, new sends to it are swallowed,
//!   and it is reported through [`Transport::failed_localities`] so the
//!   driver can abort the step and restore from a checkpoint.
//!
//! Framing adds 13 bytes and one send-side copy per parcel; the
//! receive-side strip is zero-copy ([`bytes::Bytes::slice`] shares the
//! backing buffer), keeping the libfabric backend's zero-copy story
//! intact.
//!
//! The layer counts its work in its own registry, which the cluster
//! mounts at `parcelport`: `parcelport/retries`,
//! `parcelport/dup_dropped`, `parcelport/acks`, plus `acked`,
//! `dead_letter` and `peers_declared_dead`. Every retransmission also
//! records a `parcel/retry` trace span when a trace session is active.

use crate::cluster::{DeliveryFn, Transport};
use crate::netmodel::TransportKind;
use crate::parcel::{ActionId, Parcel};
use amt::trace::{self, TraceCategory};
use amt::{CounterRegistry, GlobalId};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Reserved action id of ack frames. Acks are consumed by the
/// reliability layer and never dispatched to an action registry.
pub const ACK_ACTION: ActionId = ActionId(u32::MAX);

/// Bytes of framing prepended to every data parcel: a tag byte, the
/// sender index (`u32` LE) and the sequence number (`u64` LE).
pub const FRAME_BYTES: usize = 1 + 4 + 8;

const TAG_DATA: u8 = 0;
const TAG_ACK: u8 = 1;

/// Tunables of the ack/retransmit state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliablePolicy {
    /// Ticks before the first retransmission of an unacked frame.
    pub initial_backoff_ticks: u64,
    /// Backoff ceiling (the backoff doubles per retry up to this).
    pub max_backoff_ticks: u64,
    /// Retransmissions allowed per frame before the peer is declared
    /// dead.
    pub max_retries: u32,
}

impl Default for ReliablePolicy {
    fn default() -> Self {
        ReliablePolicy {
            initial_backoff_ticks: 1024,
            max_backoff_ticks: 32 * 1024,
            max_retries: 16,
        }
    }
}

/// A frame awaiting its ack.
struct Pending {
    parcel: Parcel,
    retries: u32,
    backoff: u64,
    next_due: u64,
}

/// Sender-side state for one `(sender, receiver)` direction.
#[derive(Default)]
struct PeerSend {
    next_seq: u64,
    unacked: BTreeMap<u64, Pending>,
}

/// Receiver-side duplicate filter for one `(receiver, sender)`
/// direction: everything `<= watermark` was delivered, plus the sparse
/// set of delivered sequence numbers above it.
#[derive(Default)]
struct PeerRecv {
    watermark: u64,
    seen: BTreeSet<u64>,
}

impl PeerRecv {
    /// Record `seq`; returns `false` if it was already delivered.
    fn admit(&mut self, seq: u64) -> bool {
        if seq <= self.watermark || !self.seen.insert(seq) {
            return false;
        }
        while self.seen.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }
}

#[derive(Default)]
struct ReliableState {
    senders: HashMap<(u32, u32), PeerSend>,
    receivers: HashMap<(u32, u32), PeerRecv>,
    /// Peers declared dead after exhausting a retry budget.
    dead: BTreeSet<u32>,
}

/// The reliable-delivery transport decorator. See the module docs.
pub struct ReliableTransport {
    inner: Arc<dyn Transport>,
    policy: ReliablePolicy,
    /// Logical clock: one tick per `progress` call, fabric-wide.
    ticks: AtomicU64,
    state: Arc<Mutex<ReliableState>>,
    /// Cheap mirror of the total unacked-frame count (feeds
    /// `in_flight` without taking the state lock).
    unacked_total: Arc<AtomicUsize>,
    counters: Arc<CounterRegistry>,
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn frame(tag: u8, loc: u32, seq: u64, payload: &[u8]) -> Bytes {
    let mut v = Vec::with_capacity(FRAME_BYTES + payload.len());
    v.push(tag);
    v.extend_from_slice(&loc.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(payload);
    Bytes::from(v)
}

impl ReliableTransport {
    /// Wrap `inner` with `policy`.
    pub fn new(inner: Arc<dyn Transport>, policy: ReliablePolicy) -> ReliableTransport {
        ReliableTransport {
            inner,
            policy,
            ticks: AtomicU64::new(1),
            state: Arc::new(Mutex::new(ReliableState::default())),
            unacked_total: Arc::new(AtomicUsize::new(0)),
            counters: Arc::new(CounterRegistry::new()),
        }
    }

    /// The reliability counters (`retries`, `dup_dropped`, `acks`,
    /// ...). The cluster mounts these at `parcelport`.
    pub fn reliability_counters(&self) -> &Arc<CounterRegistry> {
        &self.counters
    }

    /// Peers this layer has declared dead (retry budget exhausted).
    pub fn declared_dead(&self) -> Vec<u32> {
        self.state.lock().dead.iter().copied().collect()
    }

    /// Purge all unacked frames addressed to `peer` (it is dead; they
    /// can never be acked) and remember it as dead.
    fn bury(state: &mut ReliableState, unacked_total: &AtomicUsize, counters: &CounterRegistry, peer: u32) {
        if !state.dead.insert(peer) {
            return;
        }
        counters.increment("peers_declared_dead");
        for ((_, dst), ps) in state.senders.iter_mut() {
            if *dst == peer {
                let n = ps.unacked.len();
                ps.unacked.clear();
                unacked_total.fetch_sub(n, Ordering::SeqCst);
                counters.add("dead_letter", n as u64);
            }
        }
    }
}

impl Transport for ReliableTransport {
    fn kind(&self) -> TransportKind {
        self.inner.kind()
    }

    fn send(&self, from: u32, parcel: Parcel) {
        let dest = parcel.dest_locality;
        let mut st = self.state.lock();
        if st.dead.contains(&dest) {
            self.counters.increment("dead_letter");
            return;
        }
        let peer = st.senders.entry((from, dest)).or_default();
        peer.next_seq += 1;
        let seq = peer.next_seq;
        let wrapped = Parcel {
            payload: frame(TAG_DATA, from, seq, &parcel.payload),
            ..parcel
        };
        let now = self.ticks.load(Ordering::SeqCst);
        peer.unacked.insert(
            seq,
            Pending {
                parcel: wrapped.clone(),
                retries: 0,
                backoff: self.policy.initial_backoff_ticks,
                next_due: now + self.policy.initial_backoff_ticks,
            },
        );
        self.unacked_total.fetch_add(1, Ordering::SeqCst);
        drop(st);
        self.inner.send(from, wrapped);
    }

    fn progress(&self, locality: u32) -> bool {
        let now = self.ticks.fetch_add(1, Ordering::SeqCst);
        let mut progressed = self.inner.progress(locality);
        // Retransmit sweep. try_lock: under contention another poller
        // thread is already sweeping, skip rather than serialize.
        if let Some(mut st) = self.state.try_lock() {
            // A layer below may know peers are gone (fault injection):
            // their frames can never be acked, bury them now instead of
            // burning through the whole retry budget.
            for peer in self.inner.failed_localities() {
                Self::bury(&mut st, &self.unacked_total, &self.counters, peer);
            }
            let mut resend: Vec<(u32, Parcel)> = Vec::new();
            let mut exhausted: Vec<u32> = Vec::new();
            for (&(from, dst), ps) in st.senders.iter_mut() {
                for p in ps.unacked.values_mut() {
                    if p.next_due > now {
                        continue;
                    }
                    if p.retries >= self.policy.max_retries {
                        exhausted.push(dst);
                        continue;
                    }
                    p.retries += 1;
                    p.backoff = (p.backoff * 2).min(self.policy.max_backoff_ticks);
                    p.next_due = now + p.backoff;
                    resend.push((from, p.parcel.clone()));
                }
            }
            for peer in exhausted {
                Self::bury(&mut st, &self.unacked_total, &self.counters, peer);
            }
            drop(st);
            for (from, parcel) in resend {
                let _span = trace::span_labeled(TraceCategory::ParcelRetry, || {
                    format!("to{}:{}B", parcel.dest_locality, parcel.wire_size())
                });
                self.counters.increment("retries");
                self.inner.send(from, parcel);
                progressed = true;
            }
        }
        progressed
    }

    fn set_delivery(&self, locality: u32, delivery: DeliveryFn) {
        let state = Arc::clone(&self.state);
        let unacked_total = Arc::clone(&self.unacked_total);
        let counters = Arc::clone(&self.counters);
        let inner = Arc::clone(&self.inner);
        self.inner.set_delivery(
            locality,
            Arc::new(move |parcel: Parcel| {
                let payload = &parcel.payload;
                if payload.len() < FRAME_BYTES {
                    // Not a reliable frame (cannot happen when every
                    // send goes through this layer); pass through.
                    delivery(parcel);
                    return;
                }
                let tag = payload[0];
                let who = read_u32(&payload[1..5]);
                let seq = read_u64(&payload[5..13]);
                match tag {
                    TAG_ACK => {
                        // `who` acked our frame `seq`.
                        let mut st = state.lock();
                        if let Some(ps) = st.senders.get_mut(&(locality, who)) {
                            if ps.unacked.remove(&seq).is_some() {
                                unacked_total.fetch_sub(1, Ordering::SeqCst);
                                counters.increment("acked");
                            }
                        }
                    }
                    TAG_DATA => {
                        // Ack unconditionally — duplicates usually mean
                        // our previous ack was lost.
                        counters.increment("acks");
                        inner.send(
                            locality,
                            Parcel {
                                dest_locality: who,
                                dest_component: GlobalId(0),
                                action: ACK_ACTION,
                                payload: frame(TAG_ACK, locality, seq, &[]),
                            },
                        );
                        let fresh = state
                            .lock()
                            .receivers
                            .entry((locality, who))
                            .or_default()
                            .admit(seq);
                        if !fresh {
                            counters.increment("dup_dropped");
                            return;
                        }
                        let inner_payload = payload.slice(FRAME_BYTES..);
                        delivery(Parcel {
                            payload: inner_payload,
                            ..parcel
                        });
                    }
                    _ => delivery(parcel),
                }
            }),
        );
    }

    fn in_flight(&self) -> usize {
        self.inner.in_flight() + self.unacked_total.load(Ordering::SeqCst)
    }

    fn counters(&self) -> &Arc<CounterRegistry> {
        self.inner.counters()
    }

    fn failed_localities(&self) -> Vec<u32> {
        let mut out = self.inner.failed_localities();
        for d in self.state.lock().dead.iter() {
            if !out.contains(d) {
                out.push(*d);
            }
        }
        out.sort_unstable();
        out
    }
}
