//! A compact binary serde codec for parcel payloads.
//!
//! "The HPX parcel format is more complex than a simple MPI message, but
//! the overheads of packing data can be kept to a minimum" (§5.2). This
//! module is the packing layer: a non-self-describing little-endian
//! binary format over the full serde data model, written from scratch so
//! the workspace needs no external codec crate. Fixed-width primitives,
//! `u64` length prefixes for sequences/strings/maps, `u32` variant
//! indices for enums.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{de, ser, Deserialize, Serialize};
use std::fmt;

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of input while deserializing.
    Eof,
    /// Input contained an invalid encoding (bad bool/char/utf8/...).
    Invalid(String),
    /// Error message bubbled up from a Serialize/Deserialize impl.
    Custom(String),
    /// The type requires lengths known up front (serde `serialize_seq`
    /// with `None` length is not supported by this compact format).
    UnknownLength,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Invalid(m) => write!(f, "invalid encoding: {m}"),
            CodecError::Custom(m) => write!(f, "{m}"),
            CodecError::UnknownLength => write!(f, "sequence length must be known up front"),
        }
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Custom(msg.to_string())
    }
}

/// Serialize `value` into a freshly allocated byte buffer.
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Bytes, CodecError> {
    let mut ser = BinSerializer { out: BytesMut::with_capacity(64) };
    value.serialize(&mut ser)?;
    Ok(ser.out.freeze())
}

/// Deserialize a `T` from `bytes` (must consume a valid prefix).
pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &Bytes) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes.clone() };
    T::deserialize(&mut de)
}

// ---------------------------------------------------------------- encoder

struct BinSerializer {
    out: BytesMut,
}

impl BinSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.put_u64_le(len as u64);
    }
}

impl<'a> ser::Serializer for &'a mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.put_u8(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.put_i8(v);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.put_i16_le(v);
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.put_i32_le(v);
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.put_i64_le(v);
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.put_u8(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.put_u16_le(v);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.put_u32_le(v);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.put_u64_le(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.put_f32_le(v);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.put_f64_le(v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.out.put_u32_le(v as u32);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.put_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.put_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.put_u8(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.put_u8(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.out.put_u32_le(variant_index);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::UnknownLength)?;
        self.put_len(len);
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.out.put_u32_le(variant_index);
        Ok(self)
    }
}

macro_rules! impl_seq_like {
    ($trait:ident, $method:ident) => {
        impl<'a> ser::$trait for &'a mut BinSerializer {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_seq_like!(SerializeSeq, serialize_element);
impl_seq_like!(SerializeTuple, serialize_element);
impl_seq_like!(SerializeTupleStruct, serialize_field);
impl_seq_like!(SerializeTupleVariant, serialize_field);

impl<'a> ser::SerializeMap for &'a mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStruct for &'a mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl<'a> ser::SerializeStructVariant for &'a mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------- decoder

struct BinDeserializer {
    input: Bytes,
}

impl BinDeserializer {
    fn need(&self, n: usize) -> Result<(), CodecError> {
        if self.input.remaining() < n {
            Err(CodecError::Eof)
        } else {
            Ok(())
        }
    }

    fn take_len(&mut self) -> Result<usize, CodecError> {
        self.need(8)?;
        let len = self.input.get_u64_le();
        // Sanity bound: a length longer than the remaining input is corrupt.
        if len as usize > self.input.remaining() {
            return Err(CodecError::Invalid(format!(
                "length prefix {len} exceeds remaining {} bytes",
                self.input.remaining()
            )));
        }
        Ok(len as usize)
    }
}

macro_rules! de_prim {
    ($fn:ident, $visit:ident, $get:ident, $n:expr) => {
        fn $fn<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            self.need($n)?;
            visitor.$visit(self.input.$get())
        }
    };
}

impl<'de, 'a> de::Deserializer<'de> for &'a mut BinDeserializer {
    type Error = CodecError;

    fn deserialize_any<V: de::Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid(
            "format is not self-describing; deserialize_any unsupported".into(),
        ))
    }

    fn deserialize_bool<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(1)?;
        match self.input.get_u8() {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::Invalid(format!("bad bool byte {b}"))),
        }
    }

    de_prim!(deserialize_i8, visit_i8, get_i8, 1);
    de_prim!(deserialize_i16, visit_i16, get_i16_le, 2);
    de_prim!(deserialize_i32, visit_i32, get_i32_le, 4);
    de_prim!(deserialize_i64, visit_i64, get_i64_le, 8);
    de_prim!(deserialize_u8, visit_u8, get_u8, 1);
    de_prim!(deserialize_u16, visit_u16, get_u16_le, 2);
    de_prim!(deserialize_u32, visit_u32, get_u32_le, 4);
    de_prim!(deserialize_u64, visit_u64, get_u64_le, 8);
    de_prim!(deserialize_f32, visit_f32, get_f32_le, 4);
    de_prim!(deserialize_f64, visit_f64, get_f64_le, 8);

    fn deserialize_char<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(4)?;
        let cp = self.input.get_u32_le();
        let c = char::from_u32(cp).ok_or_else(|| CodecError::Invalid(format!("bad char {cp}")))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let raw = self.input.split_to(len);
        let s = std::str::from_utf8(&raw).map_err(|e| CodecError::Invalid(e.to_string()))?;
        visitor.visit_str(s)
    }

    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let raw = self.input.split_to(len);
        visitor.visit_bytes(&raw)
    }

    fn deserialize_byte_buf<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        let raw = self.input.split_to(len);
        visitor.visit_byte_buf(raw.to_vec())
    }

    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.need(1)?;
        match self.input.get_u8() {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::Invalid(format!("bad option tag {b}"))),
        }
    }

    fn deserialize_unit<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.take_len()?;
        visitor.visit_map(CountedAccess { de: self, remaining: len })
    }

    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess { de: self, remaining: fields.len() })
    }

    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid("identifiers are not encoded".into()))
    }

    fn deserialize_ignored_any<V: de::Visitor<'de>>(
        self,
        _visitor: V,
    ) -> Result<V::Value, CodecError> {
        Err(CodecError::Invalid(
            "format is not self-describing; cannot skip unknown fields".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a> {
    de: &'a mut BinDeserializer,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for CountedAccess<'a> {
    type Error = CodecError;
    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for CountedAccess<'a> {
    type Error = CodecError;
    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }
    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a> {
    de: &'a mut BinDeserializer,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a> {
    type Error = CodecError;
    type Variant = VariantAccess<'a>;
    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, VariantAccess<'a>), CodecError> {
        self.de.need(4)?;
        let idx = self.de.input.get_u32_le();
        let val = seed.deserialize(de::value::U32Deserializer::<CodecError>::new(idx))?;
        Ok((val, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a> {
    de: &'a mut BinDeserializer,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a> {
    type Error = CodecError;
    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }
    fn tuple_variant<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess { de: self.de, remaining: len })
    }
    fn struct_variant<V: de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess { de: self.de, remaining: fields.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(v: &T) {
        let b = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&b).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Halo {
        id: u64,
        face: u8,
        values: Vec<f64>,
        label: String,
        tag: Option<i32>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Data(Halo),
        Pair(u32, u32),
        Named { a: bool, b: char },
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&-12345i32);
        roundtrip(&u64::MAX);
        roundtrip(&f64::MIN_POSITIVE);
        roundtrip(&-0.0f64);
        roundtrip(&'∞');
        roundtrip(&"halo exchange".to_string());
        roundtrip(&());
    }

    #[test]
    fn nan_survives_bit_exactly() {
        let v = f64::from_bits(0x7ff8_0000_dead_beef);
        let b = to_bytes(&v).unwrap();
        let back: f64 = from_bytes(&b).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1.0f64, 2.5, -3.25]);
        roundtrip(&Vec::<u8>::new());
        roundtrip(&Some(vec![1u32, 2, 3]));
        roundtrip(&Option::<u32>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        roundtrip(&m);
        roundtrip(&(1u8, 2u16, 3u32, "four".to_string()));
        roundtrip(&[[1.0f64; 3]; 3]);
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(&Halo {
            id: 77,
            face: 3,
            values: (0..100).map(|i| i as f64 * 0.5).collect(),
            label: "x-face".into(),
            tag: Some(-1),
        });
        roundtrip(&Msg::Ping);
        roundtrip(&Msg::Pair(4, 5));
        roundtrip(&Msg::Named { a: true, b: 'z' });
        roundtrip(&Msg::Data(Halo {
            id: 1,
            face: 0,
            values: vec![],
            label: String::new(),
            tag: None,
        }));
    }

    #[test]
    fn truncated_input_is_eof_not_panic() {
        let b = to_bytes(&vec![1u64, 2, 3]).unwrap();
        for cut in 0..b.len() {
            let trunc = b.slice(0..cut);
            let res: Result<Vec<u64>, _> = from_bytes(&trunc);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        let mut b = BytesMut::new();
        b.put_u64_le(u64::MAX); // absurd length
        let res: Result<Vec<u8>, _> = from_bytes(&b.freeze());
        assert!(matches!(res, Err(CodecError::Invalid(_))));
    }

    #[test]
    fn bad_bool_rejected() {
        let b = Bytes::from_static(&[7]);
        let res: Result<bool, _> = from_bytes(&b);
        assert!(matches!(res, Err(CodecError::Invalid(_))));
    }

    #[test]
    fn f64_vec_is_compact() {
        // 8 bytes length prefix + 8 bytes per element, no per-element tags.
        let v = vec![0.0f64; 512];
        let b = to_bytes(&v).unwrap();
        assert_eq!(b.len(), 8 + 512 * 8);
    }

    proptest! {
        #[test]
        fn arbitrary_f64_vecs_roundtrip(v in proptest::collection::vec(proptest::num::f64::ANY, 0..256)) {
            let b = to_bytes(&v).unwrap();
            let back: Vec<f64> = from_bytes(&b).unwrap();
            prop_assert_eq!(back.len(), v.len());
            for (a, b) in back.iter().zip(v.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn arbitrary_strings_roundtrip(s in ".*") {
            let b = to_bytes(&s).unwrap();
            let back: String = from_bytes(&b).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn arbitrary_structs_roundtrip(id in any::<u64>(), face in any::<u8>(),
                                       values in proptest::collection::vec(-1e9f64..1e9, 0..64),
                                       label in "[a-z]{0,16}", tag in any::<Option<i32>>()) {
            roundtrip(&Halo { id, face, values, label, tag });
        }
    }
}
