//! A compact binary codec for parcel payloads.
//!
//! "The HPX parcel format is more complex than a simple MPI message, but
//! the overheads of packing data can be kept to a minimum" (§5.2). This
//! module is the packing layer: a non-self-describing little-endian
//! binary format — fixed-width primitives, `u64` length prefixes for
//! sequences/strings/maps, `u32` variant indices for enums, `u8` option
//! tags. The encoder/decoder live in the workspace's offline `serde`
//! stand-in ([`serde::Writer`]/[`serde::Reader`]); this module binds
//! them to [`bytes::Bytes`] payload handles and re-exports the error
//! type so transport code has a single import point.

use bytes::Bytes;
pub use serde::CodecError;
use serde::{Deserialize, Reader, Serialize, Writer};

/// Serialize `value` into a freshly allocated byte buffer.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Bytes, CodecError> {
    let mut w = Writer::with_capacity(64);
    value.serialize(&mut w);
    Ok(Bytes::from(w.into_vec()))
}

/// Deserialize a `T` from `bytes` (must consume a valid prefix).
pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &Bytes) -> Result<T, CodecError> {
    let mut r = Reader::new(bytes.as_ref());
    T::deserialize(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::{BufMut, BytesMut};
    use proptest::prelude::*;
    use serde::{CodecError, Deserialize, Reader, Serialize, Writer};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug>(v: &T) {
        let b = to_bytes(v).expect("serialize");
        let back: T = from_bytes(&b).expect("deserialize");
        assert_eq!(&back, v);
    }

    #[derive(PartialEq, Debug)]
    struct Halo {
        id: u64,
        face: u8,
        values: Vec<f64>,
        label: String,
        tag: Option<i32>,
    }

    serde::impl_codec_struct!(Halo { id, face, values, label, tag });

    #[derive(PartialEq, Debug)]
    enum Msg {
        Ping,
        Data(Halo),
        Pair(u32, u32),
        Named { a: bool, b: char },
    }

    // Data-carrying enums write their codec by hand: `u32` variant
    // index, then the payload fields in order (the same externally
    // indexed layout the original serde-derived codec produced).
    impl Serialize for Msg {
        fn serialize(&self, w: &mut Writer) {
            match self {
                Msg::Ping => w.put_u32_le(0),
                Msg::Data(h) => {
                    w.put_u32_le(1);
                    h.serialize(w);
                }
                Msg::Pair(x, y) => {
                    w.put_u32_le(2);
                    x.serialize(w);
                    y.serialize(w);
                }
                Msg::Named { a, b } => {
                    w.put_u32_le(3);
                    a.serialize(w);
                    b.serialize(w);
                }
            }
        }
    }

    impl<'de> Deserialize<'de> for Msg {
        fn deserialize(r: &mut Reader<'de>) -> Result<Self, CodecError> {
            match r.get_u32_le()? {
                0 => Ok(Msg::Ping),
                1 => Ok(Msg::Data(Halo::deserialize(r)?)),
                2 => Ok(Msg::Pair(u32::deserialize(r)?, u32::deserialize(r)?)),
                3 => Ok(Msg::Named { a: bool::deserialize(r)?, b: char::deserialize(r)? }),
                v => Err(CodecError::Invalid(format!("bad Msg variant {v}"))),
            }
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&-12345i32);
        roundtrip(&u64::MAX);
        roundtrip(&f64::MIN_POSITIVE);
        roundtrip(&-0.0f64);
        roundtrip(&'∞');
        roundtrip(&"halo exchange".to_string());
        roundtrip(&());
    }

    #[test]
    fn nan_survives_bit_exactly() {
        let v = f64::from_bits(0x7ff8_0000_dead_beef);
        let b = to_bytes(&v).unwrap();
        let back: f64 = from_bytes(&b).unwrap();
        assert_eq!(back.to_bits(), v.to_bits());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1.0f64, 2.5, -3.25]);
        roundtrip(&Vec::<u8>::new());
        roundtrip(&Some(vec![1u32, 2, 3]));
        roundtrip(&Option::<u32>::None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        m.insert("b".to_string(), 2);
        roundtrip(&m);
        roundtrip(&(1u8, 2u16, 3u32, "four".to_string()));
        roundtrip(&[[1.0f64; 3]; 3]);
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(&Halo {
            id: 77,
            face: 3,
            values: (0..100).map(|i| i as f64 * 0.5).collect(),
            label: "x-face".into(),
            tag: Some(-1),
        });
        roundtrip(&Msg::Ping);
        roundtrip(&Msg::Pair(4, 5));
        roundtrip(&Msg::Named { a: true, b: 'z' });
        roundtrip(&Msg::Data(Halo {
            id: 1,
            face: 0,
            values: vec![],
            label: String::new(),
            tag: None,
        }));
    }

    #[test]
    fn truncated_input_is_eof_not_panic() {
        let b = to_bytes(&vec![1u64, 2, 3]).unwrap();
        for cut in 0..b.len() {
            let trunc = b.slice(0..cut);
            let res: Result<Vec<u64>, _> = from_bytes(&trunc);
            assert!(res.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_length_prefix_rejected() {
        let mut b = BytesMut::new();
        b.put_u64_le(u64::MAX); // absurd length
        let res: Result<Vec<u8>, _> = from_bytes(&b.freeze());
        assert!(matches!(res, Err(CodecError::Invalid(_))));
    }

    #[test]
    fn bad_bool_rejected() {
        let b = Bytes::from_static(&[7]);
        let res: Result<bool, _> = from_bytes(&b);
        assert!(matches!(res, Err(CodecError::Invalid(_))));
    }

    #[test]
    fn f64_vec_is_compact() {
        // 8 bytes length prefix + 8 bytes per element, no per-element tags.
        let v = vec![0.0f64; 512];
        let b = to_bytes(&v).unwrap();
        assert_eq!(b.len(), 8 + 512 * 8);
    }

    proptest! {
        #[test]
        fn arbitrary_f64_vecs_roundtrip(v in proptest::collection::vec(proptest::num::f64::ANY, 0..256)) {
            let b = to_bytes(&v).unwrap();
            let back: Vec<f64> = from_bytes(&b).unwrap();
            prop_assert_eq!(back.len(), v.len());
            for (a, b) in back.iter().zip(v.iter()) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn arbitrary_strings_roundtrip(s in ".*") {
            let b = to_bytes(&s).unwrap();
            let back: String = from_bytes(&b).unwrap();
            prop_assert_eq!(back, s);
        }

        #[test]
        fn arbitrary_structs_roundtrip(id in any::<u64>(), face in any::<u8>(),
                                       values in proptest::collection::vec(-1e9f64..1e9, 0..64),
                                       label in "[a-z]{0,16}", tag in any::<Option<i32>>()) {
            roundtrip(&Halo { id, face, values, label, tag });
        }
    }
}
