//! The timestep loop.
//!
//! One step mirrors Octo-Tiger's structure (§4.2/§4.3): fill halos →
//! solve gravity with the FMM → hydro RHS with gravity and
//! rotating-frame sources → TVD-RK2 update, with the per-sub-grid work
//! futurized: every leaf's RHS is an `amt` task and the stage barrier
//! is a `when_all` over their futures — the same dataflow shape HPX
//! gives Octo-Tiger, at laptop scale.

use crate::config::Config;
use crate::scenario::Scenario;
use amt::trace::{self, TraceCategory};
use amt::{when_all, Future, Runtime};
use gravity::solver::{FmmSolver, GravityField};
use hydro::flux::StateVec;
use hydro::rotating::RotatingFrame;
use hydro::step::{cfl_dt, HydroStepper};
use octree::halo::fill_all_halos_parallel;
use octree::subgrid::{Field, SubGrid, N_SUB};
use octree::tree::Octree;
use std::collections::HashMap;
use std::sync::Arc;
use util::morton::MortonKey;
use util::vec3::Vec3;

// ---------------------------------------------------------------------
// Per-leaf kernels, shared verbatim by the single-locality `Simulation`
// and the multi-locality `crate::distributed::DistributedDriver`. The
// distributed solve is bit-identical to this driver *by construction*
// because both run exactly these functions on identical inputs.

/// CFL-limited signal dt of one leaf.
pub(crate) fn leaf_signal_dt(
    tree: &Octree,
    key: MortonKey,
    stepper: HydroStepper,
    cfl: f64,
) -> f64 {
    let grid = tree.node(key).expect("leaf").grid.as_ref().expect("grid");
    let a = stepper.max_signal_speed(grid);
    cfl_dt(tree.domain().cell_dx(key.level), a, cfl)
}

/// Full RHS (hydro + gravity + rotating-frame sources) of one leaf.
/// Ghosts must be filled; `grav`, when present, must cover `key`.
pub(crate) fn leaf_rhs(
    tree: &Octree,
    key: MortonKey,
    grav: Option<&GravityField>,
    stepper: HydroStepper,
    frame: RotatingFrame,
) -> Vec<StateVec> {
    let domain = tree.domain();
    let grid = tree.node(key).expect("leaf").grid.as_ref().expect("grid");
    let dx = domain.cell_dx(key.level);
    let mut rhs = stepper.dudt(grid, dx);
    // Gravity sources: conservation-grade force density, energy power,
    // and the spin torque ledger.
    if let Some(g) = grav {
        if let Some(cells) = g.leaf(key) {
            let n = N_SUB as isize;
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        let ci = ((i * n + j) * n + k) as usize;
                        let cg = &cells[ci];
                        let rho = grid.at(Field::Rho, i, j, k);
                        let s = Vec3::new(
                            grid.at(Field::Sx, i, j, k),
                            grid.at(Field::Sy, i, j, k),
                            grid.at(Field::Sz, i, j, k),
                        );
                        let u = if rho > 0.0 { s / rho } else { Vec3::ZERO };
                        rhs[ci][Field::Sx.idx()] += cg.force_density.x;
                        rhs[ci][Field::Sy.idx()] += cg.force_density.y;
                        rhs[ci][Field::Sz.idx()] += cg.force_density.z;
                        rhs[ci][Field::Egas.idx()] += cg.force_density.dot(u);
                        rhs[ci][Field::Lx.idx()] += cg.torque_density.x;
                        rhs[ci][Field::Ly.idx()] += cg.torque_density.y;
                        rhs[ci][Field::Lz.idx()] += cg.torque_density.z;
                    }
                }
            }
        }
    }
    // Rotating-frame sources.
    frame.add_sources(grid, domain.node_origin(key), dx, &mut rhs);
    rhs
}

/// Stage-1 (forward Euler) update of one leaf; returns the pre-update
/// grid the RK2 final stage needs.
pub(crate) fn apply_stage1(
    stepper: HydroStepper,
    grid: &mut SubGrid,
    rhs: &[StateVec],
    dt: f64,
    floors: bool,
) -> SubGrid {
    let old = grid.clone();
    stepper.apply(grid, rhs, dt);
    if floors {
        stepper.enforce_floors(grid);
    }
    old
}

/// Stage-2 (TVD-RK2 average) update of one leaf.
pub(crate) fn apply_stage2(
    stepper: HydroStepper,
    grid: &mut SubGrid,
    prev: &SubGrid,
    rhs: &[StateVec],
    dt: f64,
    floors: bool,
) {
    stepper.apply_rk2_final(grid, prev, rhs, dt);
    if floors {
        stepper.enforce_floors(grid);
    }
    stepper.resync_tau(grid);
}

/// A running simulation.
pub struct Simulation {
    tree: Arc<Octree>,
    pub config: Config,
    stepper: HydroStepper,
    solver: Option<Arc<FmmSolver>>,
    frame: RotatingFrame,
    rt: Arc<Runtime>,
    /// Simulated time (code units).
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
    /// Sub-grids processed (leaves × steps) — the paper's throughput
    /// metric ("processed sub-grids per second").
    pub subgrids_processed: u64,
}

impl Simulation {
    /// Build a simulation from a scenario.
    pub fn new(scenario: Scenario) -> Simulation {
        scenario.config.validate();
        let config = scenario.config;
        Simulation {
            tree: Arc::new(scenario.tree),
            config,
            stepper: HydroStepper::new(config.eos),
            solver: config.gravity.then(|| {
                Arc::new(
                    FmmSolver::new(config.theta)
                        .with_chunk_cells(config.fmm_chunk_cells)
                        .with_aggregation(config.fmm_agg_slots, config.fmm_agg_window),
                )
            }),
            frame: RotatingFrame::new(config.omega),
            rt: Runtime::new(config.threads),
            time: 0.0,
            steps: 0,
            subgrids_processed: 0,
        }
    }

    /// The effective FMM same-level chunk size of this simulation's
    /// solver (`None` when gravity is off).
    pub fn fmm_chunk_cells(&self) -> Option<usize> {
        self.solver.as_ref().map(|s| s.chunk_cells())
    }

    /// The effective work-aggregation thresholds of this simulation's
    /// solver (`None` when gravity is off).
    pub fn fmm_aggregation(&self) -> Option<gravity::gpu::AggregationConfig> {
        self.solver.as_ref().map(|s| s.agg_config())
    }

    /// The current tree.
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// The runtime (for counter inspection).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Solve gravity for the current state (halos need not be filled).
    /// Runs the futurized FMM walk — bit-identical to the serial solve
    /// at any thread count.
    pub fn solve_gravity(&self) -> Option<Arc<GravityField>> {
        self.solver.as_ref().map(|s| {
            let _span = trace::span(TraceCategory::GravitySolve);
            Arc::new(s.solve_parallel(&self.tree, &self.rt))
        })
    }

    fn tree_mut(&mut self) -> &mut Octree {
        Arc::get_mut(&mut self.tree).expect("no outstanding tree references between stages")
    }

    /// Global CFL time step over all leaves: a parallel min-reduce, one
    /// task per leaf. `when_all` returns results in leaf order and the
    /// fold is ordered, so the reduction is deterministic.
    pub fn compute_dt(&self) -> f64 {
        let _span = trace::span(TraceCategory::DtReduce);
        let leaves = self.tree.leaves();
        let mut futs = Vec::with_capacity(leaves.len());
        for key in leaves {
            let tree = Arc::clone(&self.tree);
            let stepper = self.stepper;
            let cfl = self.config.cfl;
            futs.push(self.rt.async_call(move || leaf_signal_dt(&tree, key, stepper, cfl)));
        }
        let sched = Arc::clone(self.rt.scheduler());
        let dts = when_all(&sched, futs).get_help(&sched);
        self.rt.wait_quiescent();
        dts.into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Compute the full RHS (hydro + gravity + frame) for every leaf,
    /// one task per leaf over the AMT scheduler.
    fn parallel_rhs(
        &self,
        grav: Option<Arc<GravityField>>,
    ) -> HashMap<MortonKey, Vec<StateVec>> {
        let leaves = self.tree.leaves();
        let mut futures: Vec<Future<(MortonKey, Vec<StateVec>)>> =
            Vec::with_capacity(leaves.len());
        for key in leaves {
            let tree = Arc::clone(&self.tree);
            let grav = grav.clone();
            let stepper = self.stepper;
            let frame = self.frame;
            futures.push(self.rt.async_call(move || {
                let _span = trace::span_labeled(TraceCategory::HydroRhs, || format!("{key:?}"));
                (key, leaf_rhs(&tree, key, grav.as_deref(), stepper, frame))
            }));
        }
        let sched = Arc::clone(self.rt.scheduler());
        let out = when_all(&sched, futures)
            .get_help(&sched)
            .into_iter()
            .collect();
        // The last task fulfils its promise *before* its closure (and
        // its Arc<Octree> clone) is dropped; wait for full quiescence so
        // Arc::get_mut in the apply phase never races that drop.
        self.rt.wait_quiescent();
        out
    }

    /// Advance one TVD-RK2 step; returns the dt taken.
    pub fn step(&mut self) -> f64 {
        let _step_span =
            trace::span_labeled(TraceCategory::Step, || format!("step {}", self.steps));
        let bc = self.config.bc;
        let floors = self.config.floors;
        {
            let _span = trace::span(TraceCategory::HaloFill);
            fill_all_halos_parallel(&mut self.tree, bc, &self.rt);
        }
        let dt = self.compute_dt();
        assert!(dt.is_finite() && dt > 0.0, "CFL produced dt = {dt}");

        // Stage 1.
        let grav = self.solve_gravity();
        let rhs1 = self.parallel_rhs(grav);
        let mut old: HashMap<MortonKey, SubGrid> = HashMap::new();
        {
            let _span = trace::span(TraceCategory::HydroApply);
            let stepper = self.stepper;
            let tree = self.tree_mut();
            for (key, rhs) in &rhs1 {
                let node = tree.node_mut(*key).expect("leaf");
                let grid = node.grid.as_mut().expect("grid");
                old.insert(*key, apply_stage1(stepper, grid, rhs, dt, floors));
            }
        }

        // Stage 2.
        {
            let _span = trace::span(TraceCategory::HaloFill);
            fill_all_halos_parallel(&mut self.tree, bc, &self.rt);
        }
        let grav2 = self.solve_gravity();
        let rhs2 = self.parallel_rhs(grav2);
        {
            let _span = trace::span(TraceCategory::HydroApply);
            let stepper = self.stepper;
            let tree = self.tree_mut();
            for (key, rhs) in &rhs2 {
                let node = tree.node_mut(*key).expect("leaf");
                let grid = node.grid.as_mut().expect("grid");
                apply_stage2(stepper, grid, &old[key], rhs, dt, floors);
            }
            tree.restrict_all();
        }

        self.time += dt;
        self.steps += 1;
        self.subgrids_processed += self.tree.leaf_count() as u64;
        dt
    }

    /// Run `n` steps (or until `t_end`, whichever comes first); returns
    /// the simulated time advanced.
    pub fn run(&mut self, n: usize, t_end: f64) -> f64 {
        let t0 = self.time;
        for _ in 0..n {
            if self.time >= t_end {
                break;
            }
            self.step();
        }
        self.time - t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{drift, totals};

    #[test]
    fn uniform_medium_stays_uniform() {
        // A constant state must be an exact fixed point of the full
        // driver (fluxes cancel, no gravity, no frame).
        let eos = hydro::eos::IdealGas::monatomic();
        let mut scenario = Scenario::sod(1);
        // Overwrite with a constant state.
        {
            let domain = scenario.tree.domain();
            let _ = domain;
            for key in scenario.tree.leaves() {
                let node = scenario.tree.node_mut(key).unwrap();
                let grid = node.grid.as_mut().unwrap();
                for (i, j, k) in grid.indexer().interior() {
                    grid.set(Field::Rho, i, j, k, 1.0);
                    grid.set(Field::Sx, i, j, k, 0.0);
                    grid.set(Field::Sy, i, j, k, 0.0);
                    grid.set(Field::Sz, i, j, k, 0.0);
                    grid.set(Field::Egas, i, j, k, 1.5);
                    grid.set(Field::Tau, i, j, k, eos.tau_from_e(1.5));
                }
            }
        }
        let mut sim = Simulation::new(scenario);
        for _ in 0..3 {
            sim.step();
        }
        for key in sim.tree().leaves() {
            let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                assert!(
                    (grid.at(Field::Rho, i, j, k) - 1.0).abs() < 1e-12,
                    "uniform state drifted"
                );
            }
        }
        assert_eq!(sim.steps, 3);
        assert!(sim.time > 0.0);
        assert!(sim.subgrids_processed > 0);
    }

    #[test]
    fn centered_pulse_conserves_everything_to_machine_precision() {
        // A *compactly supported* pressure/density bump in a uniform
        // static ambient: until waves reach the boundary, the outflow
        // fluxes are exactly the constant ambient pressure on all six
        // faces, which cancels bit-exactly — so mass, momentum, angular
        // momentum (orbital + spin), and energy must be conserved to
        // machine precision. (A Gaussian pulse's infinite tails leak
        // ~1e-8 through the boundary; the Sod tube legitimately gains
        // momentum from its asymmetric boundary pressures.)
        let eos = hydro::eos::IdealGas::monatomic();
        let mut scenario = Scenario::sod(1);
        {
            let domain = scenario.tree.domain();
            for key in scenario.tree.leaves() {
                let node = scenario.tree.node_mut(key).unwrap();
                let grid = node.grid.as_mut().unwrap();
                for (i, j, k) in grid.indexer().interior() {
                    let c = domain.cell_center(key, i, j, k);
                    // An asymmetric (off-centre, tilted) pulse, so the
                    // cancellation is not helped by grid symmetry.
                    let r = (c - Vec3::new(0.03, -0.02, 0.01)).norm();
                    let support = 0.12;
                    let bump = if r < support {
                        let w = (std::f64::consts::PI * r / (2.0 * support)).cos();
                        w * w
                    } else {
                        0.0
                    };
                    let rho = 1.0 + 2.0 * bump;
                    let e_int = 1.0 + 5.0 * bump;
                    grid.set(Field::Rho, i, j, k, rho);
                    grid.set(Field::Sx, i, j, k, 0.0);
                    grid.set(Field::Sy, i, j, k, 0.0);
                    grid.set(Field::Sz, i, j, k, 0.0);
                    grid.set(Field::Egas, i, j, k, e_int);
                    grid.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
                }
            }
        }
        scenario.config.eos = eos;
        let mut sim = Simulation::new(scenario);
        let start = totals(sim.tree(), None);
        for _ in 0..4 {
            sim.step();
        }
        let end = totals(sim.tree(), None);
        let mom_scale = start.mass; // ~ M · c with c ~ 1
        let d = drift(&start, &end, mom_scale, mom_scale);
        // Interior transport is exactly conservative (fluxes telescope
        // bit-identically across sub-grid faces); what remains is the
        // truncation-tail of the stencil reaching the outflow boundary
        // on this deliberately tiny 16-cell domain — a few 1e-12.
        assert!(d.mass < 1e-11, "mass drift {}", d.mass);
        assert!(d.momentum < 1e-11, "momentum drift {}", d.momentum);
        assert!(d.angular < 1e-11, "angular momentum drift {}", d.angular);
        assert!(d.energy < 1e-11, "energy drift {}", d.energy);
    }

    #[test]
    fn sod_develops_the_wave_structure() {
        let mut sim = Simulation::new(Scenario::sod(2));
        // Run to t ~ 0.1 (domain edge 1.0).
        while sim.time < 0.1 && sim.steps < 200 {
            sim.step();
        }
        assert!(sim.time >= 0.1, "too many steps: {}", sim.steps);
        // Density between the initial states must appear (rarefaction/
        // contact/shock fan).
        let mut intermediate = false;
        for key in sim.tree().leaves() {
            let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let rho = grid.at(Field::Rho, i, j, k);
                if rho > 0.2 && rho < 0.9 {
                    intermediate = true;
                }
            }
        }
        assert!(intermediate, "no wave structure formed");
    }

    #[test]
    fn self_gravitating_step_runs() {
        let mut sim = Simulation::new(Scenario::single_star(1));
        let g = sim.solve_gravity().expect("gravity enabled");
        // The star's own field points inward: at the centre |g| ~ 0.
        let dt = sim.step();
        assert!(dt > 0.0);
        drop(g);
        let t = totals(sim.tree(), None);
        assert!(t.mass > 0.9, "star mass present: {}", t.mass);
    }
}
