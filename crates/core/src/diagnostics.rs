//! Conserved-quantity monitors.
//!
//! "Octo-Tiger conserves both linear and angular momenta to machine
//! precision" (§4.2) — these totals are how that claim is checked. The
//! angular momentum total includes both the orbital part `r × s` and
//! the evolved spin fields `l` (the Després–Labourasse degree of
//! freedom), which is exactly the budget the hydro and gravity solvers
//! balance.

use gravity::solver::GravityField;
use octree::subgrid::{Field, N_SUB};
use octree::tree::Octree;
use util::vec3::Vec3;

/// Totals of the conserved quantities over the whole tree.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Totals {
    pub mass: f64,
    pub momentum: Vec3,
    /// Orbital (r × s) plus spin (l) angular momentum.
    pub angular: Vec3,
    pub kinetic: f64,
    pub internal: f64,
    /// Gravitational potential energy ½ Σ ρ φ V (0 without gravity).
    pub potential: f64,
    /// Sum of the five passive scalars (tracks total mass).
    pub scalars: f64,
}

impl Totals {
    /// Total energy (kinetic + internal + potential).
    pub fn energy(&self) -> f64 {
        self.kinetic + self.internal + self.potential
    }
}

/// Compute the totals; pass the gravity field for the potential term.
pub fn totals(tree: &Octree, grav: Option<&GravityField>) -> Totals {
    let domain = tree.domain();
    let mut t = Totals::default();
    for key in tree.leaves() {
        let grid = tree.node(key).expect("leaf").grid.as_ref().expect("grid");
        let vol = domain.cell_volume(key.level);
        let gcells = grav.and_then(|g| g.leaf(key));
        let n = N_SUB as isize;
        for (i, j, k) in grid.indexer().interior() {
            let rho = grid.at(Field::Rho, i, j, k);
            let s = Vec3::new(
                grid.at(Field::Sx, i, j, k),
                grid.at(Field::Sy, i, j, k),
                grid.at(Field::Sz, i, j, k),
            );
            let l = Vec3::new(
                grid.at(Field::Lx, i, j, k),
                grid.at(Field::Ly, i, j, k),
                grid.at(Field::Lz, i, j, k),
            );
            let egas = grid.at(Field::Egas, i, j, k);
            let r = domain.cell_center(key, i, j, k);
            t.mass += rho * vol;
            t.momentum += s * vol;
            t.angular += (r.cross(s) + l) * vol;
            let ke = if rho > 0.0 { 0.5 * s.norm2() / rho } else { 0.0 };
            t.kinetic += ke * vol;
            t.internal += (egas - ke) * vol;
            if let Some(g) = gcells {
                let ci = ((i * n + j) * n + k) as usize;
                t.potential += 0.5 * rho * g[ci].phi * vol;
            }
            for f in octree::subgrid::PASSIVE_SCALARS {
                t.scalars += grid.at(f, i, j, k) * vol;
            }
        }
    }
    t
}

/// Relative drift of conserved quantities between two snapshots,
/// normalized per quantity by a problem scale.
#[derive(Debug, Clone, Copy)]
pub struct Drift {
    pub mass: f64,
    pub momentum: f64,
    pub angular: f64,
    pub energy: f64,
}

/// Compute drifts of `now` against `start`, normalizing momentum-like
/// quantities by `momentum_scale` (e.g. M·c_s or the initial |L|).
pub fn drift(start: &Totals, now: &Totals, momentum_scale: f64, angular_scale: f64) -> Drift {
    let rel = |a: f64, b: f64, scale: f64| (b - a).abs() / scale.abs().max(1e-300);
    Drift {
        mass: rel(start.mass, now.mass, start.mass),
        momentum: (now.momentum - start.momentum).norm() / momentum_scale.abs().max(1e-300),
        angular: (now.angular - start.angular).norm() / angular_scale.abs().max(1e-300),
        energy: rel(start.energy(), now.energy(), start.energy().abs().max(start.internal)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octree::geometry::Domain;

    fn small_tree(rho: f64, v: Vec3) -> Octree {
        let mut t = Octree::new(Domain::new(4.0));
        let key = util::morton::MortonKey::root();
        let grid = t.node_mut(key).unwrap().grid.as_mut().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Sx, i, j, k, rho * v.x);
            grid.set(Field::Sy, i, j, k, rho * v.y);
            grid.set(Field::Sz, i, j, k, rho * v.z);
            grid.set(Field::Egas, i, j, k, 1.0 + 0.5 * rho * v.norm2());
        }
        t
    }

    #[test]
    fn uniform_box_totals() {
        let t = small_tree(2.0, Vec3::new(0.5, 0.0, 0.0));
        let totals = totals(&t, None);
        // Domain volume 4³ = 64, rho = 2 → mass 128.
        assert!((totals.mass - 128.0).abs() < 1e-9);
        assert!((totals.momentum.x - 64.0).abs() < 1e-9);
        assert_eq!(totals.potential, 0.0);
        // Kinetic: ½ρv² × V = 0.5·2·0.25·64 = 16.
        assert!((totals.kinetic - 16.0).abs() < 1e-9);
        assert!(totals.energy() > totals.kinetic);
    }

    #[test]
    fn angular_momentum_includes_spin() {
        let mut t = small_tree(1.0, Vec3::ZERO);
        {
            let key = util::morton::MortonKey::root();
            let grid = t.node_mut(key).unwrap().grid.as_mut().unwrap();
            grid.set(Field::Lz, 0, 0, 0, 3.0);
        }
        let tot = totals(&t, None);
        let vol = t.domain().cell_volume(0);
        assert!((tot.angular.z - 3.0 * vol).abs() < 1e-12);
    }

    #[test]
    fn drift_is_zero_for_identical_snapshots() {
        let t = small_tree(1.0, Vec3::new(0.1, 0.2, 0.3));
        let a = totals(&t, None);
        let d = drift(&a, &a, 1.0, 1.0);
        assert_eq!(d.mass, 0.0);
        assert_eq!(d.momentum, 0.0);
        assert_eq!(d.angular, 0.0);
        assert_eq!(d.energy, 0.0);
    }
}
