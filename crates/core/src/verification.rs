//! The §4.2 verification suite as callable checks.
//!
//! "We used a test suite of four verification tests, recommended by
//! Tasker et al. for self-gravitating astrophysical codes, to verify
//! the correctness of our results."

use crate::driver::Simulation;
use crate::scenario::Scenario;
use hydro::analytic::{sedov, SodSolution};
use octree::subgrid::Field;
use util::vec3::Vec3;

/// Result of the Sod test: L1 density error against the exact Riemann
/// solution, sampled along the x-axis.
pub struct SodResult {
    pub t_end: f64,
    pub l1_density: f64,
    pub samples: usize,
}

/// Run the Sod tube to `t_end` and compare to the exact solution.
pub fn run_sod(level: u8, t_end: f64) -> SodResult {
    let mut sim = Simulation::new(Scenario::sod(level));
    while sim.time < t_end && sim.steps < 10_000 {
        sim.step();
    }
    let exact = SodSolution::classic(1.4);
    let domain = sim.tree().domain();
    let mut err = 0.0;
    let mut samples = 0;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            // Sample the tube along the axis rows (all y, z — the
            // problem is 1-D so every row is the same tube).
            let (rho_exact, _, _) = exact.sample(c.x / sim.time);
            err += (grid.at(Field::Rho, i, j, k) - rho_exact).abs();
            samples += 1;
        }
    }
    SodResult {
        t_end: sim.time,
        l1_density: err / samples as f64,
        samples,
    }
}

/// Result of the Sedov test: measured vs analytic shock radius.
pub struct SedovResult {
    pub t_end: f64,
    pub r_shock_measured: f64,
    pub r_shock_analytic: f64,
    pub max_density_ratio: f64,
}

/// Run the Sedov blast and measure the shock radius (the outermost
/// radius where density exceeds the ambient by 20%).
pub fn run_sedov(level: u8, e0: f64, t_end: f64) -> SedovResult {
    let mut sim = Simulation::new(Scenario::sedov(level, e0));
    while sim.time < t_end && sim.steps < 10_000 {
        sim.step();
    }
    let domain = sim.tree().domain();
    let mut r_shock = 0.0f64;
    let mut rho_max = 0.0f64;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in grid.indexer().interior() {
            let rho = grid.at(Field::Rho, i, j, k);
            let r = domain.cell_center(key, i, j, k).norm();
            if rho > 1.2 {
                r_shock = r_shock.max(r);
            }
            rho_max = rho_max.max(rho);
        }
    }
    SedovResult {
        t_end: sim.time,
        r_shock_measured: r_shock,
        r_shock_analytic: sedov::shock_radius(e0, 1.0, sim.time, 5.0 / 3.0),
        max_density_ratio: rho_max,
    }
}

/// Result of the star-stability tests (§4.2 tests 3 & 4).
pub struct StarResult {
    pub t_end: f64,
    /// Relative drift of the central density.
    pub central_density_drift: f64,
    /// Relative mass drift.
    pub mass_drift: f64,
    /// Centre-of-mass displacement (relative to the star radius).
    pub com_drift: f64,
}

/// Run the (possibly moving) star for `n_steps` and measure structural
/// drift. For the moving star the centre-of-mass displacement is
/// compared against the expected advection distance.
pub fn run_star(level: u8, velocity: Vec3, n_steps: usize) -> StarResult {
    let scenario = if velocity == Vec3::ZERO {
        Scenario::single_star(level)
    } else {
        Scenario::moving_star(level, velocity)
    };
    let mut sim = Simulation::new(scenario);
    let (rho_c0, mass0, com0) = star_metrics(&sim);
    for _ in 0..n_steps {
        sim.step();
    }
    let (rho_c1, mass1, com1) = star_metrics(&sim);
    let expected_com = com0 + velocity * sim.time;
    StarResult {
        t_end: sim.time,
        central_density_drift: ((rho_c1 - rho_c0) / rho_c0).abs(),
        mass_drift: ((mass1 - mass0) / mass0).abs(),
        com_drift: (com1 - expected_com).norm(),
    }
}

fn star_metrics(sim: &Simulation) -> (f64, f64, Vec3) {
    let domain = sim.tree().domain();
    let mut rho_max = 0.0f64;
    let mut mass = 0.0;
    let mut com = Vec3::ZERO;
    for key in sim.tree().leaves() {
        let grid = sim.tree().node(key).unwrap().grid.as_ref().unwrap();
        let vol = domain.cell_volume(key.level);
        for (i, j, k) in grid.indexer().interior() {
            let rho = grid.at(Field::Rho, i, j, k);
            let c = domain.cell_center(key, i, j, k);
            rho_max = rho_max.max(rho);
            mass += rho * vol;
            com += c * (rho * vol);
        }
    }
    (rho_max, mass, com / mass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_l1_error_is_small_and_converges() {
        // Coarse run (16 cells across): the wave structure is crude but
        // the L1 error must be bounded; the refined run must beat it.
        let coarse = run_sod(1, 0.15);
        assert!(coarse.t_end >= 0.15);
        assert!(
            coarse.l1_density < 0.06,
            "coarse L1 = {}",
            coarse.l1_density
        );
        let fine = run_sod(2, 0.15);
        assert!(
            fine.l1_density < coarse.l1_density,
            "refinement must reduce the error: {} vs {}",
            fine.l1_density,
            coarse.l1_density
        );
    }

    #[test]
    fn sedov_shock_radius_tracks_similarity_solution() {
        let res = run_sedov(2, 1.0, 0.03);
        assert!(res.r_shock_measured > 0.0, "no shock found");
        let rel = (res.r_shock_measured - res.r_shock_analytic).abs() / res.r_shock_analytic;
        assert!(
            rel < 0.35,
            "shock radius {} vs analytic {} (rel {rel})",
            res.r_shock_measured,
            res.r_shock_analytic
        );
        // Strong-shock compression bounded by (γ+1)/(γ−1) = 4.
        assert!(res.max_density_ratio < 4.5);
        assert!(res.max_density_ratio > 1.3);
    }

    #[test]
    fn star_in_equilibrium_is_retained() {
        // Level 1 resolves the unit-radius star with ~2 cells: mass and
        // centre stay put to high precision, while the 2-cell density
        // peak unavoidably diffuses tens of percent in the first steps
        // (the bound guards against collapse/explosion, not truncation).
        let res = run_star(1, Vec3::ZERO, 5);
        assert!(res.mass_drift < 1e-8, "mass drift {}", res.mass_drift);
        assert!(
            res.central_density_drift < 0.5,
            "central density drift {}",
            res.central_density_drift
        );
        assert!(res.com_drift < 0.05, "com drift {}", res.com_drift);
    }

    #[test]
    #[ignore = "several minutes: level-2 self-gravitating star"]
    fn star_in_equilibrium_is_retained_at_level2() {
        let res = run_star(2, Vec3::ZERO, 5);
        assert!(res.mass_drift < 1e-8, "mass drift {}", res.mass_drift);
        assert!(
            res.central_density_drift < 0.1,
            "central density drift {}",
            res.central_density_drift
        );
        assert!(res.com_drift < 0.02, "com drift {}", res.com_drift);
    }
}
