//! Dynamic regridding.
//!
//! Octo-Tiger regrids as the binary evolves (the paper's §6.3 timings
//! explicitly exclude "regridding steps ... that also make heavy use of
//! communication"): leaves whose density exceeds a per-level threshold
//! refine (conservative prolongation), refined nodes whose children
//! have all dropped below it coarsen (conservative restriction), and
//! 2:1 balance is re-established by the tree machinery itself.

use octree::subgrid::Field;
use octree::tree::Octree;
use util::morton::MortonKey;

/// Density-threshold refinement control.
#[derive(Debug, Clone, Copy)]
pub struct RegridPolicy {
    /// Refine a leaf at level `l` when its peak density exceeds
    /// `rho_ref * ratio^(l - base_level)`.
    pub rho_ref: f64,
    /// Per-level threshold growth (> 1: deeper levels need denser gas).
    pub ratio: f64,
    /// Level at which `rho_ref` applies directly.
    pub base_level: u8,
    /// Hard refinement ceiling.
    pub max_level: u8,
    /// Coarsen when the parent's peak density falls below this fraction
    /// of the refine threshold (hysteresis to avoid flip-flopping).
    pub coarsen_fraction: f64,
}

impl RegridPolicy {
    /// Threshold at a given level.
    pub fn threshold(&self, level: u8) -> f64 {
        self.rho_ref * self.ratio.powi(level as i32 - self.base_level as i32)
    }
}

/// Outcome of one regrid pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegridStats {
    pub refined: usize,
    pub coarsened: usize,
}

/// Peak interior density of a leaf.
fn peak_density(tree: &Octree, key: MortonKey) -> f64 {
    let grid = tree.node(key).expect("leaf").grid.as_ref().expect("grid");
    let mut peak = 0.0f64;
    for (i, j, k) in grid.indexer().interior() {
        peak = peak.max(grid.at(Field::Rho, i, j, k));
    }
    peak
}

/// One regrid sweep: refine hot leaves, coarsen cold families.
/// Conservation: prolongation and restriction are the conservative
/// operators of `octree::prolong`, so every conserved total is
/// preserved to round-off across the pass (asserted by tests).
pub fn regrid(tree: &mut Octree, policy: &RegridPolicy) -> RegridStats {
    let mut stats = RegridStats::default();

    // Refinement pass (may cascade via 2:1 balance; iterate to fixed
    // point like Octree::refine_where but density-driven).
    loop {
        let to_refine: Vec<MortonKey> = tree
            .leaves()
            .into_iter()
            .filter(|k| k.level < policy.max_level)
            .filter(|k| peak_density(tree, *k) > policy.threshold(k.level))
            .collect();
        if to_refine.is_empty() {
            break;
        }
        for key in to_refine {
            if tree.is_leaf(key) {
                tree.refine(key);
                stats.refined += 1;
            }
        }
    }

    // Coarsening pass: a refined node whose children are all leaves and
    // all below the hysteresis threshold collapses. One sweep only —
    // deeper collapse happens over subsequent calls, keeping each pass
    // cheap and balance-safe.
    let candidates: Vec<MortonKey> = tree
        .leaves()
        .into_iter()
        .filter_map(|k| k.parent())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for parent in candidates {
        let Some(node) = tree.node(parent) else { continue };
        if !node.refined {
            continue;
        }
        let all_cold_leaves = (0..8u8).all(|o| {
            let child = parent.child(o);
            tree.is_leaf(child)
                && peak_density(tree, child)
                    < policy.threshold(child.level) * policy.coarsen_fraction
        });
        if !all_cold_leaves {
            continue;
        }
        // Balance: coarsening must not put a level-(l) leaf next to
        // level-(l+2) leaves; Octree::coarsen asserts this, so probe
        // first via a conservative check on the neighbors.
        let safe = octree::tree::DIRECTIONS.iter().all(|&(dx, dy, dz)| {
            match parent.neighbor(dx, dy, dz) {
                None => true,
                Some(nk) => match tree.node(nk) {
                    None => true,
                    Some(n) => {
                        !n.refined
                            || (0..8u8).all(|o| tree.is_leaf(nk.child(o)))
                    }
                },
            }
        });
        if safe {
            tree.coarsen(parent);
            stats.coarsened += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use octree::geometry::Domain;

    fn policy() -> RegridPolicy {
        RegridPolicy {
            rho_ref: 1.0,
            ratio: 4.0,
            base_level: 1,
            max_level: 3,
            coarsen_fraction: 0.5,
        }
    }

    fn paint_blob(tree: &mut Octree, amplitude: f64) {
        let domain = tree.domain();
        for key in tree.leaves() {
            let node = tree.node_mut(key).unwrap();
            let grid = node.grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                grid.set(Field::Rho, i, j, k, amplitude * (-c.norm2()).exp() + 1e-6);
            }
        }
        tree.restrict_all();
    }

    #[test]
    fn hot_blob_triggers_refinement() {
        let mut tree = Octree::new(Domain::new(16.0));
        tree.refine_where(1, |_d, _k| true);
        paint_blob(&mut tree, 100.0);
        let before = tree.leaf_count();
        let stats = regrid(&mut tree, &policy());
        assert!(stats.refined > 0, "blob must refine");
        assert!(tree.leaf_count() > before);
        tree.check_invariants();
        // The deepest leaves sit on the blob.
        let domain = tree.domain();
        for k in tree.leaves() {
            if k.level == 3 {
                assert!(domain.node_center(k).norm() < 8.0);
            }
        }
    }

    #[test]
    fn regrid_conserves_mass_exactly() {
        let mut tree = Octree::new(Domain::new(16.0));
        tree.refine_where(1, |_d, _k| true);
        paint_blob(&mut tree, 50.0);
        let mass = |t: &Octree| -> f64 {
            t.leaves()
                .iter()
                .map(|k| {
                    t.node(*k).unwrap().grid.as_ref().unwrap().interior_sum(Field::Rho)
                        * t.domain().cell_volume(k.level)
                })
                .sum()
        };
        let before = mass(&tree);
        regrid(&mut tree, &policy());
        let after = mass(&tree);
        assert!(
            (after - before).abs() < 1e-12 * before,
            "regrid broke conservation: {before} -> {after}"
        );
    }

    #[test]
    fn cooled_region_coarsens_back() {
        let mut tree = Octree::new(Domain::new(16.0));
        tree.refine_where(1, |_d, _k| true);
        paint_blob(&mut tree, 100.0);
        regrid(&mut tree, &policy());
        let refined_count = tree.leaf_count();
        // "Cool" the gas: densities drop far below all thresholds.
        paint_blob(&mut tree, 1e-4);
        // Several sweeps to collapse level by level.
        let mut total_coarsened = 0;
        for _ in 0..4 {
            total_coarsened += regrid(&mut tree, &policy()).coarsened;
        }
        assert!(total_coarsened > 0, "cold gas must coarsen");
        assert!(tree.leaf_count() < refined_count);
        tree.check_invariants();
    }

    #[test]
    fn thresholds_grow_with_level() {
        let p = policy();
        assert!(p.threshold(2) > p.threshold(1));
        assert_eq!(p.threshold(1), 1.0);
        assert_eq!(p.threshold(2), 4.0);
    }

    #[test]
    fn stable_configuration_is_a_fixed_point() {
        let mut tree = Octree::new(Domain::new(16.0));
        tree.refine_where(1, |_d, _k| true);
        paint_blob(&mut tree, 100.0);
        regrid(&mut tree, &policy());
        let leaves = tree.leaf_count();
        let stats = regrid(&mut tree, &policy());
        assert_eq!(stats, RegridStats::default(), "second pass must be a no-op");
        assert_eq!(tree.leaf_count(), leaves);
    }
}
