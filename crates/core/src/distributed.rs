//! Distributed time-stepping over the parcelport cluster.
//!
//! Octo-Tiger distributes the octree's sub-grids across localities
//! along the space filling curve and exchanges halo data, FMM boundary
//! multipoles, and the global CFL reduction as HPX parcels (paper §4.2,
//! §5.2). [`DistributedDriver`] reproduces that structure over the
//! simulated [`Cluster`]: each locality owns a contiguous SFC chunk of
//! leaves ([`ShardMap`]), runs the futurized TVD-RK2 stage on its own
//! shard, and talks to the other shards only through typed parcels over
//! the configured transport (MPI-sim or libfabric-sim):
//!
//! * [`HALO_ACTION`] — a `GridMsg` carrying one leaf's interior cells
//!   (the halo *push*: sources ship interiors, receivers re-run the
//!   ghost fill locally),
//! * [`MOMENT_ACTION`] — a `MomentMsg` carrying one leaf's P2M
//!   multipole moments (the FMM boundary exchange: every locality
//!   rebuilds the full moment tree from the broadcast leaf moments and
//!   solves only its own targets),
//! * the per-step dt min-reduce and the end-of-step quiescence barrier
//!   ride the [`parcelport::collectives`] machinery.
//!
//! **Bit-identity.** The distributed solve is bit-identical to
//! [`crate::driver::Simulation`] at any locality count over either
//! transport, by construction:
//!
//! 1. every mirror starts as an exact clone of the scenario tree;
//! 2. both drivers run the *same* per-leaf kernels
//!    (`driver::leaf_signal_dt` / `driver::leaf_rhs` /
//!    `driver::apply_stage1` / `driver::apply_stage2`) on identical
//!    inputs;
//! 3. the wire codec round-trips `f64` bit patterns exactly, received
//!    messages are merged by key (never by arrival order), and every
//!    fold is ordered along the SFC — the min-reduce is exact because
//!    `f64::min` over positive finite per-shard minima of contiguous
//!    chunks equals the global ordered fold;
//! 4. the restricted FMM walk visits a target's whole ancestor chain,
//!    so per-shard fields equal the full solve's per leaf (test-proven
//!    in `gravity::solver`).
//!
//! **Fault tolerance.** Every phase is crash-aware: quiescence waits
//! and collectives surface [`util::Error::LocalityCrashed`] when the
//! cluster's fault layer reports a dead locality, so `step` returns an
//! error instead of hanging. [`DistributedDriver::checkpoint`] cuts a
//! digest-protected snapshot of the global state between steps and
//! [`DistributedDriver::restore`] resurrects it — on a cluster of any
//! locality count — bit-identically (see [`crate::checkpoint`]).
//!
//! One driver owns its cluster's action space ([`HALO_ACTION`],
//! [`MOMENT_ACTION`], and the collectives' reduce action): build a
//! fresh cluster per driver.

use crate::config::Config;
use crate::driver::{apply_stage1, apply_stage2, leaf_rhs, leaf_signal_dt};
use crate::scenario::Scenario;
use amt::trace::{self, TraceCategory};
use amt::{when_all, Counter, GlobalId};
use gravity::multipole::Multipole;
use gravity::solver::{leaf_moments, moments_from_leaf_moments, FmmSolver, GravityField};
use hydro::flux::StateVec;
use hydro::rotating::RotatingFrame;
use hydro::step::HydroStepper;
use octree::halo::{fill_halos_for_leaves, BoundaryCondition};
use octree::shard::ShardMap;
use octree::subgrid::SubGrid;
use crate::checkpoint::{self, CheckpointBody, CHECKPOINT_VERSION};
use bytes::Bytes;
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::collectives::{self, Collectives};
use parcelport::parcel::{ActionHandle, ActionId, Parcel};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use util::morton::MortonKey;
use util::{Error, Result};

/// Action carrying one leaf's interior cells to a neighbor shard.
pub const HALO_ACTION: ActionId = ActionId(0xD05);
/// Action broadcasting one leaf's P2M moments to every other shard.
pub const MOMENT_ACTION: ActionId = ActionId(0xD06);

/// One leaf's interior cells on the wire (the halo push). `values` is
/// the `SubGrid::extract_interior` layout: all 14 fields, interior
/// iteration order, `f64` bit patterns preserved by the codec.
struct GridMsg {
    from: u32,
    key: MortonKey,
    values: Vec<f64>,
}

serde::impl_codec_struct!(GridMsg { from, key, values });

/// One leaf's per-cell multipole moments on the wire (the FMM boundary
/// exchange).
struct MomentMsg {
    from: u32,
    key: MortonKey,
    cells: Vec<Multipole>,
}

serde::impl_codec_struct!(MomentMsg { from, key, cells });

type Inbox<T> = Arc<Vec<Mutex<Vec<T>>>>;

/// The distributed TVD-RK2 driver: one octree shard per locality,
/// exchanged over the cluster's transport.
pub struct DistributedDriver {
    cluster: Arc<Cluster>,
    coll: Arc<Collectives>,
    shard: ShardMap,
    /// `push_plan[src][dst]` = leaves `src` ships to `dst` per exchange.
    push_plan: Vec<BTreeMap<u32, Vec<MortonKey>>>,
    /// Per-locality full-tree mirrors; only a mirror's *owned* leaves
    /// are authoritative, the rest hold the interiors last pushed to it.
    mirrors: Vec<Arc<Octree>>,
    halo_inbox: Inbox<GridMsg>,
    moment_inbox: Inbox<MomentMsg>,
    halo_action: ActionHandle<GridMsg>,
    moment_action: ActionHandle<MomentMsg>,
    /// AGAS ids of the per-shard owner components (resident on their
    /// locality, recorded as remote everywhere else).
    shard_ids: Vec<GlobalId>,
    expected_halo_inbound: Vec<usize>,
    expected_moment_inbound: Vec<usize>,
    pub config: Config,
    stepper: HydroStepper,
    solver: Option<Arc<FmmSolver>>,
    frame: RotatingFrame,
    /// Simulated time (code units).
    pub time: f64,
    /// Steps taken.
    pub steps: u64,
    /// Sub-grids processed (leaves × steps) — the paper's throughput
    /// metric.
    pub subgrids_processed: u64,
    /// dt of every completed step, in order (checkpointed, so a
    /// restored run's per-step dts line up with the uninterrupted one).
    pub dt_history: Vec<f64>,
    /// Fresh ids for collectives (reductions and barriers).
    seq: u64,
    halo_bytes: Counter,
    halo_parcels: Counter,
    moment_bytes: Counter,
    moment_parcels: Counter,
}

impl DistributedDriver {
    /// Partition `scenario`'s tree over `cluster` and wire the exchange
    /// actions. Registers [`HALO_ACTION`], [`MOMENT_ACTION`], and the
    /// collectives on every locality — one driver per cluster.
    pub fn new(scenario: Scenario, cluster: Arc<Cluster>) -> Result<DistributedDriver> {
        scenario.config.validate();
        let mut config = scenario.config;
        // Cluster-level knob overrides win over the scenario's, so one
        // builder call configures every locality's solver. The chain
        // (and the shared normalization) lives in `config::knobs`.
        use crate::config::knobs;
        config.fmm_chunk_cells =
            knobs::FMM_CHUNK_CELLS.resolve(cluster.fmm_chunk_cells(), config.fmm_chunk_cells);
        config.fmm_agg_slots =
            knobs::FMM_AGG_SLOTS.resolve(cluster.fmm_agg_slots(), config.fmm_agg_slots);
        config.fmm_agg_window =
            knobs::FMM_AGG_WINDOW.resolve(cluster.fmm_agg_window(), config.fmm_agg_window);
        let tree = scenario.tree;
        let n = cluster.len();
        let shard = ShardMap::partition(&tree, n)?;
        let push_plan = shard.halo_push_plan(&tree);
        let total = shard.n_leaves();

        let mut expected_halo_inbound = vec![0usize; n];
        for by_dst in &push_plan {
            for (&dst, keys) in by_dst {
                expected_halo_inbound[dst as usize] += keys.len();
            }
        }
        let expected_moment_inbound: Vec<usize> = (0..n)
            .map(|loc| total - shard.owned(loc as u32).len())
            .collect();

        let mirrors: Vec<Arc<Octree>> = (0..n).map(|_| Arc::new(tree.clone())).collect();

        // AGAS: register each shard's owner component on its locality
        // and record it as remote on every other, so parcels address a
        // resolvable global id rather than a raw rank.
        let mut shard_ids = Vec::with_capacity(n);
        for loc in 0..n {
            let owned: Vec<MortonKey> = shard.owned(loc as u32).to_vec();
            let id = cluster.locality(loc).runtime().agas().register(Arc::new(owned));
            shard_ids.push(id);
        }
        for loc in 0..n {
            for (owner, &id) in shard_ids.iter().enumerate() {
                if owner != loc {
                    cluster.locality(loc).runtime().agas().record_remote(id, owner as u32);
                }
            }
        }

        // Inbox pattern: handlers only stash decoded messages; the host
        // applies them post-quiescence, so no handler ever touches a
        // mirror and `Arc::get_mut` never races a task.
        let halo_inbox: Inbox<GridMsg> =
            Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let moment_inbox: Inbox<MomentMsg> =
            Arc::new((0..n).map(|_| Mutex::new(Vec::new())).collect());
        let halo_action = {
            let inbox = Arc::clone(&halo_inbox);
            cluster.register_action(HALO_ACTION, move |rt, id, msg: GridMsg| {
                debug_assert!(rt.agas().is_local(id), "halo parcel landed off-shard");
                inbox[rt.locality() as usize].lock().expect("halo inbox").push(msg);
            })
        };
        let moment_action = {
            let inbox = Arc::clone(&moment_inbox);
            cluster.register_action(MOMENT_ACTION, move |rt, id, msg: MomentMsg| {
                debug_assert!(rt.agas().is_local(id), "moment parcel landed off-shard");
                inbox[rt.locality() as usize].lock().expect("moment inbox").push(msg);
            })
        };
        let coll = Collectives::register(&cluster);

        let m = cluster.metrics();
        Ok(DistributedDriver {
            halo_bytes: m.counter("driver/halo/bytes_tx"),
            halo_parcels: m.counter("driver/halo/parcels_tx"),
            moment_bytes: m.counter("driver/moments/bytes_tx"),
            moment_parcels: m.counter("driver/moments/parcels_tx"),
            cluster,
            coll,
            shard,
            push_plan,
            mirrors,
            halo_inbox,
            moment_inbox,
            halo_action,
            moment_action,
            shard_ids,
            expected_halo_inbound,
            expected_moment_inbound,
            config,
            stepper: HydroStepper::new(config.eos),
            solver: config.gravity.then(|| {
                Arc::new(
                    FmmSolver::new(config.theta)
                        .with_chunk_cells(config.fmm_chunk_cells)
                        .with_aggregation(config.fmm_agg_slots, config.fmm_agg_window),
                )
            }),
            frame: RotatingFrame::new(config.omega),
            time: 0.0,
            steps: 0,
            subgrids_processed: 0,
            dt_history: Vec::new(),
            seq: 0,
        })
    }

    /// The cluster this driver runs over.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The effective FMM same-level chunk size of every locality's
    /// solver (`None` when gravity is off). Reflects the cluster-level
    /// override when one was set.
    pub fn fmm_chunk_cells(&self) -> Option<usize> {
        self.solver.as_ref().map(|s| s.chunk_cells())
    }

    /// The effective work-aggregation thresholds of every locality's
    /// solver (`None` when gravity is off). Reflects cluster-level
    /// overrides when set.
    pub fn fmm_aggregation(&self) -> Option<gravity::gpu::AggregationConfig> {
        self.solver.as_ref().map(|s| s.agg_config())
    }

    /// The leaf → locality assignment.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shard
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Ghost fill of every shard's owned leaves on its own mirror (the
    /// cross-shard interiors those fills sample were pushed by the last
    /// interior exchange; at t = 0 the mirrors are exact clones).
    fn fill_owned_halos(&mut self, bc: BoundaryCondition) {
        let _span = trace::span(TraceCategory::HaloFill);
        for loc in 0..self.cluster.len() {
            fill_halos_for_leaves(
                &mut self.mirrors[loc],
                self.shard.owned(loc as u32),
                bc,
                self.cluster.locality(loc).runtime(),
            );
        }
    }

    /// Futurized per-shard CFL minimum: one task per owned leaf on the
    /// shard's runtime, ordered fold over the SFC-ordered results.
    fn local_min_dt(&self, loc: usize) -> f64 {
        let rt = self.cluster.locality(loc).runtime();
        let mut futs = Vec::new();
        for &key in self.shard.owned(loc as u32) {
            let tree = Arc::clone(&self.mirrors[loc]);
            let stepper = self.stepper;
            let cfl = self.config.cfl;
            futs.push(rt.async_call(move || leaf_signal_dt(&tree, key, stepper, cfl)));
        }
        let sched = Arc::clone(rt.scheduler());
        let dts = when_all(&sched, futs).get_help(&sched);
        rt.wait_quiescent();
        dts.into_iter().fold(f64::INFINITY, f64::min)
    }

    /// FMM boundary exchange + restricted solve. Every locality P2Ms
    /// its owned leaves, broadcasts them as [`MomentMsg`] parcels,
    /// rebuilds the complete moment tree (merge by key), and runs the
    /// restricted FMM walk over its own targets only.
    fn exchange_and_solve_gravity(&mut self) -> Result<Vec<Option<Arc<GravityField>>>> {
        let n = self.cluster.len();
        let Some(solver) = self.solver.clone() else {
            return Ok(vec![None; n]);
        };
        let exchange_span = trace::span(TraceCategory::MomentExchange);
        // P2M on owned leaves.
        let mut own: Vec<HashMap<MortonKey, Arc<Vec<Multipole>>>> = Vec::with_capacity(n);
        for loc in 0..n {
            let tree = &self.mirrors[loc];
            let mut m = HashMap::new();
            for &key in self.shard.owned(loc as u32) {
                m.insert(key, Arc::new(leaf_moments(tree, key)));
            }
            own.push(m);
        }
        // Broadcast each shard's leaf moments to every other locality.
        for src in 0..n {
            for &key in self.shard.owned(src as u32) {
                let msg = MomentMsg {
                    from: src as u32,
                    key,
                    cells: own[src][&key].as_ref().clone(),
                };
                // Serialize once per key; every destination shares the
                // same (cheaply cloned) buffer.
                let payload = self.moment_action.encode(&msg)?;
                for dst in 0..n {
                    if dst == src {
                        continue;
                    }
                    self.moment_parcels.increment();
                    self.moment_bytes
                        .add((Parcel::HEADER_BYTES + payload.len()) as u64);
                    self.cluster.locality(src).send_encoded(
                        self.moment_action,
                        dst as u32,
                        self.shard_ids[dst],
                        payload.clone(),
                    )?;
                }
            }
        }
        self.cluster.try_wait_quiescent()?;
        drop(exchange_span);
        let _solve_span = trace::span(TraceCategory::GravitySolve);
        // Rebuild the full moment tree per locality and solve the shard.
        let mut fields = Vec::with_capacity(n);
        for (loc, mut leaf_map) in own.into_iter().enumerate() {
            let msgs: Vec<MomentMsg> = {
                let mut inbox = self.moment_inbox[loc].lock().expect("moment inbox");
                std::mem::take(&mut *inbox)
            };
            if msgs.len() != self.expected_moment_inbound[loc] {
                return Err(Error::Driver(format!(
                    "locality {loc} received {} moment messages, expected {}",
                    msgs.len(),
                    self.expected_moment_inbound[loc]
                )));
            }
            for msg in msgs {
                leaf_map.insert(msg.key, Arc::new(msg.cells));
            }
            if leaf_map.len() != self.shard.n_leaves() {
                return Err(Error::Driver(format!(
                    "locality {loc} assembled {} leaf moments, expected {}",
                    leaf_map.len(),
                    self.shard.n_leaves()
                )));
            }
            let moments = Arc::new(moments_from_leaf_moments(&self.mirrors[loc], leaf_map));
            let field = solver.solve_restricted_parallel(
                &self.mirrors[loc],
                &moments,
                self.shard.owned(loc as u32),
                self.cluster.locality(loc).runtime(),
            );
            fields.push(Some(Arc::new(field)));
        }
        Ok(fields)
    }

    /// Futurized RHS of every shard's owned leaves: tasks are launched
    /// on *all* localities first, then collected, so shards overlap.
    fn compute_rhs(
        &self,
        grav: &[Option<Arc<GravityField>>],
    ) -> Vec<HashMap<MortonKey, Vec<StateVec>>> {
        let n = self.cluster.len();
        let mut pending = Vec::with_capacity(n);
        for loc in 0..n {
            let rt = self.cluster.locality(loc).runtime();
            let mut futs = Vec::new();
            for &key in self.shard.owned(loc as u32) {
                let tree = Arc::clone(&self.mirrors[loc]);
                let g = grav[loc].clone();
                let stepper = self.stepper;
                let frame = self.frame;
                futs.push(rt.async_call(move || {
                    let _span =
                        trace::span_labeled(TraceCategory::HydroRhs, || format!("{key:?}"));
                    (key, leaf_rhs(&tree, key, g.as_deref(), stepper, frame))
                }));
            }
            pending.push(futs);
        }
        let mut out = Vec::with_capacity(n);
        for (loc, futs) in pending.into_iter().enumerate() {
            let rt = self.cluster.locality(loc).runtime();
            let sched = Arc::clone(rt.scheduler());
            let map: HashMap<MortonKey, Vec<StateVec>> =
                when_all(&sched, futs).get_help(&sched).into_iter().collect();
            // Tasks still hold mirror Arcs until fully retired; drain
            // them so the apply phase's Arc::get_mut cannot race.
            rt.wait_quiescent();
            out.push(map);
        }
        out
    }

    /// Push every cross-shard halo source's interior per the static
    /// plan, then apply inbound interiors sorted by key.
    fn exchange_interiors(&mut self) -> Result<()> {
        let _span = trace::span(TraceCategory::HaloExchange);
        let n = self.cluster.len();
        for src in 0..n {
            for dst in 0..n as u32 {
                let Some(keys) = self.push_plan[src].get(&dst) else { continue };
                for &key in keys {
                    let grid = self.mirrors[src]
                        .node(key)
                        .expect("planned leaf")
                        .grid
                        .as_ref()
                        .expect("grid");
                    let msg =
                        GridMsg { from: src as u32, key, values: grid.extract_interior() };
                    let payload = self.halo_action.encode(&msg)?;
                    self.halo_parcels.increment();
                    self.halo_bytes
                        .add((Parcel::HEADER_BYTES + payload.len()) as u64);
                    self.cluster.locality(src).send_encoded(
                        self.halo_action,
                        dst,
                        self.shard_ids[dst as usize],
                        payload,
                    )?;
                }
            }
        }
        self.cluster.try_wait_quiescent()?;
        for loc in 0..n {
            let mut msgs: Vec<GridMsg> = {
                let mut inbox = self.halo_inbox[loc].lock().expect("halo inbox");
                std::mem::take(&mut *inbox)
            };
            if msgs.len() != self.expected_halo_inbound[loc] {
                return Err(Error::Driver(format!(
                    "locality {loc} received {} halo messages, expected {}",
                    msgs.len(),
                    self.expected_halo_inbound[loc]
                )));
            }
            // Keys are globally unique; sorting makes the write order
            // deterministic regardless of arrival order.
            msgs.sort_by_key(|m| m.key);
            let tree = Arc::get_mut(&mut self.mirrors[loc])
                .expect("no outstanding mirror references between stages");
            for msg in msgs {
                let node = tree
                    .node_mut(msg.key)
                    .ok_or_else(|| Error::Driver(format!("{:?} not in mirror {loc}", msg.key)))?;
                node.grid.as_mut().expect("grid").apply_interior(&msg.values);
            }
        }
        Ok(())
    }

    fn apply_stage1_all(
        &mut self,
        rhs: &[HashMap<MortonKey, Vec<StateVec>>],
        dt: f64,
        floors: bool,
    ) -> Vec<HashMap<MortonKey, SubGrid>> {
        let stepper = self.stepper;
        let mut olds = Vec::with_capacity(self.cluster.len());
        for loc in 0..self.cluster.len() {
            let mut old = HashMap::new();
            let tree = Arc::get_mut(&mut self.mirrors[loc])
                .expect("no outstanding mirror references between stages");
            for &key in self.shard.owned(loc as u32) {
                let node = tree.node_mut(key).expect("leaf");
                let grid = node.grid.as_mut().expect("grid");
                old.insert(key, apply_stage1(stepper, grid, &rhs[loc][&key], dt, floors));
            }
            olds.push(old);
        }
        olds
    }

    fn apply_stage2_all(
        &mut self,
        old: &[HashMap<MortonKey, SubGrid>],
        rhs: &[HashMap<MortonKey, Vec<StateVec>>],
        dt: f64,
        floors: bool,
    ) {
        let stepper = self.stepper;
        for loc in 0..self.cluster.len() {
            let tree = Arc::get_mut(&mut self.mirrors[loc])
                .expect("no outstanding mirror references between stages");
            for &key in self.shard.owned(loc as u32) {
                let node = tree.node_mut(key).expect("leaf");
                let grid = node.grid.as_mut().expect("grid");
                apply_stage2(stepper, grid, &old[loc][&key], &rhs[loc][&key], dt, floors);
            }
        }
    }

    /// Advance one TVD-RK2 step; returns the dt taken.
    ///
    /// Phases: owned ghost fill → distributed CFL min-reduce → moment
    /// exchange + restricted FMM → stage-1 RHS/apply → interior
    /// exchange → owned ghost fill → moment exchange + FMM → stage-2
    /// RHS/apply → interior exchange → quiescence barrier.
    pub fn step(&mut self) -> Result<f64> {
        let _step_span =
            trace::span_labeled(TraceCategory::Step, || format!("step {}", self.steps));
        let bc = self.config.bc;
        let floors = self.config.floors;
        let n = self.cluster.len();

        self.fill_owned_halos(bc);

        // Distributed CFL: per-shard ordered minima (contiguous SFC
        // chunks) min-reduced over the wire — bit-equal to the global
        // ordered fold because f64::min is associative on the positive
        // finite dts.
        let dt = {
            let _span = trace::span(TraceCategory::DtReduce);
            let local_dts: Vec<f64> = (0..n).map(|loc| self.local_min_dt(loc)).collect();
            let seq = self.next_seq();
            collectives::allreduce_wire(&self.cluster, &self.coll, seq, &local_dts, f64::min)?
        };
        if !(dt.is_finite() && dt > 0.0) {
            return Err(Error::Driver(format!("CFL produced dt = {dt}")));
        }

        // Stage 1.
        let grav = self.exchange_and_solve_gravity()?;
        let rhs1 = self.compute_rhs(&grav);
        let old = self.apply_stage1_all(&rhs1, dt, floors);
        self.exchange_interiors()?;

        // Stage 2.
        self.fill_owned_halos(bc);
        let grav2 = self.exchange_and_solve_gravity()?;
        let rhs2 = self.compute_rhs(&grav2);
        self.apply_stage2_all(&old, &rhs2, dt, floors);
        self.exchange_interiors()?;

        // Per-step quiescence barrier: every locality checks in and the
        // fabric drains before the step is declared done. (Mirrors skip
        // the per-step restrict_all — refined-node grids are derived
        // data no step phase reads; `assemble` restricts once.)
        {
            let _span = trace::span(TraceCategory::Barrier);
            let seq = self.next_seq();
            collectives::barrier(&self.cluster, &self.coll, seq)?;
        }

        self.time += dt;
        self.steps += 1;
        self.subgrids_processed += self.shard.n_leaves() as u64;
        self.dt_history.push(dt);
        Ok(dt)
    }

    /// Run `n` steps (or until `t_end`); returns the time advanced.
    pub fn run(&mut self, n: usize, t_end: f64) -> Result<f64> {
        let t0 = self.time;
        for _ in 0..n {
            if self.time >= t_end {
                break;
            }
            self.step()?;
        }
        Ok(self.time - t0)
    }

    /// Gather the owned leaves of every shard into one global tree
    /// (grids cloned whole, ghosts included) and restrict upward —
    /// bitwise comparable to the reference `Simulation`'s tree.
    pub fn assemble(&self) -> Octree {
        let mut out = (*self.mirrors[0]).clone();
        for shard in 0..self.shard.n_shards() {
            for &key in self.shard.owned(shard as u32) {
                let grid = self.mirrors[shard]
                    .node(key)
                    .expect("leaf")
                    .grid
                    .clone()
                    .expect("grid");
                out.node_mut(key).expect("leaf").grid = Some(grid);
            }
        }
        out.restrict_all();
        out
    }

    /// Snapshot the global simulation state into a versioned,
    /// digest-protected blob (see [`crate::checkpoint`]). Cut between
    /// steps — typically right after a successful
    /// [`DistributedDriver::step`]; the caller keeps the blob wherever
    /// it likes (memory, disk) and hands it back to
    /// [`DistributedDriver::restore`].
    pub fn checkpoint(&self) -> Result<Bytes> {
        let total = self.shard.n_leaves();
        let mut keys = Vec::with_capacity(total);
        let mut interiors = Vec::with_capacity(total);
        for shard in 0..self.shard.n_shards() {
            for &key in self.shard.owned(shard as u32) {
                let grid = self.mirrors[shard]
                    .node(key)
                    .ok_or_else(|| {
                        Error::Checkpoint(format!("{key:?} missing from mirror {shard}"))
                    })?
                    .grid
                    .as_ref()
                    .ok_or_else(|| Error::Checkpoint(format!("{key:?} has no grid")))?;
                keys.push(key);
                interiors.push(grid.extract_interior());
            }
        }
        checkpoint::encode(&CheckpointBody {
            version: CHECKPOINT_VERSION,
            steps: self.steps,
            time: self.time,
            seq: self.seq,
            subgrids_processed: self.subgrids_processed,
            dt_history: self.dt_history.clone(),
            keys,
            interiors,
        })
    }

    /// Resurrect a driver from `blob` on a *fresh* `cluster`.
    ///
    /// The cluster may have a different locality count than the one
    /// that wrote the checkpoint: the blob stores leaves, not shards,
    /// so the leaves are simply repartitioned over whatever localities
    /// exist — this is how a crashed locality's shards are re-adopted
    /// by the survivors. `scenario` must be the same scenario the
    /// checkpointed run was built from (same tree topology and config);
    /// its leaf data is overwritten by the checkpoint. The restored
    /// state is bit-identical to the writer's at the moment of the
    /// snapshot, so continuing the run reproduces the uninterrupted
    /// run's per-step dts and grids exactly.
    pub fn restore(
        scenario: Scenario,
        cluster: Arc<Cluster>,
        blob: &Bytes,
    ) -> Result<DistributedDriver> {
        let body = checkpoint::decode(blob)?;
        let mut driver = DistributedDriver::new(scenario, cluster)?;
        let have: BTreeSet<MortonKey> = driver.mirrors[0].leaves().into_iter().collect();
        let stored: BTreeSet<MortonKey> = body.keys.iter().copied().collect();
        if have != stored {
            return Err(Error::Checkpoint(format!(
                "leaf set mismatch: scenario has {} leaves, checkpoint stores {}",
                have.len(),
                stored.len()
            )));
        }
        // Every mirror gets the full global state: owned leaves become
        // authoritative, the rest hold exactly what the interior
        // exchange would have pushed (ghosts are refilled from these
        // interiors at the top of the next step).
        for loc in 0..driver.mirrors.len() {
            let tree = Arc::get_mut(&mut driver.mirrors[loc])
                .expect("fresh mirrors are unshared");
            for (key, values) in body.keys.iter().zip(&body.interiors) {
                let node = tree.node_mut(*key).ok_or_else(|| {
                    Error::Checkpoint(format!("{key:?} missing from mirror {loc}"))
                })?;
                node.grid
                    .as_mut()
                    .ok_or_else(|| Error::Checkpoint(format!("{key:?} has no grid")))?
                    .apply_interior(values);
            }
        }
        driver.steps = body.steps;
        driver.time = body.time;
        driver.seq = body.seq;
        driver.subgrids_processed = body.subgrids_processed;
        driver.dt_history = body.dt_history;
        Ok(driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Simulation;
    use octree::subgrid::{Field, ALL_FIELDS};
    use parcelport::netmodel::TransportKind;

    fn assert_trees_bit_identical(a: &Octree, b: &Octree) {
        assert_eq!(a.leaves(), b.leaves());
        for key in a.leaves() {
            let ga = a.node(key).unwrap().grid.as_ref().unwrap();
            let gb = b.node(key).unwrap().grid.as_ref().unwrap();
            for field in ALL_FIELDS {
                for (i, j, k) in ga.indexer().interior() {
                    assert_eq!(
                        ga.at(field, i, j, k).to_bits(),
                        gb.at(field, i, j, k).to_bits(),
                        "{key:?} {field:?} ({i},{j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn two_localities_match_reference_on_sod() {
        let mut reference = Simulation::new(Scenario::sod(1));
        let cluster = Arc::new(
            Cluster::builder()
                .localities(2)
                .threads_per(2)
                .transport(TransportKind::Mpi)
                .build(),
        );
        let mut dist = DistributedDriver::new(Scenario::sod(1), cluster).unwrap();
        for _ in 0..2 {
            let dt_ref = reference.step();
            let dt = dist.step().unwrap();
            assert_eq!(dt.to_bits(), dt_ref.to_bits());
        }
        assert_trees_bit_identical(&dist.assemble(), reference.tree());
        assert_eq!(dist.steps, 2);
        assert!(dist.subgrids_processed > 0);
        // Cross-shard halo traffic actually went over the wire.
        let m = dist.cluster().metrics();
        assert!(m.get("driver/halo/parcels_tx") > 0);
        assert!(m.get("driver/halo/bytes_tx") > 0);
        assert!(m.get("parcelport/mpi/parcels_tx") > 0);
    }

    #[test]
    fn single_locality_loopback_sends_nothing() {
        let cluster = Arc::new(Cluster::builder().threads_per(2).build());
        let mut dist = DistributedDriver::new(Scenario::sod(1), cluster).unwrap();
        dist.step().unwrap();
        // One shard owns everything: the push plan is empty and no
        // parcels cross the fabric beyond the collectives' loopbacks.
        assert_eq!(dist.cluster().metrics().get("driver/halo/parcels_tx"), 0);
        let t = crate::diagnostics::totals(&dist.assemble(), None);
        assert!(t.mass > 0.0);
    }

    #[test]
    fn driver_surfaces_dt_errors() {
        let mut scenario = Scenario::sod(1);
        // Zero out the state: sound speed 0, dt = inf.
        for key in scenario.tree.leaves() {
            let grid = scenario.tree.node_mut(key).unwrap().grid.as_mut().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                for f in ALL_FIELDS {
                    grid.set(f, i, j, k, 0.0);
                }
                grid.set(Field::Rho, i, j, k, 1.0);
            }
        }
        let cluster = Arc::new(Cluster::builder().localities(2).build());
        let mut dist = DistributedDriver::new(scenario, cluster).unwrap();
        // With zero pressure and velocity the signal speed is 0 — the
        // driver must surface the non-finite dt as an error, not panic.
        match dist.step() {
            Err(Error::Driver(msg)) => assert!(msg.contains("dt")),
            other => panic!("expected a driver error, got {other:?}"),
        }
    }
}
