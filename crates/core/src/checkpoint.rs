//! Versioned, digest-protected checkpoints of the distributed driver.
//!
//! HPX's resilience APIs (`hpx::checkpoint`) serialize a set of
//! components into an opaque blob the application stores wherever it
//! likes and later hands back to resurrect the components. This module
//! is the same contract for [`crate::distributed::DistributedDriver`]:
//! the *global* simulation state — every shard's owned leaf interiors,
//! plus the step/time/seq bookkeeping and the per-step dt history — is
//! encoded with the wire codec (which round-trips `f64` bit patterns
//! exactly, so a restore is bit-identical by construction), then sealed
//! with a version word and an FNV-1a-64 digest of the encoded body.
//!
//! The blob is deliberately *cluster-shape agnostic*: it stores leaves,
//! not shards. Restoring onto a cluster with a different locality count
//! (say, after losing a node) simply repartitions the same leaves over
//! the survivors — the shard re-adoption story — and stays bit-identical
//! because the distributed step is bit-identical at any locality count.

use bytes::Bytes;
use parcelport::serialize::{from_bytes, to_bytes};
use util::morton::MortonKey;
use util::{fnv1a64, Error, Result};

/// Current checkpoint format version. Bump on any layout change; a
/// mismatched version fails decode with [`Error::Checkpoint`] instead
/// of misinterpreting bytes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Bytes of the FNV-1a-64 digest trailing the encoded body.
const DIGEST_BYTES: usize = 8;

/// The decoded checkpoint payload.
#[derive(Debug)]
pub struct CheckpointBody {
    /// Format version ([`CHECKPOINT_VERSION`] at write time).
    pub version: u32,
    /// Steps taken when the checkpoint was cut.
    pub steps: u64,
    /// Simulated time (code units).
    pub time: f64,
    /// Collectives sequence counter (reduction/barrier ids continue
    /// from here after a restore).
    pub seq: u64,
    /// Sub-grids processed (the paper's throughput metric).
    pub subgrids_processed: u64,
    /// dt of every completed step, in order.
    pub dt_history: Vec<f64>,
    /// Leaf keys, parallel to `interiors`.
    pub keys: Vec<MortonKey>,
    /// Per-leaf interior cells in `SubGrid::extract_interior` layout.
    pub interiors: Vec<Vec<f64>>,
}

serde::impl_codec_struct!(CheckpointBody {
    version,
    steps,
    time,
    seq,
    subgrids_processed,
    dt_history,
    keys,
    interiors
});

/// Encode `body` and seal it with its digest.
pub fn encode(body: &CheckpointBody) -> Result<Bytes> {
    let encoded = to_bytes(body)?;
    let mut out = Vec::with_capacity(encoded.len() + DIGEST_BYTES);
    out.extend_from_slice(&encoded);
    out.extend_from_slice(&fnv1a64(&encoded).to_le_bytes());
    Ok(Bytes::from(out))
}

/// Verify the digest and version of `bytes` and decode the body.
pub fn decode(bytes: &Bytes) -> Result<CheckpointBody> {
    if bytes.len() < DIGEST_BYTES {
        return Err(Error::Checkpoint(format!(
            "truncated: {} bytes cannot hold a digest",
            bytes.len()
        )));
    }
    let split = bytes.len() - DIGEST_BYTES;
    let body = bytes.slice(0..split);
    let mut stored = [0u8; DIGEST_BYTES];
    stored.copy_from_slice(&bytes[split..]);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a64(&body);
    if stored != computed {
        return Err(Error::Checkpoint(format!(
            "digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    let body: CheckpointBody = from_bytes(&body)
        .map_err(|e| Error::Checkpoint(format!("body decode failed: {e}")))?;
    if body.version != CHECKPOINT_VERSION {
        return Err(Error::Checkpoint(format!(
            "version {} unsupported (this build reads {})",
            body.version, CHECKPOINT_VERSION
        )));
    }
    if body.keys.len() != body.interiors.len() {
        return Err(Error::Checkpoint(format!(
            "{} keys but {} interiors",
            body.keys.len(),
            body.interiors.len()
        )));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointBody {
        CheckpointBody {
            version: CHECKPOINT_VERSION,
            steps: 3,
            time: 0.125,
            seq: 9,
            subgrids_processed: 24,
            dt_history: vec![0.5, 0.25, 0.125],
            keys: vec![MortonKey::root().child(0), MortonKey::root().child(1)],
            interiors: vec![vec![1.0, -0.0, f64::MIN_POSITIVE], vec![2.0; 4]],
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let body = sample();
        let blob = encode(&body).unwrap();
        let back = decode(&blob).unwrap();
        assert_eq!(back.steps, body.steps);
        assert_eq!(back.time.to_bits(), body.time.to_bits());
        assert_eq!(back.seq, body.seq);
        assert_eq!(back.subgrids_processed, body.subgrids_processed);
        assert_eq!(back.keys, body.keys);
        assert_eq!(back.dt_history.len(), body.dt_history.len());
        for (a, b) in back.dt_history.iter().zip(&body.dt_history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in back.interiors.iter().zip(&body.interiors) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn corruption_is_detected() {
        let blob = encode(&sample()).unwrap();
        for flip in [0, blob.len() / 2, blob.len() - 1] {
            let mut bad = blob.to_vec();
            bad[flip] ^= 0x40;
            let err = decode(&Bytes::from(bad)).unwrap_err();
            assert!(
                matches!(err, Error::Checkpoint(_)),
                "flip at {flip} must fail the digest or decode: {err}"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let blob = encode(&sample()).unwrap();
        for cut in [0usize, 4, blob.len() - 1] {
            let err = decode(&blob.slice(0..cut.min(blob.len()))).unwrap_err();
            assert!(matches!(err, Error::Checkpoint(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut body = sample();
        body.version = CHECKPOINT_VERSION + 1;
        let blob = encode(&body).unwrap();
        let err = decode(&blob).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
