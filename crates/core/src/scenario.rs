//! Scenario builders: the §4.2 verification problems and the V1309
//! production setup.

use crate::config::Config;
use hydro::eos::IdealGas;
use octree::geometry::Domain;
use octree::refine::BinaryRefine;
use octree::subgrid::Field;
use octree::tree::Octree;
use scf::binary::BinaryModel;
use scf::lane_emden::Polytrope;
use util::morton::MortonKey;
use util::vec3::Vec3;

/// A ready-to-run scenario: tree + config (+ the model that built it).
pub struct Scenario {
    pub name: &'static str,
    pub tree: Octree,
    pub config: Config,
    /// The binary model when the scenario is V1309-like.
    pub binary: Option<BinaryModel>,
}

/// Refine every leaf to `level` (uniform grid).
fn uniform_tree(domain: Domain, level: u8) -> Octree {
    let mut t = Octree::new(domain);
    t.refine_where(level, |_d, _k| true);
    t
}

/// Convert painted inertial momenta to the co-rotating frame, where
/// the tidally locked binary is static: zero the momenta and remove the
/// kinetic energy (the internal energy is unchanged).
fn to_corotating(tree: &mut Octree) {
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let rho = grid.at(Field::Rho, i, j, k).max(1e-300);
            let sx = grid.at(Field::Sx, i, j, k);
            let sy = grid.at(Field::Sy, i, j, k);
            let sz = grid.at(Field::Sz, i, j, k);
            let ke = 0.5 * (sx * sx + sy * sy + sz * sz) / rho;
            grid.add(Field::Egas, i, j, k, -ke);
            grid.set(Field::Sx, i, j, k, 0.0);
            grid.set(Field::Sy, i, j, k, 0.0);
            grid.set(Field::Sz, i, j, k, 0.0);
        }
    }
    tree.restrict_all();
}

/// Fill a tree from pointwise (ρ, u, ρε) functions.
fn fill(
    tree: &mut Octree,
    eos: &IdealGas,
    f: impl Fn(Vec3) -> (f64, Vec3, f64),
) {
    let domain = tree.domain();
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let (rho, v, e_int) = f(c);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Sx, i, j, k, rho * v.x);
            grid.set(Field::Sy, i, j, k, rho * v.y);
            grid.set(Field::Sz, i, j, k, rho * v.z);
            grid.set(Field::Egas, i, j, k, e_int + 0.5 * rho * v.norm2());
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e_int));
        }
    }
    tree.restrict_all();
}

impl Scenario {
    /// The Sod shock tube (§4.2 test 1): the classic left/right states
    /// split at x = 0 on a unit-ish domain, γ = 1.4. `level` sets the
    /// uniform resolution (16·2^(level−1) cells across).
    pub fn sod(level: u8) -> Scenario {
        let eos = IdealGas::new(1.4);
        let mut tree = uniform_tree(Domain::new(1.0), level);
        fill(&mut tree, &eos, |c| {
            if c.x < 0.0 {
                (1.0, Vec3::ZERO, eos.e_from_pressure(1.0))
            } else {
                (0.125, Vec3::ZERO, eos.e_from_pressure(0.1))
            }
        });
        Scenario {
            name: "sod",
            tree,
            config: Config { eos, ..Config::hydro_only() },
            binary: None,
        }
    }

    /// The Sedov–Taylor blast wave (§4.2 test 2): energy `e0` deposited
    /// in a small central sphere of a cold uniform medium, γ = 5/3.
    pub fn sedov(level: u8, e0: f64) -> Scenario {
        let eos = IdealGas::monatomic();
        let mut tree = uniform_tree(Domain::new(1.0), level);
        let dx = tree.domain().cell_dx(level);
        let r_inject = 2.0 * dx;
        let vol = 4.0 / 3.0 * std::f64::consts::PI * r_inject.powi(3);
        fill(&mut tree, &eos, |c| {
            let e_bg = 1e-8;
            let e = if c.norm() < r_inject { e0 / vol } else { e_bg };
            (1.0, Vec3::ZERO, e)
        });
        Scenario {
            name: "sedov",
            tree,
            config: Config { eos, ..Config::hydro_only() },
            binary: None,
        }
    }

    /// A single polytropic star in equilibrium at rest (§4.2 test 3):
    /// "we have substituted a single star in equilibrium at rest for
    /// the third test".
    pub fn single_star(level: u8) -> Scenario {
        Self::star_with_velocity(level, Vec3::ZERO, "single_star")
    }

    /// The same star advecting through the grid (§4.2 test 4).
    pub fn moving_star(level: u8, velocity: Vec3) -> Scenario {
        Self::star_with_velocity(level, velocity, "moving_star")
    }

    fn star_with_velocity(level: u8, velocity: Vec3, name: &'static str) -> Scenario {
        let eos = IdealGas::monatomic();
        let star = Polytrope::new(1.0, 1.0, 1.5);
        let mut tree = uniform_tree(Domain::new(8.0), level);
        fill(&mut tree, &eos, |c| {
            let r = c.norm();
            let rho = star.rho(r).max(1e-10);
            let e = star.e_int(r).max(rho * 1e-4);
            (rho, velocity, e)
        });
        Scenario {
            name,
            tree,
            config: Config { eos, ..Config::self_gravitating() },
            binary: None,
        }
    }

    /// The V1309 Scorpii merger scenario (§3, §6) at a given refinement
    /// level, using the paper's refinement rule (stars → L−2, accretor
    /// core → L−1, donor core → L) and the full 1.02e3 R⊙ domain.
    pub fn v1309(level: u8) -> Scenario {
        let model = BinaryModel::v1309();
        let eos = IdealGas::monatomic();
        let rule = BinaryRefine::v1309(level);
        let mut tree = Octree::new(Domain::v1309());
        tree.refine_where(level, |d, k| rule.should_refine(d, k));
        let mut scenario_tree = tree;
        model.paint(&mut scenario_tree, &eos);
        to_corotating(&mut scenario_tree);
        let omega = model.omega;
        Scenario {
            name: "v1309",
            tree: scenario_tree,
            config: Config { eos, ..Config::binary(omega) },
            binary: Some(model),
        }
    }

    /// A scaled-down binary on a small domain (tests and examples):
    /// same code paths, laptop-sized tree.
    pub fn mini_binary(level: u8) -> Scenario {
        let model = BinaryModel::scaled(1.0, 0.3, 3.0);
        let eos = IdealGas::monatomic();
        let mut tree = Octree::new(Domain::new(24.0));
        let p1 = model.primary_pos;
        let p2 = model.secondary_pos;
        let (r1, r2) = (model.primary.radius, model.secondary.radius);
        tree.refine_where(level, move |d, k| {
            let c = d.node_center(k);
            let half = d.node_extent(k.level) / 2.0 * 3f64.sqrt();
            (c - p1).norm() < 1.5 * r1 + half || (c - p2).norm() < 1.5 * r2 + half
        });
        let mut scenario_tree = tree;
        model.paint(&mut scenario_tree, &eos);
        to_corotating(&mut scenario_tree);
        let omega = model.omega;
        Scenario {
            name: "mini_binary",
            tree: scenario_tree,
            config: Config { eos, ..Config::binary(omega) },
            binary: Some(model),
        }
    }
}

/// Keys of all leaves containing a given point (used by examples to
/// probe profiles).
pub fn leaf_containing(tree: &Octree, p: Vec3) -> Option<MortonKey> {
    let domain = tree.domain();
    tree.leaves().into_iter().find(|k| {
        let o = domain.node_origin(*k);
        let e = domain.node_extent(k.level);
        p.x >= o.x && p.x < o.x + e && p.y >= o.y && p.y < o.y + e && p.z >= o.z && p.z < o.z + e
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_has_two_states() {
        let s = Scenario::sod(2);
        s.tree.check_invariants();
        let domain = s.tree.domain();
        let mut left = 0.0f64;
        let mut right = 0.0f64;
        for key in s.tree.leaves() {
            let grid = s.tree.node(key).unwrap().grid.as_ref().unwrap();
            for (i, j, k) in grid.indexer().interior() {
                let c = domain.cell_center(key, i, j, k);
                if c.x < 0.0 {
                    left = left.max(grid.at(Field::Rho, i, j, k));
                } else {
                    right = right.max(grid.at(Field::Rho, i, j, k));
                }
            }
        }
        assert_eq!(left, 1.0);
        assert_eq!(right, 0.125);
    }

    #[test]
    fn sedov_concentrates_energy() {
        let s = Scenario::sedov(2, 1.0);
        let domain = s.tree.domain();
        let mut total_e = 0.0;
        for key in s.tree.leaves() {
            let grid = s.tree.node(key).unwrap().grid.as_ref().unwrap();
            total_e += grid.interior_sum(Field::Egas) * domain.cell_volume(key.level);
        }
        assert!((total_e - 1.0).abs() < 0.5, "injected energy {total_e}");
    }

    #[test]
    fn star_scenarios_differ_only_in_velocity() {
        let at_rest = Scenario::single_star(1);
        let moving = Scenario::moving_star(1, Vec3::new(0.5, 0.0, 0.0));
        let key = at_rest.tree.leaves()[0];
        let g0 = at_rest.tree.node(key).unwrap().grid.as_ref().unwrap();
        let g1 = moving.tree.node(key).unwrap().grid.as_ref().unwrap();
        for (i, j, k) in g0.indexer().interior() {
            assert_eq!(g0.at(Field::Rho, i, j, k), g1.at(Field::Rho, i, j, k));
        }
        assert!(at_rest.config.gravity && moving.config.gravity);
    }

    #[test]
    fn mini_binary_builds_amr_tree() {
        let s = Scenario::mini_binary(3);
        s.tree.check_invariants();
        assert!(s.tree.max_level() == 3);
        assert!(s.config.omega > 0.0);
        assert!(s.binary.is_some());
        // Mass present.
        let domain = s.tree.domain();
        let mut mass = 0.0;
        for key in s.tree.leaves() {
            let grid = s.tree.node(key).unwrap().grid.as_ref().unwrap();
            mass += grid.interior_sum(Field::Rho) * domain.cell_volume(key.level);
        }
        assert!(mass > 0.5, "mass = {mass}");
    }

    #[test]
    fn leaf_containing_finds_the_centre() {
        let s = Scenario::sod(2);
        let key = leaf_containing(&s.tree, Vec3::new(0.01, 0.01, 0.01)).unwrap();
        assert!(s.tree.is_leaf(key));
    }
}
