//! **octotiger** — the integration layer: Octo-Tiger in Rust.
//!
//! "Octo-Tiger simulates the evolution of mass density, momentum, and
//! energy of interacting binary stellar systems from the start of mass
//! transfer to merger. ... To simulate these fluids we need three core
//! components: (1) a hydrodynamics solver, (2) a gravity solver that
//! calculates the gravitational field produced by the fluid
//! distribution, and (3) a solver to generate an initial configuration
//! of the star system" (paper §4.2).
//!
//! This crate composes the substrate crates into the application:
//!
//! * [`config`] — run configuration (EOS, CFL, rotation, gravity).
//! * [`scenario`] — the verification scenarios of §4.2 (Sod,
//!   Sedov–Taylor, single star at rest / in motion) and the V1309
//!   production scenario of §3/§6.
//! * [`driver`] — the timestep loop: halo exchange → FMM gravity →
//!   TVD-RK2 hydro update with gravity/rotating-frame sources, with the
//!   per-leaf work futurized over the `amt` scheduler (the "billions of
//!   HPX tasks" structure at laptop scale).
//! * [`distributed`] — the same step distributed over a simulated
//!   multi-locality cluster: sub-grids sharded along the space filling
//!   curve, halo/multipole exchange and the dt reduction as parcels
//!   over either parcelport, bit-identical to [`driver`].
//! * [`checkpoint`] — versioned, digest-protected snapshots of the
//!   distributed state; a run killed by a locality crash restores from
//!   its latest checkpoint bit-identically (HPX's `hpx::checkpoint`
//!   contract).
//! * [`diagnostics`] — the conserved-quantity monitors behind the
//!   paper's machine-precision conservation claims.
//! * [`regrid`] — dynamic density-driven refinement/coarsening with
//!   conservative data transfer.
//! * [`verification`] — §4.2's test suite as callable checks.

pub mod checkpoint;
pub mod config;
pub mod diagnostics;
pub mod distributed;
pub mod driver;
pub mod regrid;
pub mod scenario;
pub mod verification;

pub use config::Config;
pub use diagnostics::Totals;
pub use distributed::DistributedDriver;
pub use driver::Simulation;
pub use scenario::Scenario;
