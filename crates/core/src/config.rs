//! Run configuration.

use hydro::eos::IdealGas;
use octree::halo::BoundaryCondition;

/// The tunable performance knobs and their one override chain.
///
/// Three channels can set a knob, and before this module each grew its
/// own ad-hoc plumbing. The precedence is now defined in exactly one
/// place — [`Knob::resolve`](crate::config::knobs::Knob::resolve) —
/// and is, from weakest to strongest:
///
/// 1. the built-in default,
/// 2. the environment variable (read once, when the [`Config`] is
///    built — [`Knob::from_env`](crate::config::knobs::Knob::from_env)),
/// 3. the scenario's explicit [`Config`] field,
/// 4. a `ClusterBuilder` override (deployment beats scenario).
///
/// Every channel funnels through the same `normalize` function, so an
/// out-of-range value is clamped identically no matter where it came
/// from.
pub mod knobs {
    /// One tunable: its name, environment variable, default, and the
    /// normalization every override channel passes through.
    pub struct Knob {
        /// The `Config` field name (documentation only).
        pub name: &'static str,
        /// The environment variable that seeds the default.
        pub env: &'static str,
        /// Built-in default (pre-normalization input).
        pub default: usize,
        /// Clamp/round an arbitrary user value into the valid range.
        pub normalize: fn(usize) -> usize,
    }

    /// Target cells per FMM same-level chunk task (rounded to whole
    /// 8-cell rows, clamped to `[8, 512]` by the solver's rule).
    pub const FMM_CHUNK_CELLS: Knob = Knob {
        name: "fmm_chunk_cells",
        env: "FMM_CHUNK_CELLS",
        default: gravity::solver::DEFAULT_CHUNK_CELLS,
        normalize: gravity::solver::normalize_chunk_cells,
    };

    fn at_least_one(n: usize) -> usize {
        n.max(1)
    }

    /// Same-kind work items per fused GPU batch (≥ 1; the pairwise
    /// `window ≥ slots` constraint is enforced when the two knobs meet
    /// in `AggregationConfig::new`).
    pub const FMM_AGG_SLOTS: Knob = Knob {
        name: "fmm_agg_slots",
        env: "FMM_AGG_SLOTS",
        default: gravity::gpu::DEFAULT_AGG_SLOTS,
        normalize: at_least_one,
    };

    /// Total buffered work items (across kinds) before a forced flush.
    pub const FMM_AGG_WINDOW: Knob = Knob {
        name: "fmm_agg_window",
        env: "FMM_AGG_WINDOW",
        default: gravity::gpu::DEFAULT_AGG_WINDOW,
        normalize: at_least_one,
    };

    impl Knob {
        /// The environment channel: parse `self.env`, normalize, fall
        /// back to the (normalized) default when unset or unparsable.
        pub fn from_env(&self) -> usize {
            let parsed = std::env::var(self.env)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok());
            (self.normalize)(parsed.unwrap_or(self.default))
        }

        /// The full chain's last two links: a builder-level override
        /// beats the `Config` value; either way the result is
        /// normalized.
        pub fn resolve(&self, builder_override: Option<usize>, config_value: usize) -> usize {
            (self.normalize)(builder_override.unwrap_or(config_value))
        }
    }
}

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Equation of state.
    pub eos: IdealGas,
    /// CFL number (0, 1).
    pub cfl: f64,
    /// Grid rotation rate about z (0 = inertial frame).
    pub omega: f64,
    /// Whether self-gravity is solved.
    pub gravity: bool,
    /// FMM opening parameter θ.
    pub theta: f64,
    /// Target cells per FMM same-level chunk task (normalized to whole
    /// 8-cell rows by the solver; 512 = one task per node). Override
    /// chain: [`knobs::FMM_CHUNK_CELLS`].
    pub fmm_chunk_cells: usize,
    /// Same-kind kernel work items per fused GPU batch
    /// ([`knobs::FMM_AGG_SLOTS`]; 1 = no batching).
    pub fmm_agg_slots: usize,
    /// Total buffered kernel work items before a forced flush
    /// ([`knobs::FMM_AGG_WINDOW`]).
    pub fmm_agg_window: usize,
    /// Physical boundary condition.
    pub bc: BoundaryCondition,
    /// Scheduler worker threads for the futurized update.
    pub threads: usize,
    /// Positivity floors after each stage (needed for under-resolved
    /// stellar edges; trades exact mass conservation for robustness, so
    /// the machine-precision verification scenarios leave it off).
    pub floors: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            eos: IdealGas::monatomic(),
            cfl: 0.4,
            omega: 0.0,
            gravity: false,
            theta: 0.5,
            fmm_chunk_cells: knobs::FMM_CHUNK_CELLS.from_env(),
            fmm_agg_slots: knobs::FMM_AGG_SLOTS.from_env(),
            fmm_agg_window: knobs::FMM_AGG_WINDOW.from_env(),
            bc: BoundaryCondition::Outflow,
            threads: 4,
            floors: false,
        }
    }
}

impl Config {
    /// Pure hydro in an inertial frame (Sod / Sedov verification).
    pub fn hydro_only() -> Config {
        Config::default()
    }

    /// Self-gravitating, inertial frame (star tests).
    pub fn self_gravitating() -> Config {
        Config { gravity: true, ..Config::default() }
    }

    /// The V1309 configuration: self-gravity plus a rotating grid,
    /// with positivity floors for the steep stellar edges.
    pub fn binary(omega: f64) -> Config {
        Config { gravity: true, omega, floors: true, ..Config::default() }
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.cfl > 0.0 && self.cfl < 1.0, "CFL out of range");
        assert!(self.theta > 0.0 && self.theta <= 1.0, "theta out of range");
        assert!(self.fmm_chunk_cells >= 1, "need a positive chunk size");
        assert!(self.fmm_agg_slots >= 1, "need at least one batch slot");
        assert!(self.fmm_agg_window >= 1, "need a positive flush window");
        assert!(self.threads >= 1, "need at least one thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Config::hydro_only().validate();
        Config::self_gravitating().validate();
        Config::binary(0.5).validate();
        assert!(Config::binary(0.5).gravity);
        assert_eq!(Config::binary(0.5).omega, 0.5);
        assert!(!Config::hydro_only().gravity);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn bad_cfl_rejected() {
        Config { cfl: 1.5, ..Config::default() }.validate();
    }

    #[test]
    fn knob_resolve_prefers_builder_and_normalizes() {
        assert_eq!(knobs::FMM_CHUNK_CELLS.resolve(None, 40), 40);
        assert_eq!(knobs::FMM_CHUNK_CELLS.resolve(Some(20), 40), 24);
        assert_eq!(knobs::FMM_CHUNK_CELLS.resolve(None, 3), 8);
        assert_eq!(knobs::FMM_AGG_SLOTS.resolve(Some(0), 8), 1);
        assert_eq!(knobs::FMM_AGG_WINDOW.resolve(None, 0), 1);
    }
}
