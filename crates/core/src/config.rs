//! Run configuration.

use hydro::eos::IdealGas;
use octree::halo::BoundaryCondition;

/// Configuration of a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Equation of state.
    pub eos: IdealGas,
    /// CFL number (0, 1).
    pub cfl: f64,
    /// Grid rotation rate about z (0 = inertial frame).
    pub omega: f64,
    /// Whether self-gravity is solved.
    pub gravity: bool,
    /// FMM opening parameter θ.
    pub theta: f64,
    /// Target cells per FMM same-level chunk task (normalized to whole
    /// 8-cell rows by the solver; 512 = one task per node).
    pub fmm_chunk_cells: usize,
    /// Physical boundary condition.
    pub bc: BoundaryCondition,
    /// Scheduler worker threads for the futurized update.
    pub threads: usize,
    /// Positivity floors after each stage (needed for under-resolved
    /// stellar edges; trades exact mass conservation for robustness, so
    /// the machine-precision verification scenarios leave it off).
    pub floors: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            eos: IdealGas::monatomic(),
            cfl: 0.4,
            omega: 0.0,
            gravity: false,
            theta: 0.5,
            fmm_chunk_cells: gravity::solver::default_chunk_cells(),
            bc: BoundaryCondition::Outflow,
            threads: 4,
            floors: false,
        }
    }
}

impl Config {
    /// Pure hydro in an inertial frame (Sod / Sedov verification).
    pub fn hydro_only() -> Config {
        Config::default()
    }

    /// Self-gravitating, inertial frame (star tests).
    pub fn self_gravitating() -> Config {
        Config { gravity: true, ..Config::default() }
    }

    /// The V1309 configuration: self-gravity plus a rotating grid,
    /// with positivity floors for the steep stellar edges.
    pub fn binary(omega: f64) -> Config {
        Config { gravity: true, omega, floors: true, ..Config::default() }
    }

    /// Validate invariants.
    pub fn validate(&self) {
        assert!(self.cfl > 0.0 && self.cfl < 1.0, "CFL out of range");
        assert!(self.theta > 0.0 && self.theta <= 1.0, "theta out of range");
        assert!(self.fmm_chunk_cells >= 1, "need a positive chunk size");
        assert!(self.threads >= 1, "need at least one thread");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        Config::hydro_only().validate();
        Config::self_gravitating().validate();
        Config::binary(0.5).validate();
        assert!(Config::binary(0.5).gravity);
        assert_eq!(Config::binary(0.5).omega, 0.5);
        assert!(!Config::hydro_only().gravity);
    }

    #[test]
    #[should_panic(expected = "CFL")]
    fn bad_cfl_rejected() {
        Config { cfl: 1.5, ..Config::default() }.validate();
    }
}
