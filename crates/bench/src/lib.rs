//! Benchmark harness support.
//!
//! Each bin under `src/bin` measures one figure/table of the paper and
//! merges its numbers into `BENCH_fmm.json`. The JSON plumbing is
//! hand-rolled (the offline workspace has no serde_json) and shared
//! here so every bin splices its section the same way.

/// Merge `section` — pre-rendered `  "name": { ... }` text with no
/// trailing comma or newline — into the top-level JSON object at
/// `path`, replacing any existing `"name"` entry. Missing files start
/// as an empty object.
pub fn merge_json_section(path: &str, name: &str, section: &str) {
    let body = std::fs::read_to_string(path).unwrap_or_else(|_| "{\n}\n".to_string());
    let body = remove_key(&body, &format!("\"{name}\""));
    let close = body
        .rfind('}')
        .unwrap_or_else(|| panic!("{path} has no closing brace"));
    // Whether anything precedes us inside the object decides the comma.
    let has_fields = body[..close].trim_end().trim_end_matches('\n').ends_with(['}', '"'])
        || body[..close].contains(':');
    let mut out = String::with_capacity(body.len() + section.len() + 4);
    out.push_str(body[..close].trim_end());
    if has_fields {
        out.push(',');
    }
    out.push('\n');
    out.push_str(section);
    out.push_str("\n}\n");
    std::fs::write(path, &out).unwrap_or_else(|e| panic!("write {path}: {e}"));
}

/// Drop `key` (and its value, object or scalar) from a flat-ish JSON
/// object body, comma included. Brace-counting, not a parser — good
/// enough for the JSON this workspace hand-writes.
fn remove_key(body: &str, key: &str) -> String {
    let Some(start) = body.find(key) else {
        return body.to_string();
    };
    let after_key = &body[start..];
    let colon = after_key.find(':').expect("key without value");
    let value = after_key[colon + 1..].trim_start();
    let value_off = start + colon + 1 + (after_key[colon + 1..].len() - value.len());
    let end = if value.starts_with('{') {
        let mut depth = 0usize;
        let mut end = value_off;
        for (i, c) in body[value_off..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = value_off + i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        end
    } else {
        value_off
            + body[value_off..]
                .find([',', '\n', '}'])
                .unwrap_or(body.len() - value_off)
    };
    // Swallow the comma that attached this entry (before or after).
    let mut head = body[..start].trim_end().to_string();
    let mut tail = body[end..].trim_start();
    if tail.starts_with(',') {
        tail = tail[1..].trim_start();
    } else if head.ends_with(',') {
        head.pop();
    }
    format!("{head}\n{tail}")
}

#[cfg(test)]
mod tests {
    use super::remove_key;

    #[test]
    fn remove_object_valued_key() {
        let body = "{\n  \"a\": { \"x\": 1 },\n  \"b\": 2\n}\n";
        let out = remove_key(body, "\"a\"");
        assert!(!out.contains("\"a\""));
        assert!(out.contains("\"b\": 2"));
    }

    #[test]
    fn remove_scalar_key_swallows_leading_comma() {
        let body = "{\n  \"a\": 1,\n  \"b\": 2\n}\n";
        let out = remove_key(body, "\"b\"");
        assert!(out.contains("\"a\": 1"));
        assert!(!out.contains("\"b\""));
        assert!(!out.trim_end().trim_end_matches('}').trim_end().ends_with(','));
    }

    #[test]
    fn remove_missing_key_is_identity() {
        let body = "{\n  \"a\": 1\n}\n";
        assert_eq!(remove_key(body, "\"zzz\""), body);
    }
}
