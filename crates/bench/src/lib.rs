//! Benchmark harness support.
