//! Real-driver transport comparison → the `"real_driver"` section of
//! `BENCH_fmm.json`.
//!
//! Fig. 3 of the paper compares libfabric against MPI on the *real*
//! application, not a microbenchmark. This bin does the equivalent at
//! laptop scale: it runs the distributed TVD-RK2 driver (halo pushes,
//! FMM moment broadcast, dt reduce, step barrier — all as parcels) over
//! a 2-locality cluster on each transport and reports
//!
//! * measured processed sub-grids per second per transport (and the
//!   libfabric : MPI ratio — the paper's headline metric),
//! * the wire traffic actually generated (bytes / parcels from the
//!   `parcelport/<kind>/...` metrics namespace), and
//! * the *modeled* communication time of that traffic under the
//!   Aries-calibrated [`NetParams`](parcelport::netmodel::NetParams)
//!   cost model, since on a single host
//!   both simulated transports move bytes at memcpy speed and the
//!   measured ratio reflects CPU-side protocol overhead only.
//!
//! ```sh
//! cargo run --release -p bench --bin fig3_real_solver [steps]
//! ```

use hydro::eos::IdealGas;
use octotiger::{Config, DistributedDriver, Scenario};
use octree::geometry::Domain;
use octree::subgrid::Field;
use octree::tree::Octree;
use parcelport::cluster::Cluster;
use parcelport::netmodel::TransportKind;
use scf::lane_emden::Polytrope;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use util::vec3::Vec3;

/// The determinism suite's self-gravitating AMR scenario: a corner
/// octant refined to level 2 (15 leaves) with an off-centre polytrope,
/// so every step moves real halo + multipole traffic across shards.
fn star_amr() -> Scenario {
    let eos = IdealGas::monatomic();
    let star = Polytrope::new(1.0, 1.0, 1.5);
    let mut tree = Octree::new(Domain::new(8.0));
    tree.refine_where(2, |d, k| {
        let o = d.node_origin(k);
        k.level == 0 || (o.x < 0.0 && o.y < 0.0 && o.z < 0.0)
    });
    let domain = tree.domain();
    let center = Vec3::new(-1.0, -1.0, -1.0);
    for key in tree.leaves() {
        let node = tree.node_mut(key).expect("leaf");
        let grid = node.grid.as_mut().expect("grid");
        for (i, j, k) in grid.indexer().interior() {
            let c = domain.cell_center(key, i, j, k);
            let r = (c - center).norm();
            let rho = star.rho(r).max(1e-10);
            let e = star.e_int(r).max(rho * 1e-4);
            grid.set(Field::Rho, i, j, k, rho);
            grid.set(Field::Egas, i, j, k, e);
            grid.set(Field::Tau, i, j, k, eos.tau_from_e(e));
        }
    }
    tree.restrict_all();
    Scenario {
        name: "star_amr",
        tree,
        config: Config { eos, ..Config::self_gravitating() },
        binary: None,
    }
}

struct TransportRun {
    subgrids_per_sec: f64,
    parcels_tx: u64,
    bytes_tx: u64,
    modeled_comm_ms: f64,
}

fn run_transport(kind: TransportKind, steps: usize) -> TransportRun {
    let cluster = Arc::new(
        Cluster::builder().localities(2).threads_per(2).transport(kind).build(),
    );
    let mut driver =
        DistributedDriver::new(star_amr(), cluster).expect("distributed driver");
    let t0 = Instant::now();
    for _ in 0..steps {
        driver.step().expect("distributed step");
    }
    let wall = t0.elapsed().as_secs_f64();
    let snap = driver.cluster().metrics().snapshot();
    let key = |suffix: &str| format!("parcelport/{}/{suffix}", kind.as_str());
    let parcels = snap.get(&key("parcels_tx")).copied().unwrap_or(0);
    let bytes = snap.get(&key("bytes_tx")).copied().unwrap_or(0);
    // Modeled wire time of the traffic under the Aries cost model: the
    // in-process transports move bytes at memcpy speed, so the modeled
    // number is what separates the transports at real-network scale.
    // Approximation: every parcel is charged the transfer time of the
    // mean parcel size (halo interiors dominate and are near-uniform).
    let net = driver.cluster().net_params();
    let mean = if parcels > 0 { (bytes / parcels) as usize } else { 0 };
    let modeled_comm_ms = net.transfer_time_us(mean) * parcels as f64 / 1e3;
    TransportRun {
        subgrids_per_sec: driver.subgrids_processed as f64 / wall,
        parcels_tx: parcels,
        bytes_tx: bytes,
        modeled_comm_ms,
    }
}

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
        .max(1);
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("real-driver transport comparison (star_amr, 2 localities, {steps} step(s))");
    println!("host CPUs: {host_cpus}");
    println!("{}", "-".repeat(72));

    let mpi = run_transport(TransportKind::Mpi, steps);
    let lf = run_transport(TransportKind::Libfabric, steps);
    for (name, r) in [("mpi", &mpi), ("libfabric", &lf)] {
        println!(
            "{name:<12} {:>10.2} sub-grids/s   {:>6} parcels  {:>10} bytes  {:>8.3} ms modeled",
            r.subgrids_per_sec, r.parcels_tx, r.bytes_tx, r.modeled_comm_ms
        );
    }
    let measured_ratio = lf.subgrids_per_sec / mpi.subgrids_per_sec;
    let modeled_comm_ratio = mpi.modeled_comm_ms / lf.modeled_comm_ms.max(1e-12);
    println!("{}", "-".repeat(72));
    println!("libfabric : MPI measured throughput ratio  {measured_ratio:.3}");
    println!("MPI : libfabric modeled comm-time ratio    {modeled_comm_ratio:.3}");

    // Merge into BENCH_fmm.json (written by fmm_snapshot). Hand-rolled
    // JSON; the offline workspace has no serde_json.
    let mut section = String::new();
    section.push_str("  \"real_driver\": {\n");
    let _ = writeln!(section, "    \"scenario\": \"star_amr\",");
    let _ = writeln!(section, "    \"localities\": 2,");
    let _ = writeln!(section, "    \"steps\": {steps},");
    let _ = writeln!(section, "    \"host_cpus\": {host_cpus},");
    for (name, r) in [("mpi", &mpi), ("libfabric", &lf)] {
        let _ = writeln!(section, "    \"{name}\": {{");
        let _ = writeln!(
            section,
            "      \"subgrids_per_sec\": {:.2},",
            r.subgrids_per_sec
        );
        let _ = writeln!(section, "      \"parcels_tx\": {},", r.parcels_tx);
        let _ = writeln!(section, "      \"bytes_tx\": {},", r.bytes_tx);
        let _ = writeln!(
            section,
            "      \"modeled_comm_ms\": {:.4}",
            r.modeled_comm_ms
        );
        let _ = writeln!(section, "    }},");
    }
    let _ = writeln!(section, "    \"measured_ratio\": {measured_ratio:.4},");
    let _ = writeln!(
        section,
        "    \"modeled_comm_ratio\": {modeled_comm_ratio:.4}"
    );
    section.push_str("  }");

    let path = "BENCH_fmm.json";
    bench::merge_json_section(path, "real_driver", &section);
    println!("merged \"real_driver\" into {path}");
}
